//! Property-based tests (proptest) over random share graphs, workloads and
//! schedules.

use prcc::clock::{CompressedProtocol, EdgeProtocol, Protocol};
use prcc::graph::{loops, topologies, Edge, RegisterId, ReplicaId, ShareGraph, TimestampGraph};
use prcc::net::UniformDelay;
use prcc::workloads::{run_workload, WorkloadConfig};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_share_graph() -> impl Strategy<Value = ShareGraph> {
    (2usize..7, 1usize..8, 2usize..4, 0u64..1000).prop_map(|(n, regs, holders, seed)| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        topologies::random_connected(n, regs, holders, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Timestamp graphs always contain both orientations of every incident
    /// edge, and loop edges only between non-`i` endpoints.
    #[test]
    fn timestamp_graph_invariants(g in arb_share_graph()) {
        for i in g.replicas() {
            let tsg = TimestampGraph::compute(&g, i);
            for &n in g.neighbors(i) {
                prop_assert!(tsg.contains(Edge::new(i, n)));
                prop_assert!(tsg.contains(Edge::new(n, i)));
            }
            for e in tsg.loop_edges() {
                prop_assert!(!e.touches(i));
                prop_assert!(g.has_edge(e));
            }
        }
    }

    /// Every loop the search returns satisfies Definition 4 (independent
    /// re-verification), and forests never have loops.
    #[test]
    fn loop_witnesses_verify(g in arb_share_graph()) {
        let forest = g.is_forest();
        for i in g.replicas() {
            for e in g.directed_edges() {
                if e.touches(i) {
                    continue;
                }
                if let Some(w) = loops::find_loop(&g, i, e) {
                    prop_assert!(w.verify(&g), "invalid witness {w}");
                    prop_assert!(!forest, "forests cannot contain loops");
                }
            }
        }
    }

    /// The paper's protocol is causally consistent on random graphs under
    /// random asynchronous schedules.
    #[test]
    fn edge_protocol_random_consistency(
        g in arb_share_graph(),
        seed in 0u64..500,
        interleave in 0usize..3,
    ) {
        let r = run_workload(
            EdgeProtocol::new(g),
            Box::new(UniformDelay::new(seed + 1, 1, 60)),
            WorkloadConfig { total_writes: 60, seed, interleave, hotspot: None },
        );
        prop_assert!(r.consistent(), "{r:?}");
        prop_assert_eq!(r.verdict.liveness_violations, 0);
    }

    /// The register-level compressed protocol reaches the same final store
    /// as the edge protocol under the identical schedule, and is likewise
    /// consistent.
    #[test]
    fn compressed_matches_edge_protocol(
        g in arb_share_graph(),
        seed in 0u64..200,
    ) {
        let cfg = WorkloadConfig { total_writes: 50, seed, interleave: 1, hotspot: None };
        let a = run_workload(
            EdgeProtocol::new(g.clone()),
            Box::new(UniformDelay::new(seed + 7, 1, 40)),
            cfg,
        );
        let b = run_workload(
            CompressedProtocol::new(g),
            Box::new(UniformDelay::new(seed + 7, 1, 40)),
            cfg,
        );
        prop_assert!(a.consistent() && b.consistent());
        prop_assert_eq!(a.stats.updates_issued, b.stats.updates_issued);
        prop_assert_eq!(a.stats.messages_sent, b.stats.messages_sent);
    }

    /// `advance` bumps exactly the outgoing edges whose shared set contains
    /// the register; `merge` is idempotent and monotone.
    #[test]
    fn clock_algebra(g in arb_share_graph(), seed in 0u64..100) {
        use rand::seq::SliceRandom;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let p = EdgeProtocol::new(g.clone());
        let replicas: Vec<ReplicaId> = g.replicas().collect();
        let i = *replicas.choose(&mut rng).unwrap();
        let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
        prop_assume!(!regs.is_empty());
        let x = *regs.choose(&mut rng).unwrap();
        let mut c = p.new_clock(i);
        let before = c.clone();
        p.advance(i, &mut c, x);
        for (e, v) in c.iter() {
            let was = before.get(e).unwrap();
            if e.from == i && g.shared(i, e.to).contains(x) {
                prop_assert_eq!(v, was + 1, "edge {}", e);
            } else {
                prop_assert_eq!(v, was, "edge {}", e);
            }
        }
        // Idempotent merge.
        let j = *replicas.choose(&mut rng).unwrap();
        let mut other = p.new_clock(j);
        if let Some(y) = g.registers_of(j).first() {
            p.advance(j, &mut other, y);
        }
        let mut m1 = c.clone();
        p.merge(i, &mut m1, j, &other);
        let mut m2 = m1.clone();
        p.merge(i, &mut m2, j, &other);
        prop_assert_eq!(&m1, &m2);
        // Monotone.
        for (e, v) in c.iter() {
            prop_assert!(m1.get(e).unwrap() >= v);
        }
    }

    /// Wire encoding round-trips arbitrary counter vectors.
    #[test]
    fn encoding_round_trip(counters in proptest::collection::vec(any::<u64>(), 0..40)) {
        let buf = prcc::clock::encoding::encode_counters(&counters);
        prop_assert_eq!(buf.len(), prcc::clock::encoding::counters_len(&counters));
        prop_assert_eq!(prcc::clock::encoding::decode_counters(&buf), Some(counters));
    }

    /// Compression analysis: rank entries never exceed raw entries, and the
    /// compressed clock reconstructs every tracked outgoing edge counter.
    #[test]
    fn compression_bounds(g in arb_share_graph()) {
        use prcc::graph::analysis;
        for i in g.replicas() {
            let tsg = TimestampGraph::compute(&g, i);
            let rep = analysis::compression_report(&g, &tsg);
            prop_assert!(rep.rank_entries <= rep.raw_entries);
            prop_assert!(rep.rank_entries <= rep.register_entries);
        }
    }

    /// Duplicate-injecting channels never break consistency or wedge
    /// pending buffers.
    #[test]
    fn duplication_tolerated_on_random_graphs(
        g in arb_share_graph(),
        seed in 0u64..200,
        dup in 2u64..5,
    ) {
        let mut cluster = prcc::core::Cluster::new(
            EdgeProtocol::new(g.clone()),
            Box::new(UniformDelay::new(seed + 3, 1, 40)),
        );
        cluster.net_mut().set_duplicate_every(dup);
        use rand::seq::SliceRandom;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let writers: Vec<ReplicaId> =
            g.replicas().filter(|&i| !g.registers_of(i).is_empty()).collect();
        prop_assume!(!writers.is_empty());
        for v in 0..40u64 {
            let i = *writers.choose(&mut rng).unwrap();
            let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
            cluster.write(i, *regs.choose(&mut rng).unwrap(), v).unwrap();
            cluster.step();
        }
        cluster.run_to_quiescence();
        prop_assert!(cluster.verdict().is_consistent());
        prop_assert_eq!(cluster.pending_total(), 0);
    }

    /// The client-server system is consistent for random client placements
    /// over random share graphs.
    #[test]
    fn client_server_random_consistency(
        g in arb_share_graph(),
        seed in 0u64..100,
        num_clients in 1usize..4,
    ) {
        use prcc::clientserver::CsSystem;
        use prcc::graph::{AugmentedShareGraph, ClientId};
        use rand::seq::SliceRandom;
        use rand::RngCore;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let replicas: Vec<ReplicaId> = g.replicas().collect();
        let clients: Vec<Vec<ReplicaId>> = (0..num_clients)
            .map(|_| {
                let k = 1 + (rng.next_u32() as usize) % 2.min(replicas.len());
                let mut set = replicas.clone();
                set.shuffle(&mut rng);
                set.truncate(k.max(1));
                set
            })
            .collect();
        let aug = AugmentedShareGraph::new(g.clone(), clients.clone()).unwrap();
        let mut sys = CsSystem::new(aug, Box::new(UniformDelay::new(seed + 17, 1, 25)));
        let mut wrote = false;
        for round in 0..20u64 {
            let c = (round as usize) % num_clients;
            // Pick a replica the client may access that stores something.
            let candidates: Vec<ReplicaId> = clients[c]
                .iter()
                .copied()
                .filter(|&r| !g.registers_of(r).is_empty())
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let rep = candidates[(round as usize) % candidates.len()];
            let regs: Vec<RegisterId> = g.registers_of(rep).iter().collect();
            let x = regs[(round as usize) % regs.len()];
            if round % 3 == 2 {
                let _ = sys.read(ClientId(c), rep, x).unwrap();
            } else {
                sys.write(ClientId(c), rep, x, round).unwrap();
                wrote = true;
            }
        }
        sys.run_to_quiescence();
        prop_assume!(wrote);
        prop_assert!(sys.verdict().is_consistent());
    }

    /// Bounded-loop edge sets are monotone in the bound and converge to the
    /// exact timestamp graphs.
    #[test]
    fn bounded_loops_converge(g in arb_share_graph()) {
        use prcc::baselines::edge_sets;
        let exact = TimestampGraph::compute_all(&g);
        let full = edge_sets::bounded_loops(&g, g.num_replicas() + 1);
        prop_assert_eq!(&full, &exact);
        let small = edge_sets::bounded_loops(&g, 2);
        for (s, e) in small.iter().zip(&exact) {
            prop_assert!(s.len() <= e.len());
            for edge in s.edges() {
                prop_assert!(e.contains(edge) || edge.touches(s.replica()));
            }
        }
    }
}
