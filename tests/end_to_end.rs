//! End-to-end integration: every protocol on every topology stays causally
//! consistent under randomized asynchronous delivery, in both the
//! discrete-event simulator and the threaded runtime.

use prcc::baselines::{edge_sets, DummyProtocol};
use prcc::clock::{CompressedProtocol, EdgeProtocol, VectorProtocol};
use prcc::graph::{topologies, RegisterId, ReplicaId, ShareGraph};
use prcc::net::UniformDelay;
use prcc::workloads::{run_workload, WorkloadConfig};
use std::sync::Arc;

fn all_topologies() -> Vec<(&'static str, ShareGraph)> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    vec![
        ("line(5)", topologies::line(5)),
        ("star(5)", topologies::star(5)),
        ("ring(6)", topologies::ring(6)),
        ("grid(2x3)", topologies::grid(2, 3)),
        ("clique_full(4,2)", topologies::clique_full(4, 2)),
        ("clique_pairwise(4)", topologies::clique_pairwise(4)),
        ("figure5", topologies::figure5()),
        ("wheel(6)", topologies::wheel(6)),
        ("bipartite(2,3)", topologies::complete_bipartite(2, 3)),
        ("figure_eight(3,4)", topologies::figure_eight(3, 4)),
        ("ce1", topologies::counterexample1().0),
        ("ce2", topologies::counterexample2().0),
        ("random", topologies::random_connected(7, 8, 3, &mut rng)),
    ]
}

fn cfg(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        total_writes: 120,
        seed,
        interleave: 1,
        hotspot: None,
    }
}

#[test]
fn edge_protocol_consistent_everywhere() {
    for (name, g) in all_topologies() {
        for seed in 0..3 {
            let r = run_workload(
                EdgeProtocol::new(g.clone()),
                Box::new(UniformDelay::new(seed + 13, 1, 50)),
                cfg(seed),
            );
            assert!(r.consistent(), "{name} seed {seed}: {r:?}");
        }
    }
}

#[test]
fn compressed_protocol_consistent_everywhere() {
    for (name, g) in all_topologies() {
        let r = run_workload(
            CompressedProtocol::new(g.clone()),
            Box::new(UniformDelay::new(31, 1, 50)),
            cfg(5),
        );
        assert!(r.consistent(), "{name}: {r:?}");
    }
}

#[test]
fn safe_baselines_consistent_everywhere() {
    for (name, g) in all_topologies() {
        let naive = run_workload(
            edge_sets::all_edges_protocol(&g),
            Box::new(UniformDelay::new(17, 1, 50)),
            cfg(2),
        );
        assert!(naive.consistent(), "all-edges on {name}");
        let hoop = run_workload(
            edge_sets::hoop_protocol(&g, false),
            Box::new(UniformDelay::new(19, 1, 50)),
            cfg(3),
        );
        assert!(hoop.consistent(), "hoop-original on {name}");
        let vector = run_workload(
            VectorProtocol::new(g.clone()),
            Box::new(UniformDelay::new(23, 1, 50)),
            cfg(4),
        );
        assert!(vector.consistent(), "vector on {name}");
        let dummies = run_workload(
            DummyProtocol::full_emulation(g.clone()),
            Box::new(UniformDelay::new(29, 1, 50)),
            cfg(6),
        );
        assert!(dummies.consistent(), "full-emulation on {name}");
    }
}

#[test]
fn metadata_ordering_ours_at_most_baselines() {
    use prcc::clock::{ClockState, Protocol};
    for (name, g) in all_topologies() {
        let exact = EdgeProtocol::new(g.clone());
        let hoop = edge_sets::hoop_protocol(&g, false);
        let naive = edge_sets::all_edges_protocol(&g);
        for i in g.replicas() {
            let e = exact.new_clock(i).entries();
            let h = hoop.new_clock(i).entries();
            let n = naive.new_clock(i).entries();
            assert!(e <= h, "{name} {i}: exact {e} > hoop {h}");
            assert!(h <= n, "{name} {i}: hoop {h} > all-edges {n}");
        }
    }
}

#[test]
fn threaded_runtime_agrees_with_simulator() {
    let g = topologies::figure5();
    // Same ops in both worlds; both must be causally consistent.
    let ops: Vec<(ReplicaId, RegisterId, u64)> = (0..60u64)
        .map(|v| {
            let i = ReplicaId((v % 4) as usize);
            let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
            (i, regs[(v as usize) % regs.len()], v)
        })
        .collect();
    let report = prcc::runtime::run_threaded(
        Arc::new(EdgeProtocol::new(g.clone())),
        ops.clone(),
        4,
        200,
        11,
    );
    assert!(report.verdict.is_consistent(), "{:?}", report.verdict);

    let mut cluster =
        prcc::core::Cluster::new(EdgeProtocol::new(g), Box::new(UniformDelay::new(11, 1, 40)));
    for (i, x, v) in ops {
        cluster.write(i, x, v).unwrap();
        cluster.step();
    }
    cluster.run_to_quiescence();
    assert!(cluster.verdict().is_consistent());
}

#[test]
fn ring_breaker_end_to_end() {
    use prcc::baselines::RingBreaker;
    let mut rb = RingBreaker::new(6, Box::new(UniformDelay::new(3, 1, 20)));
    for v in 0..15 {
        rb.write_x(v).unwrap();
        if v % 2 == 0 {
            rb.write_local(ReplicaId((v % 5) as usize), v).unwrap();
        }
    }
    rb.run_to_quiescence();
    assert_eq!(rb.read_x_far(), Some(14));
    assert!(rb.verdict().is_consistent());
    assert_eq!(rb.stats().x_delivered, 15);
}

#[test]
fn client_server_with_many_clients() {
    use prcc::clientserver::CsSystem;
    use prcc::graph::{AugmentedShareGraph, ClientId};
    let g = topologies::ring(5);
    let clients: Vec<Vec<ReplicaId>> = (0..5)
        .map(|c| vec![ReplicaId(c), ReplicaId((c + 2) % 5)])
        .collect();
    let aug = AugmentedShareGraph::new(g.clone(), clients).unwrap();
    let mut sys = CsSystem::new(aug, Box::new(UniformDelay::new(41, 1, 25)));
    for round in 0..25u64 {
        let c = ClientId((round % 5) as usize);
        let rep = ReplicaId((round % 5) as usize);
        let regs: Vec<RegisterId> = g.registers_of(rep).iter().collect();
        sys.write(c, rep, regs[(round % 2) as usize], round)
            .unwrap();
        if round % 4 == 0 {
            let other = ReplicaId(((round + 2) % 5) as usize);
            let reg = g.registers_of(other).first().unwrap();
            let _ = sys.read(c, other, reg).unwrap();
        }
    }
    sys.run_to_quiescence();
    assert!(sys.verdict().is_consistent());
}

#[test]
fn duplicated_channels_on_every_topology() {
    for (name, g) in all_topologies() {
        let mut cluster = prcc::core::Cluster::new(
            EdgeProtocol::new(g.clone()),
            Box::new(UniformDelay::new(5, 1, 30)),
        );
        cluster.net_mut().set_duplicate_every(3);
        for v in 0..50u64 {
            let i = ReplicaId((v as usize) % g.num_replicas());
            let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
            if regs.is_empty() {
                continue;
            }
            cluster
                .write(i, regs[(v as usize / g.num_replicas()) % regs.len()], v)
                .unwrap();
            cluster.step();
        }
        cluster.run_to_quiescence();
        assert!(cluster.verdict().is_consistent(), "{name}");
        assert_eq!(cluster.pending_total(), 0, "{name}: wedged duplicates");
    }
}

#[test]
fn epoch_reconfiguration_between_topology_families() {
    use prcc::core::EpochedCluster;
    let mut ec = EpochedCluster::new(
        EdgeProtocol::new(topologies::ring(4)),
        Box::new(UniformDelay::new(8, 1, 20)),
    );
    for v in 0..12u64 {
        let i = ReplicaId((v % 4) as usize);
        ec.write(i, RegisterId((i.index() % 4) as u32), v).unwrap();
    }
    // Ring → star: registers 0..3 survive where present in the star.
    ec.reconfigure(
        EdgeProtocol::new(topologies::star(5)),
        Box::new(UniformDelay::new(9, 1, 20)),
    )
    .unwrap();
    assert_eq!(ec.epoch(), 1);
    ec.write(ReplicaId(0), RegisterId(0), 99).unwrap();
    ec.cluster_mut().run_to_quiescence();
    assert!(ec.cluster().verdict().is_consistent());
    assert_eq!(ec.read(ReplicaId(1), RegisterId(0)).unwrap(), Some(99));
}

#[test]
fn multicast_view_over_partial_replication() {
    use prcc::core::multicast::{CausalMulticast, GroupId};
    // Groups mirror a ring(4)'s registers.
    let mut mc = CausalMulticast::new(
        4,
        (0..4)
            .map(|g| vec![ReplicaId(g), ReplicaId((g + 1) % 4)])
            .collect(),
        Box::new(UniformDelay::new(21, 1, 15)),
    )
    .unwrap();
    for round in 0..8u64 {
        mc.multicast(
            ReplicaId((round % 4) as usize),
            GroupId((round % 4) as u32),
            round,
        )
        .unwrap();
        mc.pump();
    }
    assert!(mc.is_causally_consistent());
    // Each process sits in two groups → sees all 4 of the 8 messages
    // addressed to its groups (2 own + 2 received per group pair).
    for p in 0..4usize {
        assert_eq!(mc.delivered(ReplicaId(p)).len(), 4, "p{p}");
    }
}

#[test]
fn convergence_all_replicas_agree_at_quiescence() {
    // Causal consistency doesn't force convergence in general, but with the
    // same delivery schedule the *last* writer's value per register must be
    // visible at every holder whose final applied update is that writer's.
    // Weaker, always-true check: every holder of a register holds *some*
    // written value after quiescence (liveness materialized).
    let g = topologies::ring(6);
    let mut cluster = prcc::core::Cluster::new(
        EdgeProtocol::new(g.clone()),
        Box::new(UniformDelay::new(4, 1, 30)),
    );
    for v in 0..60u64 {
        let i = ReplicaId((v % 6) as usize);
        let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
        // v % 6 and v % 2 are phase-locked; alternate per round instead so
        // every register gets written.
        cluster.write(i, regs[((v / 6) % 2) as usize], v).unwrap();
    }
    cluster.run_to_quiescence();
    assert!(cluster.verdict().is_consistent());
    for x in g.registers() {
        for &h in g.holders(x) {
            assert!(
                cluster.read(h, x).unwrap().is_some(),
                "holder {h} of {x} has no value"
            );
        }
    }
}
