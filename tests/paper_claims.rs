//! Cross-crate integration tests pinning the paper's headline claims.

use prcc::clock::{ClockState, EdgeProtocol, Protocol};
use prcc::graph::{analysis, edge, hoops, topologies, Edge, RegisterId, ReplicaId, TimestampGraph};
use prcc::lowerbound::{closed_forms, conflict, families};

/// Section 3 example (Figure 5): `e43 ∈ G_1`, `e34 ∉ G_1`.
#[test]
fn figure5_asymmetric_timestamp_graph() {
    let g = topologies::figure5();
    let g1 = TimestampGraph::compute(&g, ReplicaId(0));
    assert!(g1.contains(edge(3, 2)));
    assert!(!g1.contains(edge(2, 3)));
    assert!(g1.contains(edge(2, 1)));
    assert!(!g1.contains(edge(1, 2)));
}

/// Section 4: tree → `2·N_i` entries; cycle(n) → `2n`; full-replication
/// clique → `R(R−1)` raw, `R` compressed.
#[test]
fn closed_form_timestamp_sizes() {
    for n in [2usize, 4, 7] {
        let g = topologies::line(n);
        for i in g.replicas() {
            assert_eq!(
                TimestampGraph::compute(&g, i).len(),
                2 * g.degree(i),
                "line({n}) {i}"
            );
        }
    }
    for n in [3usize, 5, 8] {
        let g = topologies::ring(n);
        for i in g.replicas() {
            assert_eq!(TimestampGraph::compute(&g, i).len(), 2 * n, "ring({n}) {i}");
        }
    }
    let g = topologies::clique_full(5, 2);
    for i in g.replicas() {
        let tsg = TimestampGraph::compute(&g, i);
        assert_eq!(tsg.len(), 5 * 4);
        assert_eq!(analysis::compression_report(&g, &tsg).rank_entries, 5);
    }
}

/// Appendix A, counterexample 1: the original minimal-hoop criterion makes
/// `i` track `x`; the loop criterion does not.
#[test]
fn helary_milani_original_overapproximates() {
    let (g, r) = topologies::counterexample1();
    assert!(hoops::must_track_original(&g, r.i, r.x));
    let gi = TimestampGraph::compute(&g, r.i);
    assert!(!hoops::tracked_registers_loops(&g, &gi).contains(r.x));
}

/// Appendix A, counterexample 2: the modified criterion drops `e_kj`, which
/// Theorem 8 requires.
#[test]
fn helary_milani_modified_underapproximates() {
    let (g, r) = topologies::counterexample2();
    assert!(!hoops::must_track_modified(&g, r.i, r.x));
    let gi = TimestampGraph::compute(&g, r.i);
    assert!(gi.contains(Edge::new(r.k, r.j)));
}

/// Theorem 15 tightness on small systems: conflict-clique lower bound =
/// number of distinct timestamps the algorithm assigns.
#[test]
fn lower_bounds_are_tight_on_small_systems() {
    // Tree (mid of a line): 2·N_i dimensions.
    let g = topologies::line(3);
    let fam = families::incident_family(&g, ReplicaId(1), 2);
    assert_eq!(fam.len(), 16);
    assert_eq!(families::algorithm_timestamps(&g, &fam), 16);
    assert!((fam.bits() - closed_forms::tree_bits(2, 2)).abs() < 1e-9);

    // Cycle: 2n dimensions.
    let g = topologies::ring(3);
    let fam = families::ring_family(&g, ReplicaId(0), 2);
    assert_eq!(fam.len(), 64);
    assert_eq!(families::algorithm_timestamps(&g, &fam), 64);
    assert!((fam.bits() - closed_forms::cycle_bits(3, 2)).abs() < 1e-9);
}

/// Lemma 14 sanity: members of a family conflict pairwise; a far-edge-only
/// difference on a tree does not conflict.
#[test]
fn conflict_relation_matches_topology() {
    let g = topologies::line(3);
    let fam = families::incident_family(&g, ReplicaId(1), 2);
    for a in 0..fam.len() {
        for b in a + 1..fam.len() {
            assert!(conflict(&g, ReplicaId(1), &fam.pasts[a], &fam.pasts[b]));
        }
    }
}

/// Full replication: the edge protocol's compressed footprint matches the
/// traditional vector clock (Section 5).
#[test]
fn full_replication_equals_vector_clock_after_compression() {
    let g = topologies::clique_full(4, 3);
    let p = EdgeProtocol::new(g.clone());
    let raw = p.new_clock(ReplicaId(0)).entries();
    let compressed =
        analysis::compression_report(&g, &TimestampGraph::compute(&g, ReplicaId(0))).rank_entries;
    assert_eq!(raw, 12);
    assert_eq!(compressed, g.num_replicas());
}

/// The augmented share graph grows timestamp graphs only when clients close
/// new cycles (Definitions 16/27/28).
#[test]
fn client_bridges_grow_augmented_graphs() {
    use prcc::graph::AugmentedShareGraph;
    let g = topologies::line(4);
    let no_clients = AugmentedShareGraph::new(g.clone(), vec![]).unwrap();
    let bridged =
        AugmentedShareGraph::new(g.clone(), vec![vec![ReplicaId(0), ReplicaId(3)]]).unwrap();
    for i in g.replicas() {
        let plain = no_clients.augmented_timestamp_graph(i).len();
        let aug = bridged.augmented_timestamp_graph(i).len();
        assert!(aug >= plain, "{i}");
    }
    // The interior replicas must now track cross edges.
    let t1 = bridged.augmented_timestamp_graph(ReplicaId(1));
    assert!(t1.loop_edges().count() > 0);
}

/// The dummy-register full emulation reshapes the metadata graph to a
/// clique while storage stays partial (Appendix D).
#[test]
fn dummy_emulation_metadata_vs_storage() {
    use prcc::baselines::DummyProtocol;
    let g = topologies::figure3();
    let p = DummyProtocol::full_emulation(g.clone());
    assert!(p.metadata_graph().is_full_replication());
    assert!(!p.share_graph().is_full_replication());
    // Every update's metadata now reaches everyone.
    assert_eq!(p.recipients(ReplicaId(0), RegisterId(0)).len(), 3);
    assert!(!p.stores_value(ReplicaId(3), RegisterId(0)));
}

/// The whole experiment suite runs; every report carries its paper anchor.
#[test]
fn all_experiments_generate_reports() {
    for (id, run) in prcc_bench::all_experiments() {
        let out = run();
        assert!(!out.is_empty(), "{id} produced no report");
        assert!(
            out.contains("—"),
            "{id} report must carry its paper anchor line: {out}"
        );
    }
}
