//! `prcc` — Partially Replicated Causally Consistent shared memory.
//!
//! A facade crate re-exporting the whole workspace: a full reproduction of
//! Xiang & Vaidya, *"Partially Replicated Causally Consistent Shared Memory:
//! Lower Bounds and An Algorithm"* (PODC 2019).
//!
//! See the individual crates for details:
//!
//! * [`graph`] — share graphs, `(i, e_jk)`-loops, timestamp graphs, hoops.
//! * [`clock`] — edge-indexed vector timestamps, compression.
//! * [`net`] — deterministic discrete-event network simulation.
//! * [`core`] — the replica prototype and peer-to-peer clusters.
//! * [`checker`] — happened-before oracle, safety/liveness verification.
//! * [`baselines`] — full replication, hoop-based, bounded-loop, ring
//!   breaking.
//! * [`clientserver`] — the client-server architecture (Section 6).
//! * [`lowerbound`] — conflict graphs and timestamp-space lower bounds
//!   (Section 4).
//! * [`workloads`] — topology/workload generators and the metric runner.
//! * [`runtime`] — a threaded in-process deployment.
//! * [`service`] — the networked TCP deployment: partition-tagged wire
//!   protocol, partition-routing nodes with update batching, single-node
//!   and key-routed client libraries, and the `prcc-serve`/`prcc-load`
//!   binaries.
//! * [`telemetry`] — sharded metric registry (counters, gauges,
//!   mergeable log-bucketed histograms), update-lifecycle stage timing,
//!   and the crash flight recorder.

#![forbid(unsafe_code)]

pub use prcc_baselines as baselines;
pub use prcc_checker as checker;
pub use prcc_clientserver as clientserver;
pub use prcc_clock as clock;
pub use prcc_core as core;
pub use prcc_graph as graph;
pub use prcc_lowerbound as lowerbound;
pub use prcc_net as net;
pub use prcc_runtime as runtime;
pub use prcc_service as service;
pub use prcc_telemetry as telemetry;
pub use prcc_workloads as workloads;
