//! Standing up and tearing down a loopback cluster.

use crate::client::ServiceClient;
use crate::node::{spawn_node, NodeHandle, NodeSeed, ServiceConfig};
use crate::wire::NodeStatus;
use prcc_checker::trace::{verify_trace, TraceError, TraceEvent};
use prcc_checker::Verdict;
use prcc_clock::{Protocol, WireClock};
use prcc_graph::ReplicaId;
use prcc_graph::ShareGraph;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A full cluster of nodes on 127.0.0.1, one pair of listeners each.
#[derive(Debug)]
pub struct LoopbackCluster {
    graph: ShareGraph,
    nodes: Vec<NodeHandle>,
}

impl LoopbackCluster {
    /// Binds listeners for every node (ephemeral ports when `base_port` is
    /// 0, else `base_port + 2i` / `base_port + 2i + 1`), then spawns the
    /// nodes with the full peer map.
    pub fn launch<P>(
        protocol: Arc<P>,
        cfg: &ServiceConfig,
        base_port: u16,
    ) -> io::Result<LoopbackCluster>
    where
        P: Protocol + 'static,
        P::Clock: WireClock,
    {
        let graph = protocol.share_graph().clone();
        let n = graph.num_replicas();
        let mut peer_listeners = Vec::with_capacity(n);
        let mut client_listeners = Vec::with_capacity(n);
        let mut peer_addrs = Vec::with_capacity(n);
        for i in 0..n {
            let (peer_port, client_port) = if base_port == 0 {
                (0, 0)
            } else {
                (base_port + 2 * i as u16, base_port + 2 * i as u16 + 1)
            };
            let peer = TcpListener::bind(("127.0.0.1", peer_port))?;
            let client = TcpListener::bind(("127.0.0.1", client_port))?;
            peer_addrs.push(peer.local_addr()?);
            peer_listeners.push(peer);
            client_listeners.push(client);
        }
        let mut nodes = Vec::with_capacity(n);
        for (i, (peer_listener, client_listener)) in
            peer_listeners.into_iter().zip(client_listeners).enumerate()
        {
            nodes.push(spawn_node(
                Arc::clone(&protocol),
                NodeSeed {
                    id: ReplicaId(i),
                    peer_listener,
                    client_listener,
                    peer_addrs: peer_addrs.clone(),
                },
                cfg.clone(),
            )?);
        }
        Ok(LoopbackCluster { graph, nodes })
    }

    /// The cluster's share graph.
    pub fn graph(&self) -> &ShareGraph {
        &self.graph
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never after a launch).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `(peer, client)` listener addresses of node `i`.
    pub fn addrs(&self, i: usize) -> (SocketAddr, SocketAddr) {
        (self.nodes[i].peer_addr, self.nodes[i].client_addr)
    }

    /// Opens a fresh client to node `i`.
    pub fn client(&self, i: usize) -> io::Result<ServiceClient> {
        ServiceClient::connect(self.nodes[i].client_addr)
    }

    /// Snapshot of every node's counters.
    pub fn statuses(&self) -> io::Result<Vec<NodeStatus>> {
        self.nodes
            .iter()
            .map(|node| ServiceClient::connect(node.client_addr)?.status())
            .collect()
    }

    /// Polls until the cluster is quiescent: every pending buffer empty,
    /// every sent update received, and the counters stable across two
    /// consecutive polls. Returns `false` on timeout.
    pub fn drain(&self, timeout: Duration) -> io::Result<bool> {
        // One persistent client per node: the poll loop runs every 10ms and
        // per-call connections would churn thousands of sockets per drain.
        let mut clients = self
            .nodes
            .iter()
            .map(|node| ServiceClient::connect(node.client_addr))
            .collect::<io::Result<Vec<_>>>()?;
        let deadline = Instant::now() + timeout;
        let mut previous: Option<Vec<NodeStatus>> = None;
        loop {
            let statuses = clients
                .iter_mut()
                .map(ServiceClient::status)
                .collect::<io::Result<Vec<_>>>()?;
            let sent: u64 = statuses.iter().map(|s| s.messages_sent).sum();
            let received: u64 = statuses.iter().map(|s| s.messages_received).sum();
            let pending: u64 = statuses.iter().map(|s| s.pending).sum();
            let settled = pending == 0 && sent == received;
            if settled && previous.as_ref() == Some(&statuses) {
                return Ok(true);
            }
            previous = Some(statuses);
            if Instant::now() >= deadline {
                return Ok(false);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Collects every node's local event log, in replica order.
    pub fn collect_traces(&self) -> io::Result<Vec<Vec<TraceEvent>>> {
        self.nodes
            .iter()
            .map(|node| ServiceClient::connect(node.client_addr)?.trace())
            .collect()
    }

    /// Replays the collected traces through the shared [`prcc_checker`]
    /// oracle — the post-hoc causal-consistency check.
    pub fn verify(&self) -> io::Result<Result<Verdict, TraceError>> {
        let traces = self.collect_traces()?;
        Ok(verify_trace(&self.graph, &traces))
    }

    /// Gracefully shuts every node down and joins their core threads.
    pub fn shutdown(mut self) -> io::Result<()> {
        for node in &self.nodes {
            ServiceClient::connect(node.client_addr)?.shutdown()?;
        }
        for node in &mut self.nodes {
            node.join();
        }
        Ok(())
    }

    /// Blocks until every node has been shut down externally (used by
    /// `prcc-serve`).
    pub fn join(&mut self) {
        for node in &mut self.nodes {
            node.join();
        }
    }
}
