//! Standing up and tearing down a loopback cluster.

use crate::client::{RoutedClient, ServiceClient};
use crate::node::{spawn_node, NodeHandle, NodeSeed, ServiceConfig};
use crate::wire::NodeStatus;
use prcc_checker::trace::{TraceError, TraceEvent};
use prcc_checker::{
    verify_cut_closure, verify_partitions_checkpointed, CutSnapshot, CutVerdict, TraceCheckpoint,
    Verdict,
};
use prcc_clock::{Protocol, WireClock};
use prcc_graph::{PartitionId, PartitionMap};
use prcc_telemetry::MetricsSnapshot;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A full cluster of nodes on 127.0.0.1, one pair of listeners each.
///
/// The harness supports fault injection: [`LoopbackCluster::crash_node`]
/// kills a node without a graceful drain, and
/// [`LoopbackCluster::restart_node`] respawns it on the *same* listener
/// addresses (peers reconnect through the sender backoff path) and — when
/// the deployment has a data dir — the same on-disk state, which the node
/// recovers from its snapshot + WAL.
pub struct LoopbackCluster {
    map: PartitionMap,
    nodes: Vec<NodeHandle>,
    /// The real peer-listener addresses, by node.
    peer_addrs: Vec<SocketAddr>,
    /// What each node actually dials for each peer — identical to
    /// `peer_addrs` in a plain deployment, rewired through proxy
    /// addresses when a fault injector interposes on the links.
    /// `restart_node` reuses these, so a restarted node redials through
    /// the same interposition its first life used.
    dial_addrs: Vec<Vec<SocketAddr>>,
    durable: bool,
    spawner: Arc<dyn Fn(NodeSeed) -> io::Result<NodeHandle> + Send + Sync>,
}

impl std::fmt::Debug for LoopbackCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackCluster")
            .field("map", &self.map)
            .field("nodes", &self.nodes)
            .finish()
    }
}

impl LoopbackCluster {
    /// Launches the unsharded deployment: one partition, role `i` on node
    /// `i` ([`PartitionMap::single`]).
    pub fn launch<P>(
        protocol: Arc<P>,
        cfg: &ServiceConfig,
        base_port: u16,
    ) -> io::Result<LoopbackCluster>
    where
        P: Protocol + 'static,
        P::Clock: WireClock,
    {
        let map = PartitionMap::single(protocol.share_graph().clone());
        Self::launch_partitioned(protocol, map, cfg, base_port)
    }

    /// Binds listeners for every node of the partition map (ephemeral ports
    /// when `base_port` is 0, else `base_port + 2i` / `base_port + 2i + 1`),
    /// then spawns the nodes with the full peer map.
    pub fn launch_partitioned<P>(
        protocol: Arc<P>,
        map: PartitionMap,
        cfg: &ServiceConfig,
        base_port: u16,
    ) -> io::Result<LoopbackCluster>
    where
        P: Protocol + 'static,
        P::Clock: WireClock,
    {
        Self::launch_partitioned_via(protocol, map, cfg, base_port, |_, real| real.to_vec())
    }

    /// [`LoopbackCluster::launch_partitioned`] with the peer links routed
    /// through an interposer: after every real peer listener is bound,
    /// `rewire(node, real_peer_addrs)` decides what addresses node `node`
    /// dials for its peers — typically a fault-injecting proxy's listener
    /// per directed link, with the node's own slot left at the real
    /// address. The rewired table sticks: [`LoopbackCluster::restart_node`]
    /// respawns through it.
    pub fn launch_partitioned_via<P>(
        protocol: Arc<P>,
        map: PartitionMap,
        cfg: &ServiceConfig,
        base_port: u16,
        rewire: impl Fn(usize, &[SocketAddr]) -> Vec<SocketAddr>,
    ) -> io::Result<LoopbackCluster>
    where
        P: Protocol + 'static,
        P::Clock: WireClock,
    {
        let n = map.num_nodes();
        let mut peer_listeners = Vec::with_capacity(n);
        let mut client_listeners = Vec::with_capacity(n);
        let mut peer_addrs = Vec::with_capacity(n);
        for i in 0..n {
            let (peer_port, client_port) = if base_port == 0 {
                (0, 0)
            } else {
                (base_port + 2 * i as u16, base_port + 2 * i as u16 + 1)
            };
            let peer = TcpListener::bind(("127.0.0.1", peer_port))?;
            let client = TcpListener::bind(("127.0.0.1", client_port))?;
            peer_addrs.push(peer.local_addr()?);
            peer_listeners.push(peer);
            client_listeners.push(client);
        }
        // The spawner closure lets restart_node respawn any node with the
        // exact launch configuration without the cluster being generic
        // over the protocol type.
        let spawner: Arc<dyn Fn(NodeSeed) -> io::Result<NodeHandle> + Send + Sync> = {
            let protocol = Arc::clone(&protocol);
            let map = map.clone();
            let cfg = cfg.clone();
            Arc::new(move |seed| spawn_node(Arc::clone(&protocol), map.clone(), seed, cfg.clone()))
        };
        let dial_addrs: Vec<Vec<SocketAddr>> = (0..n).map(|i| rewire(i, &peer_addrs)).collect();
        for (i, dials) in dial_addrs.iter().enumerate() {
            if dials.len() != n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "rewire produced {} addresses for node {i}, need {n}",
                        dials.len()
                    ),
                ));
            }
        }
        let mut nodes = Vec::with_capacity(n);
        for (i, (peer_listener, client_listener)) in
            peer_listeners.into_iter().zip(client_listeners).enumerate()
        {
            nodes.push(spawner(NodeSeed {
                node: i,
                peer_listener,
                client_listener,
                peer_addrs: dial_addrs[i].clone(),
            })?);
        }
        Ok(LoopbackCluster {
            map,
            nodes,
            peer_addrs,
            dial_addrs,
            durable: cfg.data_dir.is_some(),
            spawner,
        })
    }

    /// The cluster's partition map.
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never after a launch).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `(peer, client)` listener addresses of node `i`.
    pub fn addrs(&self, i: usize) -> (SocketAddr, SocketAddr) {
        (self.nodes[i].peer_addr, self.nodes[i].client_addr)
    }

    /// Opens a fresh client to node `i`.
    pub fn client(&self, i: usize) -> io::Result<ServiceClient> {
        ServiceClient::connect(self.nodes[i].client_addr)
    }

    /// Opens a key-routing client over the whole cluster.
    pub fn routed_client(&self) -> io::Result<RoutedClient> {
        RoutedClient::with_map(
            self.map.clone(),
            self.nodes.iter().map(|n| n.client_addr).collect(),
        )
    }

    /// Snapshot of every node's counters.
    pub fn statuses(&self) -> io::Result<Vec<NodeStatus>> {
        self.nodes
            .iter()
            .map(|node| ServiceClient::connect(node.client_addr)?.status())
            .collect()
    }

    /// Cluster-wide count of updates dropped because a peer routed them to
    /// a node not hosting their partition. Always zero under a correct
    /// routing layer; the partitioned test suite asserts exactly that.
    pub fn misrouted_drops(&self) -> io::Result<u64> {
        Ok(self.statuses()?.iter().map(|s| s.dropped_misrouted).sum())
    }

    /// Scrapes every node's live metrics snapshot (wire-v6 `Metrics`
    /// request), unmerged.
    pub fn metrics_per_node(&self) -> io::Result<Vec<MetricsSnapshot>> {
        self.nodes
            .iter()
            .map(|node| ServiceClient::connect(node.client_addr)?.metrics())
            .collect()
    }

    /// Scrapes and merges the whole cluster's metrics into one snapshot:
    /// counters and gauges sum, histograms merge bucket-wise — so the
    /// cluster-wide percentiles are computed over the union of samples,
    /// not averaged across nodes.
    pub fn metrics(&self) -> io::Result<MetricsSnapshot> {
        let mut merged = MetricsSnapshot::default();
        for snap in self.metrics_per_node()? {
            merged.merge(&snap);
        }
        Ok(merged)
    }

    /// Fault injection: kills node `i` without a graceful shutdown — no
    /// drain, no final snapshot, every connection severed mid-stream.
    /// Clients of the node see their connections drop; peers see the link
    /// die and fall into the reconnect backoff path.
    pub fn crash_node(&mut self, i: usize) {
        self.nodes[i].crash();
    }

    /// Respawns a crashed node on its original listener addresses. With a
    /// data dir configured the node recovers its snapshot + WAL first, so
    /// it rejoins with its pre-crash clock, store and event log; peers'
    /// senders reconnect (backoff) and resend their unacked windows from
    /// the offset the recovered node acknowledges.
    ///
    /// # Errors
    ///
    /// Refused outright when the deployment has no data dir: a blank
    /// respawn would reissue wire ids its peers' dedup sets already hold,
    /// so its new writes would be silently dropped cluster-wide. Also
    /// fails on rebinding the listeners (the OS may briefly hold the
    /// port) or the respawn itself (e.g. an unrecoverable data dir).
    pub fn restart_node(&mut self, i: usize) -> io::Result<()> {
        if !self.durable {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "restarting a node without a data dir would reuse wire ids \
                 its peers have already seen; launch the cluster with \
                 ServiceConfig::data_dir to use crash/restart",
            ));
        }
        let (peer_addr, client_addr) = (self.nodes[i].peer_addr, self.nodes[i].client_addr);
        let peer_listener = bind_with_retry(peer_addr)?;
        let client_listener = bind_with_retry(client_addr)?;
        self.nodes[i] = (self.spawner)(NodeSeed {
            node: i,
            peer_listener,
            client_listener,
            peer_addrs: self.dial_addrs[i].clone(),
        })?;
        Ok(())
    }

    /// The real peer-listener addresses, by node (what an interposer
    /// proxies to).
    pub fn real_peer_addrs(&self) -> &[SocketAddr] {
        &self.peer_addrs
    }

    /// Runs one online consistent-cut audit *without stopping traffic*:
    /// injects marker `token` at node 0, polls every node for its recorded
    /// snapshot until all have reported (or `timeout` elapses), then checks
    /// the cut for causal closure. A node that never sees the marker — a
    /// crash or a severed link mid-audit — yields
    /// [`CutVerdict::Incomplete`], never a false verdict: retry with a
    /// fresh token.
    pub fn cut_audit(&self, token: u64, timeout: Duration) -> io::Result<CutVerdict> {
        self.client(0)?.cut_start(token)?;
        let deadline = Instant::now() + timeout;
        let mut snapshots: Vec<Option<CutSnapshot>> = vec![None; self.len()];
        loop {
            for (i, slot) in snapshots.iter_mut().enumerate() {
                if slot.is_none() {
                    // A node mid-restart refuses connections; that is "not
                    // yet", not an error — the deadline decides.
                    if let Ok(snap) = self.client(i).and_then(|mut c| c.cut_report(token)) {
                        *slot = snap;
                    }
                }
            }
            let done = snapshots.iter().all(Option::is_some);
            if done || Instant::now() >= deadline {
                let collected: Vec<CutSnapshot> = snapshots.into_iter().flatten().collect();
                return Ok(verify_cut_closure(&collected));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Polls until the cluster is quiescent: every pending buffer empty,
    /// every sent update copy received at least once — resend duplicates
    /// are *excluded* (`received - duplicates_dropped`), so a surplus of
    /// retransmissions cannot mask a genuinely undelivered update parked
    /// in an unacked sender window — and the counters stable across two
    /// consecutive polls. Returns `false` on timeout. Every node must be
    /// up (restart crashed nodes first).
    pub fn drain(&self, timeout: Duration) -> io::Result<bool> {
        // One persistent client per node: the poll loop runs every 10ms and
        // per-call connections would churn thousands of sockets per drain.
        let mut clients = self
            .nodes
            .iter()
            .map(|node| ServiceClient::connect(node.client_addr))
            .collect::<io::Result<Vec<_>>>()?;
        let deadline = Instant::now() + timeout;
        let mut previous: Option<Vec<NodeStatus>> = None;
        loop {
            let statuses = clients
                .iter_mut()
                .map(ServiceClient::status)
                .collect::<io::Result<Vec<_>>>()?;
            let sent: u64 = statuses.iter().map(|s| s.messages_sent).sum();
            let received: u64 = statuses.iter().map(|s| s.messages_received).sum();
            let duplicates: u64 = statuses.iter().map(|s| s.duplicates_dropped).sum();
            let pending: u64 = statuses.iter().map(|s| s.pending).sum();
            let settled = pending == 0 && received.saturating_sub(duplicates) >= sent;
            // Reactor telemetry moves with this drain's own status polling
            // (every request wakes an event-loop worker), so it must not
            // count against the two-identical-polls stability check.
            let mut normalized = statuses;
            for status in &mut normalized {
                status.reactor_wakeups = 0;
                status.reactor_events = 0;
                status.reactor_rearms = 0;
                status.reactor_outq_hiwat = 0;
            }
            if settled && previous.as_ref() == Some(&normalized) {
                return Ok(true);
            }
            previous = Some(normalized);
            if Instant::now() >= deadline {
                return Ok(false);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Collects every node's local event logs;
    /// `result[node][partition]` is that node's `(checkpoint, live
    /// suffix)` pair for the partition (empty when not hosted — a
    /// compacting node ships its sealed-prefix summary instead of full
    /// history).
    #[allow(clippy::type_complexity)]
    pub fn collect_traces(&self) -> io::Result<Vec<Vec<(TraceCheckpoint, Vec<TraceEvent>)>>> {
        self.nodes
            .iter()
            .map(|node| ServiceClient::connect(node.client_addr)?.trace())
            .collect()
    }

    /// Regroups collected traces for the per-partition oracle:
    /// `result[partition][role]` is the `(checkpoint, live log)` pair
    /// recorded by the node hosting that role.
    #[allow(clippy::type_complexity)]
    fn traces_by_partition(
        &self,
        traces: Vec<Vec<(TraceCheckpoint, Vec<TraceEvent>)>>,
    ) -> Vec<Vec<(TraceCheckpoint, Vec<TraceEvent>)>> {
        let roles = self.map.graph().num_replicas();
        let registers = self.map.graph().num_registers();
        let mut parts: Vec<Vec<(TraceCheckpoint, Vec<TraceEvent>)>> = self
            .map
            .partitions()
            .map(|_| vec![(TraceCheckpoint::new(roles, registers), Vec::new()); roles])
            .collect();
        for (node, mut logs) in traces.into_iter().enumerate() {
            for (p, pair) in logs.drain(..).enumerate() {
                if let Some(role) = self.map.role_on(PartitionId(p as u32), node) {
                    parts[p][role.index()] = pair;
                }
            }
        }
        parts
    }

    /// Stitches the collected checkpoint summaries and live trace suffixes
    /// partition by partition through the shared [`prcc_checker`] oracle —
    /// each partition is an independent share-graph instance, so
    /// verification cost scales with the partition size, not the cluster
    /// size (and, with compaction, with *live* state, not run length).
    /// Returns one verdict (or replay error) per partition.
    pub fn verify_partitions(&self) -> io::Result<Vec<Result<Verdict, TraceError>>> {
        let parts = self.traces_by_partition(self.collect_traces()?);
        let map = &self.map;
        let verdicts = verify_partitions_checkpointed(self.map.graph(), &parts, |p, wire| {
            // Wire ids encode the issuing node above bit 40; the map
            // resolves its role within the partition.
            map.role_on(PartitionId(p as u32), (wire >> 40) as usize)
        });
        Ok(verdicts
            .into_iter()
            .map(|result| result.map(|stitched| stitched.verdict))
            .collect())
    }

    /// Replays the collected traces and folds all partitions into one
    /// verdict (any replay error short-circuits) — the post-hoc
    /// causal-consistency check of the whole deployment.
    pub fn verify(&self) -> io::Result<Result<Verdict, TraceError>> {
        let per_partition = self.verify_partitions()?;
        let mut combined = Verdict::default();
        for verdict in per_partition {
            match verdict {
                Ok(v) => {
                    combined.safety.extend(v.safety);
                    combined.liveness.extend(v.liveness);
                }
                Err(e) => return Ok(Err(e)),
            }
        }
        Ok(Ok(combined))
    }

    /// Gracefully shuts every node down and joins their core threads.
    pub fn shutdown(mut self) -> io::Result<()> {
        for node in &self.nodes {
            ServiceClient::connect(node.client_addr)?.shutdown()?;
        }
        for node in &mut self.nodes {
            node.join();
        }
        Ok(())
    }

    /// Blocks until every node has been shut down externally (used by
    /// `prcc-serve`).
    pub fn join(&mut self) {
        for node in &mut self.nodes {
            node.join();
        }
    }
}

/// Rebinds a listener on an exact address a crashed node just vacated,
/// retrying briefly: the old socket is closed by the crash switch, but the
/// OS may take a moment to release the port to a fresh `bind`.
fn bind_with_retry(addr: SocketAddr) -> io::Result<TcpListener> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}
