//! Topology selection and argument plumbing shared by the binaries.

use prcc_graph::{topologies, ShareGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds the share graph for a named topology family at size `nodes`.
///
/// Families: `ring` (default), `line`, `star`, `clique`, `figure5` (fixed
/// 4 nodes), `random` (seeded connected random graph with `2·nodes`
/// registers, ≤ 3 holders each).
///
/// # Errors
///
/// Returns a human-readable message for unknown names or invalid sizes.
pub fn build_topology(name: &str, nodes: usize, seed: u64) -> Result<ShareGraph, String> {
    match name {
        "ring" => {
            if nodes < 3 {
                return Err("ring needs --nodes >= 3".into());
            }
            Ok(topologies::ring(nodes))
        }
        "line" => {
            if nodes < 2 {
                return Err("line needs --nodes >= 2".into());
            }
            Ok(topologies::line(nodes))
        }
        "star" => {
            if nodes < 2 {
                return Err("star needs --nodes >= 2".into());
            }
            Ok(topologies::star(nodes))
        }
        "clique" => {
            if nodes < 2 {
                return Err("clique needs --nodes >= 2".into());
            }
            Ok(topologies::clique_full(nodes, 2))
        }
        "figure5" => Ok(topologies::figure5()),
        "random" => {
            if nodes < 2 {
                return Err("random needs --nodes >= 2".into());
            }
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Ok(topologies::random_connected(nodes, 2 * nodes, 3, &mut rng))
        }
        other => Err(format!(
            "unknown topology '{other}' (ring|line|star|clique|figure5|random)"
        )),
    }
}

/// Tiny `--flag value` argument scanner for the binaries (no external
/// parser available in this hermetic workspace).
#[derive(Debug)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments (after the binary name).
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// True when `--flag` appears (with or without a value).
    pub fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }

    /// The value following `--flag`, if any.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|at| self.raw.get(at + 1))
            .map(String::as_str)
    }

    /// Parses the value of `--flag`, falling back to `default`.
    ///
    /// # Errors
    ///
    /// Reports unparseable values with the offending flag name.
    pub fn parse_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value '{raw}' for {flag}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_build() {
        for name in ["ring", "line", "star", "clique", "random"] {
            let g = build_topology(name, 5, 7).unwrap();
            assert!(g.num_replicas() >= 4, "{name}");
        }
        assert_eq!(build_topology("figure5", 99, 0).unwrap().num_replicas(), 4);
        assert!(build_topology("ring", 2, 0).is_err());
        assert!(build_topology("moebius", 5, 0).is_err());
    }

    #[test]
    fn args_scanner() {
        let args = Args::from_vec(
            ["--nodes", "6", "--hotspot", "0.3", "--quiet"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(args.parse_or("--nodes", 4usize).unwrap(), 6);
        assert_eq!(args.parse_or("--ops", 100usize).unwrap(), 100);
        assert!((args.parse_or("--hotspot", 0.0f64).unwrap() - 0.3).abs() < 1e-9);
        assert!(args.has("--quiet"));
        assert!(args.parse_or("--hotspot", 0usize).is_err());
    }
}
