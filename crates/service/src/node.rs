//! A partition-routing TCP node with optional durability.
//!
//! A node no longer *is* a replica: it hosts one replica *role* of every
//! partition the [`PartitionMap`] places on it, each an independent
//! [`Replica`] with its own share-graph-derived clock. The node runs on a
//! **fixed thread budget** — `reactor_threads` event-loop workers plus one
//! core thread — independent of how many sockets are open:
//!
//! * the core thread serializes all state access (writes, reads, update
//!   application, trace/status snapshots, link bookkeeping) through one
//!   channel and routes every message to the target partition's replica;
//! * all I/O — both listeners, every peer link in both directions, and
//!   every client connection — is multiplexed onto the [`Reactor`]'s
//!   epoll workers. Each connection is a non-blocking state machine
//!   implementing [`Driver`] (see the `// lint: reactor` fence at the
//!   bottom of this file): [`PeerOut`] dials a peer's update listener
//!   (redialing with seeded, bounded backoff via one-shot timers if the
//!   link drops), handshakes, then coalesces outgoing updates — a batch
//!   closes when it reaches `batch_max` updates or `flush_interval`
//!   elapses, whichever is first, and the whole flush is emitted as *one*
//!   multi-partition frame carrying a section per partition present;
//!   [`PeerIn`] answers the handshake with the acknowledged resume
//!   offset, incrementally decodes multi-partition flush frames, fans
//!   their sections to the core, and streams acknowledgement frames back;
//!   [`ClientConn`] serves the request/response API of
//!   [`crate::wire::ClientRequest`], including the [`PartitionMap`]
//!   itself (`Config`) so clients can route by key.
//!
//! Outbound data flows through per-connection bounded queues of pooled
//! frame buffers (vectored writes, `WouldBlock` re-arms write interest
//! instead of parking a thread); a connection whose queue exceeds the
//! bound is torn down loudly rather than ballooning memory — peers redial
//! and resend from their acknowledged windows, slow clients reconnect.
//!
//! # Durability (wire v4 + `prcc-storage`)
//!
//! With a data dir configured, the core appends every state-mutating input
//! to a checksummed write-ahead log *before* applying it: client writes as
//! [`WalRecord::Issue`], decoded peer flush frames as
//! [`WalRecord::Receipt`]. Because the core loop is deterministic, replaying
//! snapshot + log on boot rebuilds the exact pre-crash state — clocks,
//! stores, pending buffers, dedup sets, event logs, *and* the per-peer
//! outbound windows below. Periodic snapshots fold the log prefix and
//! truncate it.
//!
//! Peer links are acknowledged: the core assigns every outbound update a
//! per-link sequence number and parks it in that link's *window*; the
//! receiver acks the highest sequence it has durably received (at the
//! handshake and periodically in-stream), which prunes the window. After
//! any reconnect — link loss or node restart — the sender resends the
//! window suffix past the peer's acknowledged offset, so updates buffered
//! into a dying socket are retransmitted instead of lost; the receiver's
//! dedup set absorbs the overlap.
//!
//! Updates carry globally unique wire ids (`node << 40 | seq`, with `seq`
//! node-global across partitions and recovered on restart), which drive
//! duplicate suppression in [`Replica::receive`] and the post-hoc
//! per-partition oracle replay over collected traces.
//!
//! # Telemetry (wire v6 + `prcc-telemetry`)
//!
//! Every node owns a [`Registry`]: the socket-level counters live there as
//! `net_*` handles shared by the I/O threads, the core mirrors its logical
//! state into `core_*`/`wal_*`/`trace_*` gauges when asked, and the
//! update-lifecycle stage histograms (`wal_append_us`, `send_us`,
//! `wire_us`, `pending_stall_us`, `visibility_us`, `ack_us`, `seal_us`,
//! `wal_fsync_us`) record wall-clock stage latencies for 1-in-N sampled
//! updates. Sampling is decided once, at the origin: a sampled write
//! carries its issue stamp in `issued_at` over the live v6 wire, and every
//! downstream stage keys off that stamp being non-zero — so the unsampled
//! hot path pays no clock reads, and WAL replay (whose durable codecs
//! deliberately drop the stamps, keeping recovery byte-deterministic)
//! records nothing through the very same code paths. The core also keeps a
//! [`FlightRecorder`] ring of recent structured events, dumped to
//! `<node_dir>/flight.log` when the node fail-stops or is crash-injected.

use crate::bufpool::{BufPool, Lease};
use crate::wire::{
    append_frame, decode_cut_marker, decode_hello_ack, decode_peer_ack, decode_peer_hello,
    decode_request, decode_sealed_batches, encode_cut_marker, encode_hello_ack_into,
    encode_multi_batch_sealed_into, encode_peer_ack_into, encode_peer_hello, encode_response_into,
    ClientRequest, ClientResponse, FlushSections, NodeStatus, PartitionCounters, PeerHello,
    TAG_CUT_MARKER, WIRE_VERSION,
};
use prcc_checker::trace::TraceEvent;
use prcc_checker::{CutSnapshot, PartitionCut, TraceCheckpoint, UpdateId};
use prcc_clock::{Protocol, WireClock};
use prcc_core::{Replica, SeqWatermark, Update};
use prcc_graph::{PartitionId, PartitionMap, RegisterId, ReplicaId};
use prcc_net::chaos::mix64;
use prcc_net::VirtualTime;
use prcc_reactor::{ConnId, Ctx, Driver, Fate, Reactor, ReactorHandle};
use prcc_storage::{
    decode_record, decode_snapshot, encode_snapshot, read_snapshot, write_snapshot, NodeSnapshot,
    PartitionSnapshot, PeerSnapshot, Wal, WalRecord,
};
use prcc_telemetry::{
    wall_us, Counter, FlightRecorder, MetricsSnapshot, Registry, Sampler, SharedHistogram,
};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Low 40 bits of a wire id: the node-global issue sequence (the issuing
/// node's index sits above them).
const WIRE_SEQ_MASK: u64 = (1 << 40) - 1;

/// Maximum messages one core sweep drains before committing the staged
/// WAL batch and releasing the sweep's replies. Bounds both the latency
/// any one reply can be held back and the staged-batch memory of a
/// flooded node; an idle node commits after every single message.
const SWEEP_MAX: usize = 256;

/// How many consistent-cut snapshots the core keeps, newest-first. Cut
/// audits are live-only diagnostics: an auditor that falls more than this
/// many tokens behind simply sees `None` and retries with a fresh token.
const CUTS_KEPT: usize = 8;

/// Maximum frames a peer link coalesces into one flush pass. Each frame
/// is itself `batch_max`-bounded, so one flush moves at most
/// `batch_max * MAX_FLUSH_FRAMES` updates before the link ships what it
/// has instead of accumulating further.
const MAX_FLUSH_FRAMES: usize = 8;

/// Tuning knobs of a node deployment.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum updates coalesced into one peer flush (emitted as a single
    /// multi-partition frame).
    pub batch_max: usize,
    /// How long a non-full batch may wait for more updates.
    pub flush_interval: Duration,
    /// Extra bytes shipped with each update (simulated value size).
    pub pad_bytes: usize,
    /// How long senders keep retrying a peer dial before giving up.
    pub connect_timeout: Duration,
    /// Directory for write-ahead logs and snapshots (`None` = in-memory
    /// node, the pre-durability behavior). Each node uses
    /// `<data_dir>/node-<i>/`.
    pub data_dir: Option<PathBuf>,
    /// WAL records between snapshots (snapshots truncate the log);
    /// 0 = never snapshot. Ignored without a data dir.
    pub snapshot_every: u64,
    /// Peer flush frames between streamed acknowledgements per link;
    /// 0 = acknowledge only at the handshake (useful for deterministic
    /// snapshot tests — windows then never shrink mid-run).
    pub ack_every: u64,
    /// Group commit: `fdatasync` the WAL every N appends (and sync
    /// snapshots before rename), for power-loss durability; 0 = never
    /// sync (a process crash still loses nothing). Ignored without a
    /// data dir.
    pub fsync_every: u64,
    /// Live trace events per partition above which the core seals the
    /// fully-acknowledged log prefix into its checkpoint summary and
    /// discards it; 0 = compact only when a snapshot is written. Keeps
    /// in-memory trace logs (and therefore snapshots) O(live state).
    pub trace_compact_at: usize,
    /// Hard cap on a per-peer resend window: a peer stranded past this
    /// many unacknowledged updates has its oldest entries evicted (counted
    /// in `NodeStatus::window_evicted`) instead of growing without bound.
    /// Eviction gives up on delivering those updates to that peer — its
    /// receive watermark will hold a permanent gap, so the link cannot
    /// heal by resend; restoring the peer takes a full state transfer
    /// (today: operator-driven, from a surviving holder's data) — a
    /// bounded node cannot replay unbounded absence.
    pub window_cap: usize,
    /// Update-lifecycle tracing period: 1 in `sample_every` issued updates
    /// carries a wall-clock issue stamp across the wire, feeding the
    /// per-stage latency histograms at every node it touches. 0 disables
    /// tracing entirely, 1 stamps every update. The unsampled hot path
    /// pays no clock reads.
    pub sample_every: u64,
    /// Flight-recorder capacity: how many recent core events the in-memory
    /// ring retains for the crash dump. 0 disables the recorder.
    pub flight_events: usize,
    /// Event-loop worker threads driving every socket of this node (peer
    /// links, inbound peers, clients). The node's total thread count is
    /// `reactor_threads + 1` (the core), independent of connection count.
    pub reactor_threads: usize,
    /// Per-connection outbound queue bound in bytes — the backpressure
    /// contract: a connection whose unflushed output exceeds this is torn
    /// down loudly instead of buffering without bound. Must comfortably
    /// hold a full resend window (`window_cap` updates) for peer links.
    pub outbound_queue_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch_max: 64,
            flush_interval: Duration::from_micros(200),
            pad_bytes: 0,
            connect_timeout: Duration::from_secs(10),
            data_dir: None,
            snapshot_every: 4096,
            ack_every: 16,
            fsync_every: 0,
            trace_compact_at: 1024,
            window_cap: 1 << 16,
            sample_every: 16,
            flight_events: 1024,
            reactor_threads: 2,
            outbound_queue_bytes: 16 << 20,
        }
    }
}

/// Everything a node needs to come up: its identity, pre-bound listeners
/// (binding first solves the ephemeral-port bootstrap), and the peer map.
#[derive(Debug)]
pub struct NodeSeed {
    /// This node's index in the partition map.
    pub node: usize,
    /// Listener for incoming peer update connections.
    pub peer_listener: TcpListener,
    /// Listener for the client API.
    pub client_listener: TcpListener,
    /// Peer update-listener addresses, indexed by node.
    pub peer_addrs: Vec<SocketAddr>,
}

/// Handle to a spawned node.
pub struct NodeHandle {
    /// The node's index in the partition map.
    pub node: usize,
    /// Address of the peer update listener.
    pub peer_addr: SocketAddr,
    /// Address of the client API listener.
    pub client_addr: SocketAddr,
    core: Option<thread::JoinHandle<()>>,
    kill: Arc<dyn Fn() + Send + Sync>,
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeHandle")
            .field("node", &self.node)
            .field("peer_addr", &self.peer_addr)
            .field("client_addr", &self.client_addr)
            .finish()
    }
}

impl NodeHandle {
    /// Blocks until the node's core thread exits (a client sent
    /// [`ClientRequest::Shutdown`], or the node was crashed).
    pub fn join(&mut self) {
        if let Some(handle) = self.core.take() {
            let _ = handle.join();
        }
    }

    /// Kills the node *without* graceful shutdown — fault injection for
    /// the recovery tests and `prcc-load --crash-restart`. The core stops
    /// mid-stream (no final snapshot, no drain), every peer connection is
    /// severed, and in-flight client requests see their connections drop.
    /// A node with a data dir can then be respawned on the same directory
    /// and recover from its snapshot + WAL.
    pub fn crash(&mut self) {
        (self.kill)();
        self.join();
    }
}

/// Commands the core sends to a peer link's outbound driver, delivered
/// through the reactor ([`ReactorHandle::command`]) in enqueue order.
enum PeerCmd<C> {
    /// A sequenced outbound update to batch into the next flush frame.
    Update(u64, PartitionId, Update<C>),
    /// A consistent-cut marker: written to the peer at exactly the command
    /// position it was enqueued at (after every update queued before it,
    /// before every update queued after it) — the Chandy–Lamport discipline
    /// the cut audit's closure check relies on. Markers are fire-and-forget:
    /// they never enter the resend window, so a link loss loses them and the
    /// audit reports the cut incomplete rather than wrong.
    Marker(u64),
    /// The core's reply to a [`CoreMsg::PeerResume`]: the window suffix to
    /// resend plus the link's current seal barrier.
    Resume {
        window: Vec<(u64, PartitionId, Update<C>)>,
        barrier: u64,
    },
    /// The link's seal barrier advanced: every sequence at or below it has
    /// been acknowledged by the peer, so future flush frames carry the new
    /// value and the receiver can skip the dependency re-check for
    /// straggler resends underneath it.
    Barrier(u64),
}

/// Messages into the core thread. Replies travel back out through the
/// reactor: client responses are encoded by the core and pushed with
/// [`ReactorHandle::send`] onto the requesting connection (`conn`); peer
/// link replies go to the link's driver as [`PeerCmd`]s.
enum CoreMsg<C> {
    Write {
        partition: PartitionId,
        register: RegisterId,
        value: u64,
        conn: ConnId,
    },
    Read {
        partition: PartitionId,
        register: RegisterId,
        conn: ConnId,
    },
    /// One decoded peer flush frame: sender node, its sections, the frame's
    /// seal barrier, and the inbound connection acknowledgements for this
    /// link travel on.
    Updates {
        peer: usize,
        sections: FlushSections<C>,
        barrier: u64,
        conn: ConnId,
    },
    /// A peer's inbound handshake: reply with the acknowledged resume
    /// offset for that link (a hello-ack frame on `conn`).
    PeerJoin {
        peer: usize,
        conn: ConnId,
    },
    /// An outbound link (re)connected and the peer acknowledged `acked`:
    /// prune the link's window to it and hand back what must be resent
    /// (a [`PeerCmd::Resume`] to `conn`).
    PeerResume {
        peer: usize,
        acked: u64,
        conn: ConnId,
    },
    /// A streamed acknowledgement from a peer arrived.
    PeerAcked {
        peer: usize,
        seq: u64,
    },
    /// A client-driven consistent-cut request: with `start`, record this
    /// node's snapshot for `token` (if unseen) and flood markers to every
    /// peer; either way reply with the recorded snapshot, if any.
    Cut {
        token: u64,
        start: bool,
        conn: ConnId,
    },
    /// A cut marker arrived on a peer update stream: record this node's
    /// snapshot for `token` (if unseen) and propagate markers onward.
    PeerMarker {
        token: u64,
    },
    Status(ConnId),
    Trace(ConnId),
    /// A live metrics scrape: mirror core state into the registry's gauges
    /// and reply with the frozen snapshot.
    Metrics(ConnId),
    /// Fault injection: stop immediately, no final snapshot.
    Crash,
    Shutdown,
}

/// Registry-backed handles for the socket-level metrics, shared by every
/// reactor driver of the node. The same values travel in the `Metrics`
/// snapshot under their `net_*` names, and `send_us` times the
/// issue→first-socket-enqueue stage for sampled updates.
struct NetMetrics {
    bytes_out: Counter,
    bytes_in: Counter,
    /// Per-partition update runs shipped (sections across all frames).
    batches_sent: Counter,
    /// Peer update frames written.
    frames_sent: Counter,
    /// Sender flush cycles.
    flushes: Counter,
    /// Update copies resent from the window after a reconnect.
    resent: Counter,
    /// Issue → first socket write, sampled updates only.
    send_us: Arc<SharedHistogram>,
}

impl NetMetrics {
    fn new(registry: &Registry) -> Self {
        NetMetrics {
            bytes_out: registry.counter("net_bytes_out"),
            bytes_in: registry.counter("net_bytes_in"),
            batches_sent: registry.counter("net_batches_sent"),
            frames_sent: registry.counter("net_frames_sent"),
            flushes: registry.counter("net_flushes"),
            resent: registry.counter("net_resent"),
            send_us: registry.histogram("send_us"),
        }
    }
}

/// One hosted partition: the role this node plays in it, the replica state
/// machine, the sealed-prefix checkpoint summary, and the live tail of the
/// partition-local event log.
struct PartitionSlot<P: Protocol> {
    role: ReplicaId,
    replica: Replica<P>,
    /// Summary of the sealed (fully acknowledged, verified-by-construction)
    /// trace prefix — what the post-hoc oracle stitches under `log`.
    checkpoint: TraceCheckpoint,
    /// The live trace suffix; bounded by the compaction threshold plus the
    /// unacknowledged in-flight tail.
    log: Vec<TraceEvent>,
    issued: u64,
    /// Own issues not yet acknowledged by every remote recipient:
    /// `(wire id, remaining (peer, link seq) pairs)`, ascending by wire
    /// id. An issue may be sealed out of the trace log only once it has
    /// left this queue — the seal rule the stitched oracle relies on.
    unacked: VecDeque<(u64, Vec<(usize, u64)>)>,
}

/// One peer link's state, owned by the core (so it is snapshot-able and
/// deterministically rebuilt by WAL replay).
struct PeerLink<C> {
    /// Next outbound sequence to assign (starts at 1).
    next_seq: u64,
    /// Outbound updates not yet acknowledged by the peer, in sequence
    /// order. Entries enter when enqueued to the sender and leave when an
    /// acknowledgement covers them (or the window cap evicts them).
    window: VecDeque<(u64, PartitionId, Update<C>)>,
    /// Highest outbound sequence the peer has acknowledged.
    acked_high: u64,
    /// Highest outbound sequence evicted by the window cap (0 = none).
    /// Evicted sequences can never be acknowledged — the update copy is
    /// gone — so they are treated as abandoned rather than allowed to
    /// block trace sealing forever; `window_evicted` is the loud record
    /// that delivery to this peer was given up on.
    evicted_high: u64,
    /// Inbound receive watermark: contiguous high-water (the offset this
    /// node acknowledges back) plus the out-of-order residue — also the
    /// exact per-link duplicate filter.
    recv: SeqWatermark,
    /// Flush frames received since the last streamed acknowledgement.
    frames_since_ack: u64,
    /// Origin side: highest outbound sequence retired from an `unacked`
    /// pair *because the peer acknowledged it* (never because the window
    /// cap evicted it). Every sequence at or below this is provably
    /// observed by the peer, so it is safe to advertise as the link's seal
    /// barrier. Live-only — not snapshotted, rebuilt from fresh acks after
    /// recovery (the barrier is an optimization, never a correctness
    /// input).
    sealed_high: u64,
    /// Origin side: the seal barrier last shipped to the peer's driver
    /// (so barrier commands flow only when the value advances). Live-only.
    barrier_sent: u64,
    /// Receiver side: highest seal barrier seen on this link's inbound
    /// frames, max-monotone. Straggler resends at or below it skip the
    /// watermark dependency re-check in `apply_sections` — by
    /// construction they are duplicates of updates this node already
    /// acknowledged. Live-only: WAL receipts carry no barrier, so replay
    /// takes the full re-check path and stays byte-deterministic.
    seal_barrier: u64,
}

impl<C> PeerLink<C> {
    fn new() -> Self {
        PeerLink {
            next_seq: 1,
            window: VecDeque::new(),
            acked_high: 0,
            evicted_high: 0,
            recv: SeqWatermark::new(),
            frames_since_ack: 0,
            sealed_high: 0,
            barrier_sent: 0,
            seal_barrier: 0,
        }
    }
}

/// The core thread's telemetry: the metric registry, pre-fetched handles
/// for the lifecycle-stage histograms, the sampling decision, the flight
/// recorder, and the live stamp side-tables.
///
/// Deliberately NOT part of the snapshot/WAL state: every value here is
/// wall-clock-derived, and the recovery suite proves durable bytes are
/// identical across same-seed runs. Stamps therefore ride only the live
/// v6 wire (`issued_at`), never the durable codecs — a recovered core
/// starts with an empty side-table and records nothing during replay,
/// through the same code paths the live loop uses.
struct CoreTelemetry {
    registry: Arc<Registry>,
    sampler: Sampler,
    flight: FlightRecorder,
    /// Write stamp → WAL append completed (origin only).
    wal_append_us: Arc<SharedHistogram>,
    /// Issue at origin → frame decoded at a recipient.
    wire_us: Arc<SharedHistogram>,
    /// Issue at origin → applied at a recipient: the end-to-end update
    /// visibility latency the paper's protocol trades against metadata.
    visibility_us: Arc<SharedHistogram>,
    /// Received → applied at a recipient: time buffered behind the
    /// deliverability predicate — the false-dependency cost made visible.
    pending_stall_us: Arc<SharedHistogram>,
    /// Issue at origin → the recipient's acknowledgement pruned the copy
    /// from the resend window.
    ack_us: Arc<SharedHistogram>,
    /// Issue at origin → the issue's trace event sealed into the
    /// checkpoint (every remote recipient acknowledged it).
    seal_us: Arc<SharedHistogram>,
    /// Sampled received-but-unapplied copies: wire id → receive stamp.
    /// Bounded by the pending buffers (entries leave at apply).
    stall_stamps: HashMap<u64, u64>,
    /// This node's own sampled issues: wire id → issue stamp, consumed
    /// when the issue seals. Bounded by the unsealed trace tail.
    seal_stamps: HashMap<u64, u64>,
}

impl CoreTelemetry {
    fn new(registry: Arc<Registry>, cfg: &ServiceConfig) -> Self {
        CoreTelemetry {
            sampler: Sampler::new(cfg.sample_every),
            flight: FlightRecorder::new(cfg.flight_events),
            wal_append_us: registry.histogram("wal_append_us"),
            wire_us: registry.histogram("wire_us"),
            visibility_us: registry.histogram("visibility_us"),
            pending_stall_us: registry.histogram("pending_stall_us"),
            ack_us: registry.histogram("ack_us"),
            seal_us: registry.histogram("seal_us"),
            stall_stamps: HashMap::new(),
            seal_stamps: HashMap::new(),
            registry,
        }
    }
}

/// The core's full logical state: everything the WAL + snapshot must be
/// able to rebuild. Kept separate from the I/O threads so the live event
/// loop and boot-time replay run the exact same transition functions.
struct Core<P: Protocol> {
    node: usize,
    partitions: Vec<Option<PartitionSlot<P>>>,
    links: Vec<PeerLink<P::Clock>>,
    /// Node-global wire-id sequence (low 40 bits of issued update ids).
    seq: u64,
    issued: u64,
    sent: u64,
    received: u64,
    dropped_misrouted: u64,
    /// Duplicate deliveries suppressed by the link watermarks.
    duplicates_dropped: u64,
    /// Straggler resends dropped by the seal-barrier fast path *without*
    /// the per-sequence watermark re-check (a subset of
    /// `duplicates_dropped`, which still counts them). Live-only: replay
    /// sees no barriers, takes the re-check path, and lands on identical
    /// durable state.
    barrier_skips: u64,
    /// Hard cap on any one resend window (config).
    window_cap: usize,
    /// Largest window observed.
    max_window: u64,
    /// Entries evicted by the cap.
    window_evicted: u64,
    /// Stage histograms, sampling, and the flight recorder (live-only
    /// state — excluded from snapshots and rebuilt empty on recovery).
    tel: CoreTelemetry,
    /// Recent consistent-cut snapshots by token, oldest first, bounded by
    /// [`CUTS_KEPT`]. Live-only audit state: never snapshotted or WAL'd —
    /// a node that restarts mid-audit simply has no snapshot for the
    /// token, and the audit reports the cut incomplete.
    cuts: VecDeque<(u64, CutSnapshot)>,
}

impl<P: Protocol> Core<P> {
    fn new(
        protocol: &P,
        map: &PartitionMap,
        node: usize,
        window_cap: usize,
        tel: CoreTelemetry,
    ) -> Self {
        let roles = map.graph().num_replicas();
        let registers = map.graph().num_registers();
        let partitions = map
            .partitions()
            .map(|p| {
                map.role_on(p, node).map(|role| PartitionSlot {
                    role,
                    replica: Replica::new(protocol, role),
                    checkpoint: TraceCheckpoint::new(roles, registers),
                    log: Vec::new(),
                    issued: 0,
                    unacked: VecDeque::new(),
                })
            })
            .collect();
        Core {
            node,
            partitions,
            links: (0..map.num_nodes()).map(|_| PeerLink::new()).collect(),
            seq: 0,
            issued: 0,
            sent: 0,
            received: 0,
            dropped_misrouted: 0,
            duplicates_dropped: 0,
            barrier_skips: 0,
            window_cap: window_cap.max(1),
            max_window: 0,
            window_evicted: 0,
            tel,
            cuts: VecDeque::new(),
        }
    }

    /// Whether a snapshot for cut `token` was already recorded (the first
    /// marker sighting snapshots; later sightings of the same token are
    /// the expected echoes from the other peer links).
    fn cut_seen(&self, token: u64) -> bool {
        self.cuts.iter().any(|(t, _)| *t == token)
    }

    /// The recorded snapshot for `token`, if it is still retained.
    fn cut_snapshot(&self, token: u64) -> Option<CutSnapshot> {
        self.cuts
            .iter()
            .find(|(t, _)| *t == token)
            .map(|(_, snap)| snap.clone())
    }

    /// Records this node's side of consistent cut `token`: for every
    /// hosted partition, the issued frontier and the per-issuer-role
    /// applied frontiers *at this instant* — the sealed checkpoint summary
    /// joined with the live log tail, which is exactly the state the
    /// post-hoc oracle would reconstruct up to this point. Wire ids are
    /// monotone per issuer and applied in issue order per issuer, so these
    /// frontiers completely describe the cut for the closure check in
    /// [`prcc_checker::verify_cut_closure`].
    fn record_cut(&mut self, map: &PartitionMap, token: u64) {
        let mut partitions = Vec::with_capacity(self.partitions.len());
        for (index, slot) in self.partitions.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let partition = PartitionId(index as u32);
            let mut issued_high = slot.checkpoint.last_issue;
            let mut applied = slot.checkpoint.applied_high.clone();
            for event in &slot.log {
                match event {
                    TraceEvent::Issue { update, .. } => {
                        issued_high = issued_high.max(*update);
                        // An issue is applied at its issuer the moment it
                        // is issued (step 2 of the prototype).
                        if let Some(high) = applied.get_mut(slot.role.index()) {
                            *high = (*high).max(*update);
                        }
                    }
                    TraceEvent::Apply { update, .. } => {
                        let issuer_node = (*update >> 40) as usize;
                        if let Some(role) = map.role_on(partition, issuer_node) {
                            if let Some(high) = applied.get_mut(role.index()) {
                                *high = (*high).max(*update);
                            }
                        }
                    }
                }
            }
            partitions.push(PartitionCut {
                partition: partition.0,
                role: slot.role.index(),
                issued_high,
                applied,
                pending: slot.replica.pending_len() as u64,
            });
        }
        self.cuts.push_back((
            token,
            CutSnapshot {
                node: self.node as u64,
                token,
                partitions,
            },
        ));
        while self.cuts.len() > CUTS_KEPT {
            self.cuts.pop_front();
        }
    }

    /// Whether a client write to `(partition, register)` can be accepted
    /// here — checked *before* the WAL append so rejected writes never
    /// enter the durable history.
    fn can_write(&self, protocol: &P, partition: PartitionId, register: RegisterId) -> bool {
        self.partitions
            .get(partition.index())
            .and_then(Option::as_ref)
            .is_some_and(|slot| protocol.share_graph().stores(slot.role, register))
    }

    fn next_wire_id(&mut self) -> u64 {
        self.seq += 1;
        ((self.node as u64) << 40) | self.seq
    }

    /// Applies an accepted client write: advances the replica, records the
    /// trace event, and parks a copy in every recipient peer's window.
    /// Returns the `(peer, seq, partition, update)` copies for the live
    /// path to enqueue to sender threads (replay discards them — senders
    /// pull the windows on their first handshake instead).
    ///
    /// `stamp_us` is the wall-clock issue stamp of a *sampled* live write
    /// (0 = unsampled, and always 0 on replay). It rides `issued_at` over
    /// the live wire only: the durable codecs drop it, so it never
    /// perturbs the deterministic replica/trace/window state below.
    ///
    /// Shared by the live write path and WAL replay; determinism of this
    /// function (and `apply_sections`) is what makes snapshot + log replay
    /// reproduce the pre-crash state exactly.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn apply_write(
        &mut self,
        protocol: &P,
        map: &PartitionMap,
        partition: PartitionId,
        register: RegisterId,
        value: u64,
        wire_id: u64,
        stamp_us: u64,
    ) -> Option<Vec<(usize, u64, PartitionId, Update<P::Clock>)>> {
        self.seq = self.seq.max(wire_id & WIRE_SEQ_MASK);
        let node = self.node;
        let slot = self
            .partitions
            .get_mut(partition.index())
            .and_then(Option::as_mut)?;
        let clock = slot.replica.write(protocol, register, value).ok()?;
        slot.log.push(TraceEvent::Issue {
            replica: slot.role,
            register,
            update: wire_id,
        });
        slot.issued += 1;
        self.issued += 1;
        let update = Update {
            id: UpdateId(wire_id),
            issuer: slot.role,
            register,
            value,
            clock,
            issued_at: VirtualTime(stamp_us),
            received_at: VirtualTime::ZERO,
        };
        if stamp_us != 0 {
            self.tel.seal_stamps.insert(wire_id, stamp_us);
        }
        let role = slot.role;
        let mut sends = Vec::new();
        let mut pairs = Vec::new();
        for recipient in protocol.recipients(role, register) {
            let peer = map.node_of(partition, recipient);
            if peer == node {
                continue;
            }
            let link = &mut self.links[peer];
            let seq = link.next_seq;
            link.next_seq += 1;
            link.window.push_back((seq, partition, update.clone()));
            // Cap the window: a peer stranded past `window_cap` must not
            // grow this node without bound. Evicted entries cannot be
            // resent — the eviction counter is the loud signal that the
            // peer needs a fresh data dir when it returns.
            while link.window.len() > self.window_cap {
                if let Some((evicted, _, _)) = link.window.pop_front() {
                    link.evicted_high = link.evicted_high.max(evicted);
                }
                self.window_evicted += 1;
            }
            self.max_window = self.max_window.max(link.window.len() as u64);
            self.sent += 1;
            pairs.push((peer, seq));
            sends.push((peer, seq, partition, update.clone()));
        }
        if !pairs.is_empty() {
            // Track until every recipient acks: only then may the issue's
            // trace event be sealed out of the live log.
            let slot = self.partitions[partition.index()]
                .as_mut()
                // lint: allow(unwrap) hosting checked at the top of issue()
                .expect("slot checked above");
            slot.unacked.push_back((wire_id, pairs));
        }
        Some(sends)
    }

    /// Applies one peer flush frame's sections: dedups against the link's
    /// receive watermark, feeds the replicas, and records apply events.
    /// Shared by the live path and WAL replay.
    ///
    /// The watermark's contiguous high-water is the acknowledgement line:
    /// acknowledging sequence `s` promises every sequence `<= s` is
    /// durable, so a gap — which can only mean an earlier frame was
    /// dropped (e.g. its WAL append failed) — holds the line (out-of-order
    /// arrivals wait in the watermark's residue) rather than being skipped
    /// over, or the sender would prune updates this node never kept.
    ///
    /// The same watermark is the duplicate filter: resend overlap after a
    /// reconnect is dropped *here*, at the link, in O(reordering window)
    /// memory — the per-replica id set that used to absorb it grew with
    /// history. Unsequenced updates (`seq == 0`, legacy v2 test traffic)
    /// bypass the filter and must be exactly-once.
    fn apply_sections(&mut self, protocol: &P, peer: usize, sections: FlushSections<P::Clock>) {
        let node = self.node;
        for (partition, updates) in sections {
            let Some(slot) = self
                .partitions
                .get_mut(partition.index())
                .and_then(Option::as_mut)
            else {
                // Misrouted section: the reader already validated the
                // partition range, so this is a hosting mismatch.
                self.dropped_misrouted += updates.len() as u64;
                eprintln!(
                    "prcc-service[{node}]: dropped {} updates for unhosted {partition}",
                    updates.len()
                );
                continue;
            };
            // Stage stamps: at most one clock read for the receive sweep
            // and one for the apply sweep, taken lazily only when the
            // frame actually carries sampled updates (replayed frames
            // never do — the durable codec dropped their stamps).
            let mut recv_now = 0u64;
            for (seq, update) in updates {
                self.received += 1;
                // Seal-barrier fast path: the origin advertised that every
                // sequence at or below the barrier is acknowledged here, so
                // a straggler resend underneath it is a duplicate by
                // construction — drop it without the watermark re-check.
                // Identical counter motion to the slow path (the watermark
                // would have returned `false`), so replay — which never
                // sees a barrier — lands on the same `duplicates_dropped`.
                if seq > 0 && seq <= self.links[peer].seal_barrier {
                    self.barrier_skips += 1;
                    self.duplicates_dropped += 1;
                    continue;
                }
                if seq > 0 && !self.links[peer].recv.observe(seq) {
                    self.duplicates_dropped += 1;
                    continue;
                }
                let stamp = update.issued_at.0;
                if stamp != 0 {
                    if recv_now == 0 {
                        recv_now = wall_us();
                    }
                    self.tel.wire_us.record(recv_now.saturating_sub(stamp));
                    self.tel.stall_stamps.insert(update.id.0, recv_now);
                }
                // The replica's own `received_at` stays at virtual zero:
                // pending-buffer state is snapshotted, and real time in it
                // would break byte-identical recovery. Stall accounting
                // lives in the side-table above instead.
                slot.replica.receive(update, VirtualTime::ZERO);
            }
            let mut apply_now = 0u64;
            for done in slot.replica.drain(protocol) {
                if let Some(recv_us) = self.tel.stall_stamps.remove(&done.id.0) {
                    if apply_now == 0 {
                        apply_now = wall_us();
                    }
                    self.tel
                        .pending_stall_us
                        .record(apply_now.saturating_sub(recv_us));
                    self.tel
                        .visibility_us
                        .record(apply_now.saturating_sub(done.issued_at.0));
                }
                if protocol.stores_value(slot.role, done.register) {
                    slot.log.push(TraceEvent::Apply {
                        replica: slot.role,
                        update: done.id.0,
                    });
                }
            }
        }
    }

    /// Prunes a link's window: the peer has acknowledged everything up to
    /// and including `acked`. Sampled copies leaving the window record the
    /// acknowledgement-stage latency (issue → this prune); entries
    /// restored from a snapshot lost their stamps in the durable codec and
    /// record nothing.
    fn prune(&mut self, peer: usize, acked: u64) {
        if let Some(link) = self.links.get_mut(peer) {
            link.acked_high = link.acked_high.max(acked);
            let mut now = 0u64;
            while link.window.front().is_some_and(|(seq, _, _)| *seq <= acked) {
                // lint: allow(unwrap) loop condition just saw a front entry
                let (_, _, update) = link.window.pop_front().expect("front checked");
                let stamp = update.issued_at.0;
                if stamp != 0 {
                    if now == 0 {
                        now = wall_us();
                    }
                    self.tel.ack_us.record(now.saturating_sub(stamp));
                }
            }
        }
    }

    /// Plans a trace compaction: for every hosted partition whose live log
    /// holds at least `min_events` entries, the longest log prefix whose
    /// issues have all been acknowledged by every remote recipient.
    /// Applies may always seal; an unacknowledged issue blocks itself and
    /// everything after it (the stitched oracle's liveness guarantee rests
    /// on sealed issues being durable at all their recipients).
    ///
    /// Consumes fully-acknowledged entries off the `unacked` queues (an
    /// un-logged mutation: which entries are acked is derived state, only
    /// the resulting seal lengths are logged and replayed).
    fn plan_seal(&mut self, min_events: usize) -> Vec<(PartitionId, u64)> {
        let mut seals = Vec::new();
        let links = &mut self.links;
        for (p, slot) in self.partitions.iter_mut().enumerate() {
            let Some(slot) = slot.as_mut() else { continue };
            if slot.log.len() < min_events.max(1) {
                continue;
            }
            while let Some((_, pairs)) = slot.unacked.front_mut() {
                // A pair stops blocking once acknowledged — or once its
                // window entry was evicted by the cap (it can never be
                // acknowledged then; `window_evicted` records the loss).
                // Pairs retired *because acknowledged* advance the link's
                // seal barrier: the peer provably observed them, so future
                // resends at or below `sealed_high` can skip its
                // dependency re-check. Evicted pairs must never advance it
                // — the peer never saw those.
                pairs.retain(|&(peer, seq)| {
                    let Some(link) = links.get_mut(peer) else {
                        // No such link: keep blocking, matching the
                        // pre-barrier behavior (this cannot happen for a
                        // validated map, but silently unblocking would
                        // falsely seal).
                        return true;
                    };
                    let keep = seq > link.acked_high && seq > link.evicted_high;
                    if !keep && seq <= link.acked_high {
                        link.sealed_high = link.sealed_high.max(seq);
                    }
                    keep
                });
                if pairs.is_empty() {
                    slot.unacked.pop_front();
                } else {
                    break;
                }
            }
            // Entries sit in wire-id order, so the first still-unacked
            // issue bounds the sealable prefix.
            let blocked = slot.unacked.front().map(|&(wire, _)| wire);
            let sealable = slot
                .log
                .iter()
                .take_while(|event| match event {
                    TraceEvent::Issue { update, .. } => blocked.is_none_or(|b| *update < b),
                    TraceEvent::Apply { .. } => true,
                })
                .count();
            if sealable > 0 {
                seals.push((PartitionId(p as u32), sealable as u64));
            }
        }
        seals
    }

    /// Applies a (planned or replayed) trace compaction: absorbs each
    /// partition's prefix into its checkpoint summary and discards it.
    /// Shared by the live path and WAL replay of [`WalRecord::Checkpoint`]
    /// records, so recovered checkpoint + suffix pairs match the pre-crash
    /// state exactly.
    fn apply_seal(&mut self, map: &PartitionMap, seals: &[(PartitionId, u64)]) {
        for &(partition, events) in seals {
            let Some(slot) = self
                .partitions
                .get_mut(partition.index())
                .and_then(Option::as_mut)
            else {
                continue;
            };
            let events = (events as usize).min(slot.log.len());
            // Seal-stage latency for sampled own issues leaving the live
            // log. Replay reaches here with an empty side-table, so
            // recorded seals replay silently.
            let mut now = 0u64;
            for event in &slot.log[..events] {
                if let TraceEvent::Issue { update, .. } = event {
                    if let Some(stamp) = self.tel.seal_stamps.remove(update) {
                        if now == 0 {
                            now = wall_us();
                        }
                        self.tel.seal_us.record(now.saturating_sub(stamp));
                    }
                }
            }
            slot.checkpoint.absorb(&slot.log[..events], |w| {
                map.role_on(partition, (w >> 40) as usize)
            });
            slot.log.drain(..events);
            // Drop queue entries the seal covered (replay reaches here
            // with post-snapshot ack state, where they may still linger).
            while slot
                .unacked
                .front()
                .is_some_and(|&(wire, _)| wire <= slot.checkpoint.last_issue)
            {
                slot.unacked.pop_front();
            }
        }
    }

    /// Handshake resume: prune to the peer's acknowledged offset and hand
    /// back the remaining window for retransmission.
    fn resume(&mut self, peer: usize, acked: u64) -> Vec<(u64, PartitionId, Update<P::Clock>)> {
        self.prune(peer, acked);
        self.links
            .get(peer)
            .map(|link| link.window.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn status(&self) -> NodeStatus {
        let per_partition = self
            .partitions
            .iter()
            .map(|slot| match slot {
                Some(slot) => PartitionCounters {
                    issued: slot.issued,
                    applies: slot.replica.applies(),
                    pending: slot.replica.pending_len() as u64,
                },
                None => PartitionCounters::default(),
            })
            .collect();
        NodeStatus {
            node: self.node as u64,
            issued: self.issued,
            messages_sent: self.sent,
            messages_received: self.received,
            applies: self
                .partitions
                .iter()
                .flatten()
                .map(|s| s.replica.applies())
                .sum(),
            pending: self
                .partitions
                .iter()
                .flatten()
                .map(|s| s.replica.pending_len() as u64)
                .sum(),
            duplicates_dropped: self.duplicates_dropped,
            dropped_misrouted: self.dropped_misrouted,
            trace_events: self
                .partitions
                .iter()
                .flatten()
                .map(|s| s.log.len() as u64)
                .sum(),
            sealed_events: self
                .partitions
                .iter()
                .flatten()
                .map(|s| s.checkpoint.events)
                .sum(),
            max_window: self.max_window,
            window_evicted: self.window_evicted,
            barrier_skips: self.barrier_skips,
            // Socket byte/frame counters and reactor counters are filled
            // in by the core loop's status handler, WAL counters by the
            // core loop.
            bytes_out: 0,
            bytes_in: 0,
            batches_sent: 0,
            frames_sent: 0,
            flushes: 0,
            resent: 0,
            wal_appends: 0,
            snapshots_written: 0,
            wal_bytes: 0,
            snapshot_bytes: 0,
            first_snapshot_bytes: 0,
            reactor_wakeups: 0,
            reactor_events: 0,
            reactor_rearms: 0,
            reactor_outq_hiwat: 0,
            per_partition,
        }
    }

    /// Mirrors the core's logical state (and the durability sidecar's
    /// counters) into the registry's gauges, so a metrics snapshot taken
    /// right after reflects this instant. Cold path: runs only per scrape.
    fn mirror_gauges(&self, durable: &Option<Durable>) {
        let r = &self.tel.registry;
        r.gauge("core_issued").set(self.issued);
        r.gauge("core_applies").set(
            self.partitions
                .iter()
                .flatten()
                .map(|s| s.replica.applies())
                .sum(),
        );
        r.gauge("core_pending").set(
            self.partitions
                .iter()
                .flatten()
                .map(|s| s.replica.pending_len() as u64)
                .sum(),
        );
        r.gauge("core_duplicates_dropped")
            .set(self.duplicates_dropped);
        r.gauge("core_dropped_misrouted")
            .set(self.dropped_misrouted);
        r.gauge("core_max_window").set(self.max_window);
        r.gauge("core_window_evicted").set(self.window_evicted);
        r.gauge("core_barrier_skips").set(self.barrier_skips);
        r.gauge("trace_events_live").set(
            self.partitions
                .iter()
                .flatten()
                .map(|s| s.log.len() as u64)
                .sum(),
        );
        r.gauge("trace_events_sealed").set(
            self.partitions
                .iter()
                .flatten()
                .map(|s| s.checkpoint.events)
                .sum(),
        );
        if let Some(d) = durable {
            r.gauge("wal_appends").set(d.wal_appends);
            r.gauge("wal_writes").set(d.wal_writes);
            r.gauge("wal_bytes").set(d.wal.bytes());
            r.gauge("snapshots_written").set(d.snapshots_written);
            r.gauge("snapshot_bytes").set(d.snapshot_bytes);
        }
    }

    fn traces(&self) -> Vec<(TraceCheckpoint, Vec<TraceEvent>)> {
        self.partitions
            .iter()
            .map(|slot| match slot.as_ref() {
                Some(s) => (s.checkpoint.clone(), s.log.clone()),
                // Unhosted: an empty placeholder (the collector regroups
                // by hosted role and never reads these).
                None => (TraceCheckpoint::new(0, 0), Vec::new()),
            })
            .collect()
    }

    /// Folds the core into a snapshot covering WAL records `..= wal_high`.
    fn to_snapshot(&self, wal_high: u64) -> NodeSnapshot<P::Clock>
    where
        P::Clock: WireClock,
    {
        NodeSnapshot {
            wal_high,
            seq: self.seq,
            issued: self.issued,
            sent: self.sent,
            received: self.received,
            dropped_misrouted: self.dropped_misrouted,
            duplicates_dropped: self.duplicates_dropped,
            partitions: self
                .partitions
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|slot| PartitionSnapshot {
                        state: slot.replica.export_state(),
                        issued: slot.issued,
                        checkpoint: slot.checkpoint.clone(),
                        log: slot.log.clone(),
                    })
                })
                .collect(),
            peers: self
                .links
                .iter()
                .map(|link| PeerSnapshot {
                    next_seq: link.next_seq,
                    acked_high: link.acked_high,
                    recv_high: link.recv.high(),
                    recv_residue: link.recv.residue().collect(),
                    window: link.window.iter().cloned().collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a core from a snapshot, validating it against the current
    /// deployment configuration.
    fn from_snapshot(
        protocol: &P,
        map: &PartitionMap,
        node: usize,
        window_cap: usize,
        snap: NodeSnapshot<P::Clock>,
        tel: CoreTelemetry,
    ) -> io::Result<Self> {
        let bad =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {what}"));
        if snap.partitions.len() != map.num_partitions() as usize {
            return Err(bad("partition count differs from the map"));
        }
        if snap.peers.len() != map.num_nodes() {
            return Err(bad("peer count differs from the map"));
        }
        let mut partitions = Vec::with_capacity(snap.partitions.len());
        for (p, slot) in snap.partitions.into_iter().enumerate() {
            let expected = map.role_on(PartitionId(p as u32), node);
            match (slot, expected) {
                (None, None) => partitions.push(None),
                (Some(part), Some(role)) => {
                    if part.state.id != role {
                        return Err(bad("partition role differs from the map"));
                    }
                    let replica = Replica::from_state(protocol, part.state)
                        .map_err(|e| bad(&format!("replica state: {e}")))?;
                    partitions.push(Some(PartitionSlot {
                        role,
                        replica,
                        checkpoint: part.checkpoint,
                        log: part.log,
                        issued: part.issued,
                        unacked: VecDeque::new(),
                    }));
                }
                _ => return Err(bad("hosted partitions differ from the map")),
            }
        }
        let mut core = Core {
            node,
            partitions,
            links: snap
                .peers
                .into_iter()
                .map(|peer| PeerLink {
                    next_seq: peer.next_seq,
                    window: peer.window.into(),
                    acked_high: peer.acked_high,
                    evicted_high: 0,
                    recv: SeqWatermark::from_parts(peer.recv_high, peer.recv_residue),
                    frames_since_ack: 0,
                    // Seal-barrier state is live-only: a restarted node
                    // re-derives it from post-recovery acks, so replay
                    // stays byte-deterministic.
                    sealed_high: 0,
                    barrier_sent: 0,
                    seal_barrier: 0,
                })
                .collect(),
            seq: snap.seq,
            issued: snap.issued,
            sent: snap.sent,
            received: snap.received,
            dropped_misrouted: snap.dropped_misrouted,
            duplicates_dropped: snap.duplicates_dropped,
            barrier_skips: 0,
            window_cap: window_cap.max(1),
            max_window: 0,
            window_evicted: 0,
            tel,
            cuts: VecDeque::new(),
        };
        core.rebuild_unacked();
        Ok(core)
    }

    /// Rebuilds the per-partition unacknowledged-issue queues from the
    /// resend windows (the windows are the source of truth: an issue is
    /// fully acknowledged exactly when no window still parks a copy).
    /// Only this node's own issues gate trace sealing, so forwarded
    /// partitions' entries resolve through the wire id's node bits.
    fn rebuild_unacked(&mut self) {
        let own = (self.node as u64) << 40;
        let mut by_wire: HashMap<u64, (PartitionId, Vec<(usize, u64)>)> = HashMap::new();
        for (peer, link) in self.links.iter().enumerate() {
            for &(seq, partition, ref update) in &link.window {
                if update.id.0 & !WIRE_SEQ_MASK != own {
                    continue; // Not issued here (cannot happen today).
                }
                by_wire
                    .entry(update.id.0)
                    .or_insert_with(|| (partition, Vec::new()))
                    .1
                    .push((peer, seq));
            }
        }
        let mut wires: Vec<u64> = by_wire.keys().copied().collect();
        wires.sort_unstable();
        for slot in self.partitions.iter_mut().flatten() {
            slot.unacked.clear();
        }
        for wire in wires {
            // lint: allow(unwrap) key came from by_wire's own key set
            let (partition, pairs) = by_wire.remove(&wire).expect("collected above");
            if let Some(slot) = self
                .partitions
                .get_mut(partition.index())
                .and_then(Option::as_mut)
            {
                slot.unacked.push_back((wire, pairs));
            }
        }
    }
}

/// The durability sidecar of a core: the open WAL, record indexing, and
/// snapshot policy.
struct Durable {
    wal: Wal,
    snapshot_path: PathBuf,
    /// Index the next appended record gets (monotonic across truncations).
    next_index: u64,
    snapshot_every: u64,
    records_since_snapshot: u64,
    /// Sync snapshots through to disk before renaming (paired with the
    /// WAL's group commit).
    fsync: bool,
    /// Logical records appended (one per staged record).
    wal_appends: u64,
    /// Physical WAL writes issued (one per committed batch) — group commit
    /// makes this measurably smaller than `wal_appends` under load.
    wal_writes: u64,
    snapshots_written: u64,
    /// Payload size of the most recent snapshot, and of the first one this
    /// process wrote — the flat-snapshot regression gate's numerator and
    /// baseline.
    snapshot_bytes: u64,
    first_snapshot_bytes: u64,
    /// Encoded-but-unwritten records of the current sweep: contiguous
    /// payload bytes plus `(start, len)` spans. [`Durable::commit`] hands
    /// all spans to the WAL as one group-committed batch.
    staged_buf: Vec<u8>,
    staged_spans: Vec<(usize, usize)>,
}

impl Durable {
    /// Stages one encoded payload; infallible (I/O happens at commit).
    /// Returns the record's WAL index.
    fn stage_payload(&mut self, encode: impl FnOnce(u64, &mut Vec<u8>)) -> u64 {
        let index = self.next_index;
        let start = self.staged_buf.len();
        encode(index, &mut self.staged_buf);
        self.staged_spans
            .push((start, self.staged_buf.len() - start));
        self.next_index += 1;
        self.records_since_snapshot += 1;
        self.wal_appends += 1;
        index
    }

    fn stage<C: WireClock>(&mut self, record: &WalRecord<C>) -> u64 {
        self.stage_payload(|index, out| prcc_storage::encode_record_into(index, record, out))
    }

    fn stage_receipt<C: WireClock>(&mut self, peer: u64, sections: &FlushSections<C>) -> u64 {
        self.stage_payload(|index, out| {
            prcc_storage::encode_receipt_record_into(index, peer, sections, out)
        })
    }

    /// Whether any records are staged but not yet committed.
    fn staged(&self) -> bool {
        !self.staged_spans.is_empty()
    }

    /// Writes every staged record as one framed batch: one buffer, one
    /// `write`, one group-commit tick — the sweep-scoped group commit.
    fn commit(&mut self) -> io::Result<()> {
        if self.staged_spans.is_empty() {
            return Ok(());
        }
        let payloads: Vec<&[u8]> = self
            .staged_spans
            .iter()
            .map(|&(start, len)| &self.staged_buf[start..start + len])
            .collect();
        let result = self.wal.append_batch(&payloads);
        drop(payloads);
        self.staged_buf.clear();
        self.staged_spans.clear();
        result?;
        self.wal_writes += 1;
        Ok(())
    }
}

/// Syncs the WAL before an acknowledgement leaves the node, when group
/// commit is enabled (without it, acks only promise process-crash
/// durability, which the flushed page cache already provides). Returns
/// false on a sync failure — the ack must not be sent over records the
/// disk may not hold, and a failing disk is fail-stop like every other
/// WAL error.
fn sync_before_ack(durable: &mut Option<Durable>, node: usize) -> bool {
    let Some(d) = durable.as_mut().filter(|d| d.fsync) else {
        return true;
    };
    if let Err(e) = d.wal.sync() {
        eprintln!("prcc-service[{node}]: WAL sync before ack failed, stopping: {e}");
        return false;
    }
    true
}

/// Seals every fully-acknowledged trace prefix of at least `min_events`
/// live events, staging the decision as a [`WalRecord::Checkpoint`]
/// through the same stage-before-apply path as the state-mutating inputs
/// (so replay reproduces the identical seal points). Staging is
/// infallible — the caller's sweep-end [`Durable::commit`] carries the
/// fail-stop.
fn compact_traces<P>(
    core: &mut Core<P>,
    durable: &mut Option<Durable>,
    map: &PartitionMap,
    min_events: usize,
) where
    P: Protocol,
    P::Clock: WireClock,
{
    let seals = core.plan_seal(min_events);
    if seals.is_empty() {
        return;
    }
    if let Some(d) = durable.as_mut() {
        let record = WalRecord::<P::Clock>::Checkpoint {
            seals: seals.clone(),
        };
        let index = d.stage(&record);
        core.tel.flight.record("wal_append", &[("index", index)]);
    }
    let sealed: u64 = seals.iter().map(|&(_, n)| n).sum();
    core.apply_seal(map, &seals);
    core.tel.flight.record(
        "seal",
        &[("partitions", seals.len() as u64), ("events", sealed)],
    );
}

/// Writes a snapshot of the (already compacted) core and truncates the
/// WAL. The caller runs [`compact_traces`] first — its WAL-append failure
/// is fail-stop, while a failure *here* (snapshot write, log reset) is
/// recoverable: the WAL still holds everything.
fn snapshot_state<P>(core: &Core<P>, d: &mut Durable) -> io::Result<u64>
where
    P: Protocol,
    P::Clock: WireClock,
{
    let snap = core.to_snapshot(d.next_index - 1);
    let payload = encode_snapshot(&snap);
    write_snapshot(&d.snapshot_path, &payload, d.fsync)?;
    d.wal.reset()?;
    d.records_since_snapshot = 0;
    d.snapshots_written += 1;
    d.snapshot_bytes = payload.len() as u64;
    if d.first_snapshot_bytes == 0 {
        d.first_snapshot_bytes = payload.len() as u64;
    }
    // Payload size for the caller's flight-recorder event (this function
    // only borrows the core immutably).
    Ok(payload.len() as u64)
}

/// Builds the post-snapshot [`WalRecord::Digest`]: one `(partition,
/// sealed events, chained digest)` triple per hosted partition, ascending
/// by partition index. Staged right after a snapshot truncates the log,
/// it is the first record replay sees, and recovery verifies it against
/// the checkpoints decoded from the snapshot file itself.
fn digest_record<P>(core: &Core<P>) -> WalRecord<P::Clock>
where
    P: Protocol,
    P::Clock: WireClock,
{
    WalRecord::Digest {
        partitions: core
            .partitions
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref().map(|s| {
                    (
                        PartitionId(i as u32),
                        s.checkpoint.events,
                        s.checkpoint.digest,
                    )
                })
            })
            .collect(),
    }
}

/// Snapshots when due (every `snapshot_every` records): compacts trace
/// logs through the WAL'd checkpoint path, commits everything staged (the
/// snapshot folds staged effects, so they must be on disk before the log
/// truncates), then folds the core into a snapshot, truncates the log,
/// and stages the cross-restart [`WalRecord::Digest`] guard.
///
/// Returns false when the node must fail-stop: a failed *commit* may have
/// torn the log tail, and any later append would bury the tear mid-file
/// (the same invariant as every other append site). A failed snapshot
/// *write* is merely logged — the WAL alone still recovers everything.
fn maybe_snapshot<P>(core: &mut Core<P>, durable: &mut Option<Durable>, map: &PartitionMap) -> bool
where
    P: Protocol,
    P::Clock: WireClock,
{
    let due = durable
        .as_ref()
        .is_some_and(|d| d.snapshot_every > 0 && d.records_since_snapshot >= d.snapshot_every);
    if !due {
        return true;
    }
    compact_traces(core, durable, map, 1);
    // lint: allow(unwrap) `due` above required durable to be Some
    let d = durable.as_mut().expect("due implies a data dir");
    if let Err(e) = d.commit() {
        eprintln!(
            "prcc-service[{}]: WAL append failed, stopping (restart recovers \
             the log): {e}",
            core.node
        );
        return false;
    }
    match snapshot_state(core, d) {
        Ok(bytes) => {
            let record = digest_record(core);
            d.stage(&record);
            let wal_high = d.next_index - 1;
            core.tel
                .flight
                .record("snapshot", &[("bytes", bytes), ("wal_high", wal_high)]);
        }
        Err(e) => eprintln!("prcc-service[{}]: snapshot failed: {e}", core.node),
    }
    true
}

/// Boots a durable core: loads the snapshot (if any — v2, or a legacy v1
/// file converted on read), replays the WAL suffix past it through the
/// same transition functions the live loop uses, and returns the
/// recovered core plus the open log.
///
/// Replay never reconstructs sealed trace prefixes: the snapshot carries
/// their [`TraceCheckpoint`] summaries, records at or below the
/// snapshot's fold point are skipped outright, and
/// [`WalRecord::Checkpoint`] records in the suffix re-apply the exact
/// recorded seal points — so a recovered node's checkpoint + live-suffix
/// pair matches its pre-crash state byte for byte.
///
/// A [`WalRecord::Digest`] record (staged right after every snapshot)
/// carries the per-partition checkpoint digests the pre-crash node
/// computed; replay re-checks them against the checkpoints decoded from
/// the snapshot file and refuses to boot on a mismatch — a tampered or
/// bit-rotted snapshot must not silently seed the audit trail.
fn recover<P>(
    protocol: &P,
    map: &PartitionMap,
    node: usize,
    dir: &std::path::Path,
    cfg: &ServiceConfig,
    tel: CoreTelemetry,
    pool: &BufPool,
) -> io::Result<(Core<P>, Durable)>
where
    P: Protocol,
    P::Clock: WireClock,
{
    let node_dir = dir.join(format!("node-{node}"));
    std::fs::create_dir_all(&node_dir)?;
    let snapshot_path = node_dir.join("snapshot.bin");
    let wal_path = node_dir.join("wal.bin");
    let roles = map.graph().num_replicas();
    let (mut core, mut high) = match read_snapshot(&snapshot_path)? {
        Some((version, payload)) => {
            let snap = decode_snapshot(version, &payload, roles, |k| {
                (k.index() < roles).then(|| protocol.new_clock(k))
            })?;
            let high = snap.wal_high;
            (
                Core::from_snapshot(protocol, map, node, cfg.window_cap, snap, tel)?,
                high,
            )
        }
        None => (Core::new(protocol, map, node, cfg.window_cap, tel), 0),
    };
    // The whole-file image lives in a pooled lease: replay decodes records
    // as borrowed spans of it instead of one `Vec` per record, and the
    // buffer recycles into the node's frame pool when replay finishes.
    let mut image = pool.lease(0);
    let (mut wal, scan) = Wal::open_with_image(&wal_path, &mut image)?;
    wal.set_fsync_every(cfg.fsync_every);
    let torn_bytes = image.len() - scan.valid_len;
    if torn_bytes > 0 {
        eprintln!("prcc-service[{node}]: WAL recovery dropped a {torn_bytes}-byte torn tail");
    }
    let corrupt = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    for &(start, end) in &scan.spans {
        let payload = &image[start..end];
        let (index, record) = decode_record(payload, |k| {
            (k.index() < roles).then(|| protocol.new_clock(k))
        })?;
        if index <= high {
            // Already folded into the snapshot (a crash landed between
            // snapshot write and log truncation), or a duplicate.
            continue;
        }
        if index != high + 1 {
            // Legitimate operation can never produce a gap: appends are
            // consecutive and truncation only ever removes a snapshotted
            // prefix. A gap means the snapshot and log do not belong
            // together (stale snapshot restored from a backup, mixed-up
            // data dirs) — booting would silently drop acknowledged
            // records, so refuse instead.
            return Err(corrupt(format!(
                "WAL record {index} follows {high}: snapshot and log disagree"
            )));
        }
        high = index;
        match record {
            WalRecord::Issue {
                partition,
                register,
                value,
                wire_id,
            } => {
                if !core.can_write(protocol, partition, register) {
                    return Err(corrupt(format!(
                        "WAL record {index}: issue for unhosted {partition}/{register}"
                    )));
                }
                core.apply_write(protocol, map, partition, register, value, wire_id, 0)
                    .ok_or_else(|| {
                        corrupt(format!("WAL record {index}: issue failed to replay"))
                    })?;
            }
            WalRecord::Receipt { peer, sections } => {
                let peer = usize::try_from(peer)
                    .ok()
                    .filter(|&p| p < map.num_nodes())
                    .ok_or_else(|| corrupt(format!("WAL record {index}: peer out of range")))?;
                core.apply_sections(protocol, peer, sections);
            }
            WalRecord::Checkpoint { seals } => {
                core.apply_seal(map, &seals);
            }
            WalRecord::Digest { partitions } => {
                for (partition, events, digest) in partitions {
                    let actual = core
                        .partitions
                        .get(partition.index())
                        .and_then(Option::as_ref)
                        .map(|s| (s.checkpoint.events, s.checkpoint.digest));
                    if actual != Some((events, digest)) {
                        return Err(corrupt(format!(
                            "WAL record {index}: checkpoint digest mismatch for \
                             {partition} — the log expects {events} sealed events \
                             with digest {digest:#x}, the snapshot decodes to \
                             {actual:?}; the snapshot file is tampered or \
                             bit-rotted, refusing to boot"
                        )));
                    }
                }
            }
        }
    }
    Ok((
        core,
        Durable {
            wal,
            snapshot_path,
            next_index: high + 1,
            snapshot_every: cfg.snapshot_every,
            records_since_snapshot: 0,
            fsync: cfg.fsync_every > 0,
            wal_appends: 0,
            wal_writes: 0,
            snapshots_written: 0,
            snapshot_bytes: 0,
            first_snapshot_bytes: 0,
            staged_buf: Vec::new(),
            staged_spans: Vec::new(),
        },
    ))
}

/// Spawns a node: a small fixed pool of reactor event-loop threads plus
/// one core thread. With `cfg.data_dir` set, the node first recovers its
/// state from `<data_dir>/node-<i>/` (snapshot + WAL replay) and appends
/// every subsequent state-mutating input before applying it.
///
/// All socket I/O — both listeners, every peer link (inbound and
/// outbound, including redials), every client connection — lives on the
/// reactor's `cfg.reactor_threads` event-loop workers, so the node's
/// thread count is `reactor_threads + 1` regardless of how many clients
/// connect.
///
/// `protocol` must be configured for the partition map's per-partition
/// share graph; each hosted partition gets an independent [`Replica`] over
/// the shared protocol object (clocks are per-replica state, so partitions
/// do not share counters).
///
/// # Errors
///
/// Fails on listener introspection, a protocol/map share-graph mismatch,
/// reactor setup (epoll/eventfd), or an unrecoverable data dir (I/O
/// failure, corrupted snapshot, or a checksum-corrupted WAL record — a
/// torn WAL tail recovers silently); network errors after spawn are
/// handled per-connection (logged to stderr, connection dropped).
pub fn spawn_node<P>(
    protocol: Arc<P>,
    map: PartitionMap,
    seed: NodeSeed,
    cfg: ServiceConfig,
) -> io::Result<NodeHandle>
where
    P: Protocol + 'static,
    P::Clock: WireClock,
{
    let NodeSeed {
        node,
        peer_listener,
        client_listener,
        peer_addrs,
    } = seed;
    if protocol.share_graph() != map.graph() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "protocol share graph differs from the partition map's",
        ));
    }
    let map = Arc::new(map);
    let peer_addr = peer_listener.local_addr()?;
    let client_addr = client_listener.local_addr()?;
    let n = map.num_nodes();
    let stop = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(Registry::new());
    let counters = Arc::new(NetMetrics::new(&registry));
    let tel = CoreTelemetry::new(Arc::clone(&registry), &cfg);
    // One buffer pool per node, shared by the reactor workers and the core
    // (and seeded by recovery's WAL image lease).
    let pool = BufPool::new(&registry);

    // Recover durable state before any I/O starts: peer links must see the
    // rebuilt windows on their first handshake.
    let (core, durable) = match &cfg.data_dir {
        Some(dir) => {
            let (core, mut durable) = recover(&*protocol, &map, node, dir, &cfg, tel, &pool)?;
            durable
                .wal
                .set_fsync_hist(registry.histogram("wal_fsync_us"));
            (core, Some(durable))
        }
        None => (Core::new(&*protocol, &map, node, cfg.window_cap, tel), None),
    };

    let (core_tx, core_rx) = mpsc::channel::<CoreMsg<P::Clock>>();

    // The reactor owns every socket. Registered connections (outbound peer
    // links) survive disconnects for redialing; accepted ones (inbound
    // peers, clients) are removed when they die.
    let reactor = Reactor::new(
        &format!("prcc-{node}"),
        cfg.reactor_threads,
        cfg.outbound_queue_bytes,
        pool.clone(),
        &registry,
    )?;
    let rh = reactor.handle().clone();

    // Outbound peer links: one socketless registration per remote peer.
    // Each driver dials from `on_start` and keeps its registration across
    // reconnects, so its `ConnId` is a stable address for the core's
    // commands for the node's whole lifetime.
    let mut peer_conns: Vec<Option<ConnId>> = Vec::with_capacity(n);
    for (k, &addr) in peer_addrs.iter().enumerate().take(n) {
        if k == node {
            peer_conns.push(None);
            continue;
        }
        let hello = PeerHello {
            node,
            map: (*map).clone(),
        };
        let driver = PeerOut {
            node,
            peer: k,
            addr,
            hello: encode_peer_hello(&hello),
            batch_max: cfg.batch_max.max(1),
            flush_interval: cfg.flush_interval,
            pad_bytes: cfg.pad_bytes,
            connect_timeout: cfg.connect_timeout,
            counters: Arc::clone(&counters),
            core_tx: core_tx.clone(),
            stop: Arc::clone(&stop),
            state: OutState::Down,
            pending: VecDeque::new(),
            batch: Vec::new(),
            covered: 0,
            barrier: 0,
            acked: 0,
            generation: 0,
            deadline: None,
            backoff: Duration::from_millis(5),
            attempt: 0,
            flush_timer: false,
        };
        peer_conns.push(Some(rh.register(None, Box::new(driver))));
    }

    // Peer listener: each accepted connection gets a reader driver that
    // waits for the versioned handshake before it is bound to a link.
    {
        let rh2 = rh.clone();
        let protocol = Arc::clone(&protocol);
        let map = Arc::clone(&map);
        let core_tx = core_tx.clone();
        let counters = Arc::clone(&counters);
        rh.listen(
            peer_listener,
            Box::new(move |sock: TcpStream, _from: SocketAddr| {
                rh2.register(
                    Some(sock),
                    Box::new(PeerIn {
                        node,
                        protocol: Arc::clone(&protocol),
                        map: Arc::clone(&map),
                        core_tx: core_tx.clone(),
                        counters: Arc::clone(&counters),
                        peer: None,
                    }),
                );
            }),
        );
    }

    // Client listener: one lightweight driver per connection — no thread,
    // no stack, just the decode state machine and the shared core channel.
    {
        let rh2 = rh.clone();
        let map = Arc::clone(&map);
        let core_tx = core_tx.clone();
        let stop_c = Arc::clone(&stop);
        rh.listen(
            client_listener,
            Box::new(move |sock: TcpStream, _from: SocketAddr| {
                rh2.register(
                    Some(sock),
                    Box::new(ClientConn {
                        map: Arc::clone(&map),
                        core_tx: core_tx.clone(),
                        stop: Arc::clone(&stop_c),
                    }),
                );
            }),
        );
    }

    // The crash switch: stop everything without a graceful drain. Set
    // before the reactor stop so drivers racing the teardown observe it.
    let crashed = Arc::new(AtomicBool::new(false));
    let kill: Arc<dyn Fn() + Send + Sync> = {
        let stop = Arc::clone(&stop);
        let crashed = Arc::clone(&crashed);
        let core_tx = core_tx.clone();
        let rh = rh.clone();
        Arc::new(move || {
            crashed.store(true, Ordering::SeqCst);
            stop.store(true, Ordering::SeqCst);
            let _ = core_tx.send(CoreMsg::Crash);
            // Sever every connection and both listeners, dropping queued
            // output on the floor — in-flight client requests see their
            // connections die, exactly like a process crash.
            rh.stop(false);
        })
    };

    let io = CoreIo {
        handle: rh,
        peer_conns,
        pool,
        counters,
    };

    // The core event loop runs on the one thread the node owns outright.
    // It holds the crash switch so a fail-stop (WAL append failure) tears
    // the whole node down — reactor, listeners, connections — instead of
    // leaving a half-alive shell whose bound ports would mask the outage.
    let ack_every = cfg.ack_every;
    let trace_compact_at = cfg.trace_compact_at;
    let core_kill = Arc::clone(&kill);
    let core_thread = thread::Builder::new()
        .name(format!("prcc-core-{node}"))
        .spawn(move || {
            core_loop(
                &protocol,
                &map,
                node,
                &core_rx,
                &io,
                core,
                durable,
                ack_every,
                trace_compact_at,
                &core_kill,
            );
            // Graceful exits drain queued output (the shutdown Bye,
            // trailing acks) within the reactor's drain deadline; a crash
            // already severed everything, and this second stop is a no-op.
            reactor.stop(!crashed.load(Ordering::SeqCst));
            reactor.join();
        })?;

    Ok(NodeHandle {
        node,
        peer_addr,
        client_addr,
        core: Some(core_thread),
        kill,
    })
}

/// The core thread's grip on the reactor: the handle commands travel out
/// through, the per-peer outbound link registrations, and the shared pool
/// and socket counters for encoding replies in place.
struct CoreIo {
    handle: ReactorHandle,
    /// Outbound link `ConnId` per node index (`None` for self). Stable
    /// for the node's lifetime — links redial under the same id.
    peer_conns: Vec<Option<ConnId>>,
    pool: BufPool,
    counters: Arc<NetMetrics>,
}

/// One postponed side effect of a core sweep. Nothing a processed message
/// produced may escape the node — no client reply, no peer update, no
/// acknowledgement — until the sweep's staged WAL batch is committed:
/// releasing any of them earlier would let an effect outlive a crash that
/// loses its record. Emitted in arrival order at sweep end.
enum Deferred<C> {
    WriteReply(ConnId, bool),
    ReadReply(ConnId, (bool, Option<u64>)),
    /// An outbound update headed for `peer`'s link driver.
    Send(usize, u64, PartitionId, Update<C>),
    /// A streamed link acknowledgement — requires a WAL sync first.
    Ack(ConnId, u64),
    /// A handshake acknowledgement — same sync-before-promise rule.
    JoinReply(ConnId, u64),
    /// The resume window for a reconnected outbound link, plus the link's
    /// seal barrier at reply time.
    ResumeReply(ConnId, Vec<(u64, PartitionId, Update<C>)>, u64),
    Status(ConnId, Box<NodeStatus>),
    Trace(ConnId, Vec<(TraceCheckpoint, Vec<TraceEvent>)>),
    Metrics(ConnId, MetricsSnapshot),
    /// A consistent-cut reply to a client (the snapshot is live-only
    /// audit state, but the reply still waits for the sweep's commit like
    /// every other effect — simpler than a second release path).
    CutReply(ConnId, Option<CutSnapshot>),
    /// A cut marker to broadcast to every peer link. Deferred-in-order
    /// like the sends around it: an update processed before the marker in
    /// this sweep reaches the link's command queue first, one processed
    /// after it reaches the queue after — command order is exactly marker
    /// order on the wire.
    Marker(u64),
    /// A link's seal barrier advanced; ship the new value to its driver.
    Barrier(usize, u64),
}

/// Encodes a client response in place into a pooled buffer and pushes it
/// onto the requesting connection's outbound queue. An encode failure
/// (frame over the wire cap) drops the connection — the client sees a
/// reset, never a torn frame.
fn respond(io: &CoreIo, conn: ConnId, response: &ClientResponse) {
    let mut frame = io.pool.lease(256);
    match append_frame(&mut frame, |out| encode_response_into(response, out)) {
        Ok(_) => io.handle.send(conn, frame),
        Err(_) => io.handle.close(conn),
    }
}

/// The node's event loop, organized as *sweeps*: one blocking receive
/// opens a sweep, an opportunistic drain extends it (up to [`SWEEP_MAX`]
/// messages), and every WAL record the sweep's messages stage is
/// committed as one group-committed batch at sweep end — one buffer, one
/// `write`, one fsync tick — before any of the sweep's deferred effects
/// (replies, acks, peer sends) are released. Under load this collapses
/// the historical ~1.55 WAL writes per operation into a fraction of a
/// write per operation without weakening durability: an effect escapes
/// only after its record is on disk, exactly as in the
/// one-write-per-record regime.
#[allow(clippy::too_many_arguments)]
fn core_loop<P>(
    protocol: &Arc<P>,
    map: &PartitionMap,
    node: usize,
    core_rx: &mpsc::Receiver<CoreMsg<P::Clock>>,
    io: &CoreIo,
    mut core: Core<P>,
    mut durable: Option<Durable>,
    ack_every: u64,
    trace_compact_at: usize,
    kill: &Arc<dyn Fn() + Send + Sync>,
) where
    P: Protocol,
    P::Clock: WireClock,
{
    // Whether to dump the flight recorder on exit: set by every fail-stop
    // and crash-injection path, left unset by graceful shutdown.
    let mut dump = false;
    // Sweep-lived scratch, reused across sweeps.
    let mut deferred: Vec<Deferred<P::Clock>> = Vec::new();
    let mut wal_stamps: Vec<u64> = Vec::new();
    // The live inbound connection per peer, replaced on redial: the core
    // closes the stale predecessor so a half-open socket cannot keep the
    // peer writing into a black hole.
    let mut inbound: Vec<Option<ConnId>> = vec![None; map.num_nodes()];
    // lint: hot-path
    'run: while let Ok(first) = core_rx.recv() {
        let mut swept = 0usize;
        let mut shutdown = false;
        let mut pending = Some(first);
        while let Some(msg) = pending.take() {
            swept += 1;
            match msg {
                CoreMsg::Write {
                    partition,
                    register,
                    value,
                    conn,
                } => {
                    if !core.can_write(&**protocol, partition, register) {
                        deferred.push(Deferred::WriteReply(conn, false));
                    } else {
                        let wire_id = core.next_wire_id();
                        // Origin sampling decision: a non-zero stamp makes this
                        // write a traced one, at every stage and node it touches.
                        let stamp_us = if core.tel.sampler.hit() { wall_us() } else { 0 };
                        if let Some(d) = durable.as_mut() {
                            let record = WalRecord::<P::Clock>::Issue {
                                partition,
                                register,
                                value,
                                wire_id,
                            };
                            // Stage-before-apply: the record joins the sweep's
                            // batch; the client's ack and the peer sends below
                            // stay deferred until that batch is committed.
                            let index = d.stage(&record);
                            core.tel
                                .flight
                                .record("wal_append", &[("index", index), ("wire_id", wire_id)]);
                            if stamp_us != 0 {
                                wal_stamps.push(stamp_us);
                            }
                        }
                        let sends = core
                            .apply_write(
                                &**protocol,
                                map,
                                partition,
                                register,
                                value,
                                wire_id,
                                stamp_us,
                            )
                            // lint: allow(unwrap) can_write gated this branch
                            .expect("write validated before stage");
                        core.tel.flight.record(
                            "write",
                            &[
                                ("wire_id", wire_id),
                                ("partition", u64::from(partition.0)),
                                ("register", u64::from(register.0)),
                            ],
                        );
                        for (peer, seq, p, update) in sends {
                            deferred.push(Deferred::Send(peer, seq, p, update));
                        }
                        deferred.push(Deferred::WriteReply(conn, true));
                        if trace_compact_at > 0 {
                            compact_traces(&mut core, &mut durable, map, trace_compact_at);
                        }
                        if !maybe_snapshot(&mut core, &mut durable, map) {
                            core.tel.flight.record("fail_stop_checkpoint", &[]);
                            dump = true;
                            deferred.clear();
                            kill();
                            break 'run;
                        }
                    }
                }
                CoreMsg::Read {
                    partition,
                    register,
                    conn,
                } => {
                    let answer = match core
                        .partitions
                        .get(partition.index())
                        .and_then(Option::as_ref)
                        .map(|slot| slot.replica.read(&**protocol, register))
                    {
                        Some(Ok(value)) => (true, value),
                        Some(Err(_)) | None => (false, None),
                    };
                    // Deferred like every reply: a read may observe a write
                    // staged earlier in this sweep, and that observation must
                    // not escape before the write's record is committed.
                    deferred.push(Deferred::ReadReply(conn, answer));
                }
                CoreMsg::Updates {
                    peer,
                    sections,
                    barrier,
                    conn,
                } => {
                    if peer < core.links.len() {
                        // Raise the link's seal barrier before applying, so
                        // the straggler fast path covers this very frame's
                        // own resend overlap.
                        let link = &mut core.links[peer];
                        link.seal_barrier = link.seal_barrier.max(barrier);
                        let n_updates: u64 = sections.iter().map(|(_, us)| us.len() as u64).sum();
                        if let Some(d) = durable.as_mut() {
                            // Frame-level sampling for the receipt append: the
                            // issue-keyed stamps measure origin-side appends,
                            // this measures the recipient's.
                            let t0 = if core.tel.sampler.hit() { wall_us() } else { 0 };
                            // Stage-before-apply: the frame joins the sweep's
                            // batch, and the acknowledgement below stays
                            // deferred (and synced) behind the commit — a
                            // commit failure drops the frame *unacknowledged*
                            // and fail-stops the node, so the peer's window
                            // retransmits it to the restarted node.
                            let index = d.stage_receipt(peer as u64, &sections);
                            core.tel.flight.record("wal_append", &[("index", index)]);
                            if t0 != 0 {
                                wal_stamps.push(t0);
                            }
                        }
                        core.tel.flight.record(
                            "recv_frame",
                            &[("peer", peer as u64), ("updates", n_updates)],
                        );
                        core.apply_sections(&**protocol, peer, sections);
                        let link = &mut core.links[peer];
                        link.frames_since_ack += 1;
                        if ack_every > 0 && link.frames_since_ack >= ack_every {
                            link.frames_since_ack = 0;
                            // Acknowledge the watermark's contiguous line only:
                            // residue above a gap stays unacknowledged until
                            // the gap fills. An ack makes the peer prune its
                            // resend window, so with group commit the sweep
                            // syncs before releasing it.
                            let acked = link.recv.high();
                            deferred.push(Deferred::Ack(conn, acked));
                        }
                        if trace_compact_at > 0 {
                            compact_traces(&mut core, &mut durable, map, trace_compact_at);
                        }
                        if !maybe_snapshot(&mut core, &mut durable, map) {
                            core.tel.flight.record("fail_stop_checkpoint", &[]);
                            dump = true;
                            deferred.clear();
                            kill();
                            break 'run;
                        }
                    }
                }
                CoreMsg::PeerJoin { peer, conn } => {
                    let acked = core.links.get(peer).map_or(0, |link| link.recv.high());
                    // A redial replaces the peer's previous inbound
                    // connection: close the stale one. Binding happens only
                    // after a validated handshake, so a garbage connection
                    // cannot evict a healthy link.
                    if let Some(slot) = inbound.get_mut(peer) {
                        if let Some(old) = slot.replace(conn) {
                            if old != conn {
                                io.handle.close(old);
                            }
                        }
                    }
                    // The hello-ack is an acknowledgement too (the dialer
                    // prunes and resumes past it) — same sync-before-promise
                    // rule as the streamed acks, enforced at sweep end.
                    core.tel
                        .flight
                        .record("peer_join", &[("peer", peer as u64), ("acked", acked)]);
                    deferred.push(Deferred::JoinReply(conn, acked));
                }
                CoreMsg::PeerResume { peer, acked, conn } => {
                    let window = core.resume(peer, acked);
                    // Ship the link's seal barrier with the resume so the
                    // very first post-reconnect flush frames carry it; the
                    // reply doubles as the barrier's delivery, so mark it
                    // sent.
                    let barrier = core.links.get_mut(peer).map_or(0, |link| {
                        link.barrier_sent = link.barrier_sent.max(link.sealed_high);
                        link.sealed_high
                    });
                    core.tel.flight.record(
                        "peer_resume",
                        &[
                            ("peer", peer as u64),
                            ("acked", acked),
                            ("window", window.len() as u64),
                        ],
                    );
                    deferred.push(Deferred::ResumeReply(conn, window, barrier));
                }
                CoreMsg::PeerAcked { peer, seq } => {
                    core.prune(peer, seq);
                }
                CoreMsg::Cut { token, start, conn } => {
                    if start && !core.cut_seen(token) {
                        // Snapshot *now*, at this message's channel
                        // position: writes processed earlier in the sweep
                        // are inside the cut, later ones outside it.
                        core.record_cut(map, token);
                        core.tel.flight.record("cut_start", &[("token", token)]);
                        deferred.push(Deferred::Marker(token));
                    }
                    deferred.push(Deferred::CutReply(conn, core.cut_snapshot(token)));
                }
                CoreMsg::PeerMarker { token } => {
                    if !core.cut_seen(token) {
                        core.record_cut(map, token);
                        core.tel.flight.record("cut_marker", &[("token", token)]);
                        deferred.push(Deferred::Marker(token));
                    }
                }
                CoreMsg::Status(conn) => {
                    let mut status = core.status();
                    if let Some(d) = &durable {
                        status.wal_appends = d.wal_appends;
                        status.snapshots_written = d.snapshots_written;
                        status.wal_bytes = d.wal.bytes();
                        status.snapshot_bytes = d.snapshot_bytes;
                        status.first_snapshot_bytes = d.first_snapshot_bytes;
                    }
                    // Fold in the shared socket counters and the reactor's
                    // own telemetry — the core is the one place that can
                    // see both sides.
                    status.bytes_out = io.counters.bytes_out.get();
                    status.bytes_in = io.counters.bytes_in.get();
                    status.batches_sent = io.counters.batches_sent.get();
                    status.frames_sent = io.counters.frames_sent.get();
                    status.flushes = io.counters.flushes.get();
                    status.resent = io.counters.resent.get();
                    let rm = io.handle.metrics();
                    status.reactor_wakeups = rm.wakeups.get();
                    status.reactor_events = rm.events.get();
                    status.reactor_rearms = rm.rearms.get();
                    status.reactor_outq_hiwat = rm.outq_hiwat.get();
                    // lint: allow(alloc) status scrape is the cold admin path
                    deferred.push(Deferred::Status(conn, Box::new(status)));
                }
                CoreMsg::Trace(conn) => {
                    deferred.push(Deferred::Trace(conn, core.traces()));
                }
                CoreMsg::Metrics(conn) => {
                    // Gauges mirror authoritative core state at scrape time;
                    // counters and histograms are already live in the
                    // registry the reactor workers share.
                    core.mirror_gauges(&durable);
                    deferred.push(Deferred::Metrics(conn, core.tel.registry.snapshot()));
                }
                CoreMsg::Crash => {
                    // Drop the sweep on the floor: nothing staged commits and
                    // nothing deferred escapes — indistinguishable from the
                    // crash landing before these messages arrived, which is
                    // exactly the point the recovery suite replays from.
                    core.tel.flight.record("crash", &[]);
                    dump = true;
                    deferred.clear();
                    break 'run;
                }
                CoreMsg::Shutdown => {
                    // Stop draining; the sweep end below commits and releases
                    // what was already processed, then the final snapshot runs.
                    shutdown = true;
                }
            }
            if !shutdown && swept < SWEEP_MAX {
                pending = core_rx.try_recv().ok();
            }
        }

        // Sweep end: one group-committed WAL write covers every record the
        // sweep staged; only then do the sweep's effects leave the node.
        if let Some(d) = durable.as_mut() {
            if d.staged() {
                if let Err(e) = d.commit() {
                    // Fail-stop: a failed write may have left partial bytes
                    // in the log, and any further append would bury that
                    // tear mid-file — turning recoverable torn-tail damage
                    // into unrecoverable corruption. Every deferred effect
                    // is dropped (unreplied, unacked), so clients see a
                    // dead node and peers retransmit after restart.
                    eprintln!(
                        "prcc-service[{node}]: WAL append failed, stopping (restart \
                         recovers the log): {e}"
                    );
                    core.tel.flight.record("fail_stop_wal_append", &[]);
                    dump = true;
                    deferred.clear();
                    kill();
                    break;
                }
            }
        }
        for &t0 in &wal_stamps {
            core.tel.wal_append_us.record(wall_us().saturating_sub(t0));
        }
        wal_stamps.clear();
        let needs_sync = deferred
            .iter()
            .any(|d| matches!(d, Deferred::Ack(..) | Deferred::JoinReply(..)));
        if needs_sync && !sync_before_ack(&mut durable, node) {
            core.tel.flight.record("fail_stop_sync", &[]);
            dump = true;
            deferred.clear();
            kill();
            break;
        }
        // Seal barriers advance only under the acks this sweep processed;
        // ship any new value alongside the sweep's other effects.
        for (peer, link) in core.links.iter_mut().enumerate() {
            if link.sealed_high > link.barrier_sent {
                link.barrier_sent = link.sealed_high;
                deferred.push(Deferred::Barrier(peer, link.sealed_high));
            }
        }
        for effect in deferred.drain(..) {
            match effect {
                Deferred::WriteReply(conn, ok) => {
                    respond(io, conn, &ClientResponse::WriteAck { ok });
                }
                Deferred::ReadReply(conn, (ok, value)) => {
                    respond(io, conn, &ClientResponse::ReadResp { ok, value });
                }
                Deferred::Send(peer, seq, p, update) => {
                    if let Some(conn) = io.peer_conns[peer] {
                        // lint: allow(alloc) one boxed command per cross-thread hop
                        let cmd = Box::new(PeerCmd::Update(seq, p, update));
                        io.handle.command(conn, cmd);
                    }
                }
                Deferred::Ack(conn, acked) => {
                    let mut frame = io.pool.lease(64);
                    match append_frame(&mut frame, |out| encode_peer_ack_into(acked, out)) {
                        Ok(_) => {
                            io.counters.bytes_out.add(frame.len() as u64);
                            io.handle.send(conn, frame);
                        }
                        Err(_) => io.handle.close(conn),
                    }
                }
                Deferred::JoinReply(conn, acked) => {
                    let mut frame = io.pool.lease(64);
                    match append_frame(&mut frame, |out| encode_hello_ack_into(acked, out)) {
                        Ok(_) => {
                            io.counters.bytes_out.add(frame.len() as u64);
                            io.handle.send(conn, frame);
                        }
                        Err(_) => io.handle.close(conn),
                    }
                }
                Deferred::ResumeReply(conn, window, barrier) => {
                    let cmd = Box::new(PeerCmd::Resume { window, barrier }); // lint: allow(alloc) one boxed command per reconnect
                    io.handle.command(conn, cmd);
                }
                Deferred::Status(conn, status) => {
                    respond(io, conn, &ClientResponse::Status(*status));
                }
                Deferred::Trace(conn, traces) => {
                    respond(io, conn, &ClientResponse::Trace(traces));
                }
                Deferred::Metrics(conn, snapshot) => {
                    respond(io, conn, &ClientResponse::Metrics(snapshot));
                }
                Deferred::CutReply(conn, snap) => {
                    respond(io, conn, &ClientResponse::Cut(snap));
                }
                Deferred::Marker(token) => {
                    for conn in io.peer_conns.iter().flatten() {
                        let cmd = Box::new(PeerCmd::<P::Clock>::Marker(token)); // lint: allow(alloc) one boxed command per audit
                        io.handle.command(*conn, cmd);
                    }
                }
                Deferred::Barrier(peer, barrier) => {
                    if let Some(conn) = io.peer_conns[peer] {
                        let cmd = Box::new(PeerCmd::<P::Clock>::Barrier(barrier)); // lint: allow(alloc) one boxed command per barrier advance
                        io.handle.command(conn, cmd);
                    }
                }
            }
        }
        if shutdown {
            // A final snapshot makes restart-after-shutdown instant and
            // keeps the WAL short; failure is non-fatal (the WAL alone
            // still recovers everything, and the node is stopping anyway —
            // no later append can bury a torn tail).
            if durable.is_some() {
                compact_traces(&mut core, &mut durable, map, 1);
                // lint: allow(unwrap) `durable.is_some()` gated this branch
                let d = durable.as_mut().expect("checked above");
                if let Err(e) = d.commit() {
                    eprintln!("prcc-service[{node}]: final WAL append failed: {e}");
                } else {
                    match snapshot_state(&core, d) {
                        Ok(_) => {
                            let record = digest_record(&core);
                            d.stage(&record);
                            if let Err(e) = d.commit() {
                                eprintln!("prcc-service[{node}]: final digest append failed: {e}");
                            }
                        }
                        Err(e) => eprintln!("prcc-service[{node}]: final snapshot failed: {e}"),
                    }
                }
            }
            break;
        }
    }
    // lint: end-hot-path
    // The flight dump is the crash's black box: written only on fail-stop
    // or injected crash, next to the node's WAL, so a post-mortem can line
    // the last recorded events up against the recovered log.
    if dump {
        if let Some(dir) = durable.as_ref().and_then(|d| d.snapshot_path.parent()) {
            let path = dir.join("flight.log");
            if let Err(e) = core.tel.flight.dump_to(&path) {
                eprintln!("prcc-service[{node}]: flight dump failed: {e}");
            }
        }
    }
}

/// Groups a run of `(seq, partition, update)` entries into multi-batch
/// sections, preserving first-seen section order and per-partition update
/// order (cross-partition order is irrelevant — partitions are causally
/// independent).
fn pack_sections<C>(
    entries: impl IntoIterator<Item = (u64, PartitionId, Update<C>)>,
) -> FlushSections<C> {
    let mut sections: FlushSections<C> = Vec::new();
    for (seq, partition, update) in entries {
        // Linear scan: a flush touches at most a handful of partitions.
        match sections.iter_mut().find(|(p, _)| *p == partition) {
            Some((_, updates)) => updates.push((seq, update)),
            None => sections.push((partition, vec![(seq, update)])),
        }
    }
    sections
}

/// Connection lifecycle of an outbound peer link driver.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OutState {
    /// No socket; waiting out a backoff timer before the next dial.
    Down,
    /// A non-blocking connect is in flight.
    Dialing,
    /// Connected; hello sent; waiting for the peer's hello-ack.
    AwaitAck,
    /// Hello-ack received; waiting for the core's resume window.
    AwaitResume,
    /// Streaming. Commands apply directly; acks flow back in.
    Established,
}

// lint: reactor
/// The outbound half of one peer link, driven entirely by reactor events:
/// dials (and redials, with the same seeded backoff jitter as the old
/// sender threads), handshakes, retransmits the resume window, batches
/// core-issued updates into multi-batch flush frames, and feeds streamed
/// acknowledgements back to the core. Registration is permanent: the
/// driver returns [`Fate::Keep`] from every disconnect while the node is
/// alive, so the core's command address never changes.
struct PeerOut<C> {
    /// This node's index (log prefix and backoff jitter key).
    node: usize,
    /// The remote node's index — the link this driver owns.
    peer: usize,
    addr: SocketAddr,
    /// The encoded hello payload, built once; framed per connection.
    hello: Vec<u8>,
    batch_max: usize,
    flush_interval: Duration,
    pad_bytes: usize,
    connect_timeout: Duration,
    counters: Arc<NetMetrics>,
    core_tx: mpsc::Sender<CoreMsg<C>>,
    stop: Arc<AtomicBool>,
    state: OutState,
    /// Commands that arrived mid-handshake, replayed in order once the
    /// resume window has been retransmitted.
    pending: VecDeque<PeerCmd<C>>,
    /// The open batch: updates waiting for the flush timer or a full
    /// `batch_max * MAX_FLUSH_FRAMES` backlog.
    batch: Vec<(u64, PartitionId, Update<C>)>,
    /// Highest sequence already transmitted on this connection (the
    /// resume window's tail, advanced by every flush): entries at or
    /// below it still arriving through the command queue are duplicates
    /// of what the resume sent and are dropped before encoding.
    covered: u64,
    /// The link's seal barrier, carried in every flush frame.
    barrier: u64,
    /// The peer's acknowledged offset from the current handshake.
    acked: u64,
    /// Connection generation: counts successful connects.
    generation: u64,
    /// The current dial window's deadline.
    deadline: Option<Instant>,
    backoff: Duration,
    attempt: u64,
    /// Whether the flush timer is armed for the open batch.
    flush_timer: bool,
}

impl<C: WireClock> PeerOut<C> {
    /// Opens a fresh dial window: full `connect_timeout`, backoff reset,
    /// and an immediate dial.
    fn begin_window(&mut self, ctx: &mut Ctx<'_>) {
        self.deadline = Some(ctx.now() + self.connect_timeout);
        self.backoff = Duration::from_millis(5);
        self.attempt = 0;
        self.state = OutState::Dialing;
        ctx.dial(self.addr);
    }

    /// Ships a run of `(seq, partition, update)` entries: packs each
    /// `batch_max`-sized chunk into one multi-batch frame encoded in
    /// place into a pooled buffer and enqueues it (the reactor coalesces
    /// queued frames into vectored writes). Maintains the
    /// flush/frame/batch counters.
    // lint: hot-path
    fn transmit(
        &mut self,
        ctx: &mut Ctx<'_>,
        entries: &[(u64, PartitionId, Update<C>)],
        record_send_us: bool,
    ) {
        if entries.is_empty() {
            return;
        }
        let mut batches = 0u64;
        for chunk in entries.chunks(self.batch_max) {
            // lint: allow(alloc) sections regroup one bounded chunk per flush
            let sections = pack_sections(chunk.iter().cloned());
            // `flushes` counts drain cycles at the moment a flush exists —
            // deliberately NOT at the same site as `frames_sent`, which counts
            // frame enqueues. Keeping the two sites apart is what makes
            // `frames_per_flush` a binding regression signal for the
            // prcc-load `--max-frames-per-flush` gate.
            self.counters.flushes.add(1);
            let mut frame = ctx.pool().lease(256);
            if append_frame(&mut frame, |out| {
                encode_multi_batch_sealed_into(&sections, self.pad_bytes, self.barrier, out)
            })
            .is_err()
            {
                // A frame over the wire cap is a config error (batch_max
                // times update size exceeded the frame bound); drop the
                // connection loudly rather than ship a torn frame.
                eprintln!(
                    "prcc-service[{}]: flush frame to {} over the wire cap; dropping link",
                    self.node, self.addr
                );
                ctx.close();
                return;
            }
            batches += sections.len() as u64;
            self.counters.frames_sent.add(1);
            self.counters.bytes_out.add(frame.len() as u64);
            ctx.send(frame);
        }
        self.counters.batches_sent.add(batches);
        // Send-stage latency (issue → first socket enqueue) for sampled
        // updates: one clock read per flush, taken lazily, and only on
        // the first-transmission path — window resends would
        // double-count the same stamps.
        if record_send_us {
            let mut now = 0u64;
            for (_, _, update) in entries {
                let stamp = update.issued_at.0;
                if stamp != 0 {
                    if now == 0 {
                        now = wall_us();
                    }
                    self.counters.send_us.record(now.saturating_sub(stamp));
                }
            }
        }
    }

    /// Flushes the open batch: drops entries the resume already covered,
    /// then ships complete `batch_max` chunks — all of it when `force`
    /// (the flush timer's deadline semantics), only full chunks otherwise
    /// (a partial tail keeps accumulating under its timer).
    fn flush(&mut self, ctx: &mut Ctx<'_>, force: bool) {
        let covered = self.covered;
        self.batch.retain(|(seq, _, _)| *seq > covered);
        let ship = if force {
            self.batch.len()
        } else {
            (self.batch.len() / self.batch_max) * self.batch_max
        };
        if ship > 0 {
            let rest = self.batch.split_off(ship);
            let shipped = std::mem::replace(&mut self.batch, rest);
            if let Some(&(last, _, _)) = shipped.last() {
                self.covered = last;
            }
            self.transmit(ctx, &shipped, true);
        }
        if self.batch.is_empty() {
            self.flush_timer = false;
            ctx.clear_timer();
        } else if !self.flush_timer {
            self.flush_timer = true;
            ctx.set_timer(self.flush_interval);
        }
    }
    // lint: end-hot-path

    /// Applies one established-state command (also used to replay the
    /// handshake-era backlog after a resume).
    fn apply_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: PeerCmd<C>) {
        match cmd {
            PeerCmd::Update(seq, partition, update) => {
                self.batch.push((seq, partition, update));
                // Opportunistic backlog bound: a link that fell behind
                // flushes once MAX_FLUSH_FRAMES frames' worth piles up
                // instead of growing the batch without limit.
                if self.batch.len() >= self.batch_max * MAX_FLUSH_FRAMES {
                    self.flush(ctx, false);
                }
            }
            PeerCmd::Marker(token) => {
                // Everything queued before the marker must hit the wire
                // first, the marker next, everything after it later.
                self.flush(ctx, true);
                self.write_marker(ctx, token);
            }
            PeerCmd::Barrier(b) => self.barrier = self.barrier.max(b),
            // Resume is handled in on_command before dispatch; a stray one
            // (stale reply after a re-handshake) is ignored.
            PeerCmd::Resume { .. } => {}
        }
    }

    /// Writes a cut marker frame. A failure loses it (markers are not
    /// windowed) — the audit then reports the cut incomplete, never a
    /// wrong verdict.
    fn write_marker(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let mut frame = ctx.pool().lease(16);
        if append_frame(&mut frame, |out| {
            out.extend_from_slice(&encode_cut_marker(token))
        })
        .is_ok()
        {
            self.counters.bytes_out.add(frame.len() as u64);
            ctx.send(frame);
        }
    }

    /// The core answered the handshake with the resume window: retransmit
    /// it, mark the link established, and replay the command backlog.
    fn finish_resume(
        &mut self,
        ctx: &mut Ctx<'_>,
        window: Vec<(u64, PartitionId, Update<C>)>,
        barrier: u64,
    ) {
        self.barrier = self.barrier.max(barrier);
        // Everything up to the window's tail is covered by this resume:
        // entries still sitting in the command backlog at or below
        // `covered` are duplicates of what the resume sends and are
        // dropped by the flush filter.
        self.covered = window.last().map_or(self.acked, |&(seq, _, _)| seq);
        // A window shipped on the very first connection of a fresh link
        // (generation 1, nothing acked) is a first transmission — writes
        // merely raced the dial — not a retransmission; everything else
        // (reconnects, and restarts where the peer remembers the link) is.
        let resent = if self.generation > 1 || self.acked > 0 {
            window.len() as u64
        } else {
            0
        };
        self.transmit(ctx, &window, false);
        self.counters.resent.add(resent);
        self.state = OutState::Established;
        while let Some(cmd) = self.pending.pop_front() {
            self.apply_cmd(ctx, cmd);
        }
    }
}

impl<C: WireClock> Driver for PeerOut<C> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.begin_window(ctx);
    }

    fn on_connected(&mut self, ctx: &mut Ctx<'_>) {
        // Each successful dial is a new connection generation. The
        // handshake opens every connection, including redials: the
        // acceptor's driver expects it and answers with the link's
        // acknowledged resume offset.
        self.generation += 1;
        self.state = OutState::AwaitAck;
        let mut frame = ctx.pool().lease(self.hello.len() + 8);
        if append_frame(&mut frame, |out| out.extend_from_slice(&self.hello)).is_ok() {
            self.counters.bytes_out.add(frame.len() as u64);
            ctx.send(frame);
        } else {
            ctx.close();
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: Lease) -> io::Result<()> {
        self.counters.bytes_in.add(frame.len() as u64 + 4);
        match self.state {
            OutState::AwaitAck => {
                self.acked = decode_hello_ack(&frame)?;
                self.state = OutState::AwaitResume;
                // Fetch the unacked window past the peer's offset; the
                // core replies with a Resume command on this connection.
                if self
                    .core_tx
                    .send(CoreMsg::PeerResume {
                        peer: self.peer,
                        acked: self.acked,
                        conn: ctx.conn_id(),
                    })
                    .is_err()
                {
                    ctx.close(); // Core shut down.
                }
                Ok(())
            }
            _ => {
                // Streamed acknowledgements: forward to the core for
                // window pruning.
                let seq = decode_peer_ack(&frame)?;
                if self
                    .core_tx
                    .send(CoreMsg::PeerAcked {
                        peer: self.peer,
                        seq,
                    })
                    .is_err()
                {
                    ctx.close(); // Core shut down.
                }
                Ok(())
            }
        }
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_>, cmd: Box<dyn Any + Send>) {
        let Ok(cmd) = cmd.downcast::<PeerCmd<C>>() else {
            return;
        };
        match *cmd {
            // Barriers are max-monotone, so applying one early (even
            // mid-handshake) is always safe.
            PeerCmd::Barrier(b) => self.barrier = self.barrier.max(b),
            PeerCmd::Resume { window, barrier } => {
                if self.state == OutState::AwaitResume {
                    self.finish_resume(ctx, window, barrier);
                }
            }
            cmd => {
                if self.state == OutState::Established {
                    self.apply_cmd(ctx, cmd);
                } else {
                    // Mid-handshake (or mid-backoff): park the command.
                    // Updates in it are also parked in the core's window,
                    // but replaying the backlog in order after the resume
                    // keeps markers at their command positions.
                    self.pending.push_back(cmd);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>) {
        match self.state {
            // The batching deadline: ship the open batch, full or not.
            OutState::Established => {
                self.flush_timer = false;
                self.flush(ctx, true);
            }
            // The backoff expired: dial again inside the current window.
            OutState::Down => {
                self.state = OutState::Dialing;
                ctx.dial(self.addr);
            }
            // A stale flush timer from before a disconnect; ignore.
            _ => {}
        }
    }

    fn on_flush(&mut self, ctx: &mut Ctx<'_>) {
        // End of a tick that delivered commands: ship complete chunks
        // now; a partial tail waits for more traffic or its timer.
        if self.state == OutState::Established {
            self.flush(ctx, false);
        }
    }

    fn on_disconnect(&mut self, ctx: &mut Ctx<'_>, err: Option<&io::Error>) -> Fate {
        if self.stop.load(Ordering::SeqCst) {
            return Fate::Remove;
        }
        let was_established = self.state == OutState::Established;
        // The local batch dies with the connection: every update in it is
        // still parked in the core's window, and the resume on the next
        // successful handshake retransmits whatever the peer missed.
        self.batch.clear();
        self.flush_timer = false;
        if was_established {
            if let Some(e) = err {
                eprintln!(
                    "prcc-service[{}]: peer link {}: {e}; reconnecting",
                    self.node, self.addr
                );
            }
            self.begin_window(ctx);
            return Fate::Keep;
        }
        // A dial or handshake failed. Back off inside the current window;
        // when the window is exhausted, report once, discard the command
        // backlog (every entry is also parked in the core's window, which
        // the resume on the next successful dial retransmits), and open a
        // fresh window — a peer down longer than one connect_timeout
        // (e.g. a slow crash-restart) must not strand the link forever.
        let now = ctx.now();
        let deadline = self.deadline.unwrap_or(now);
        if now >= deadline {
            eprintln!(
                "prcc-service[{}]: peer {} unreachable for {:?}, backing off",
                self.node, self.addr, self.connect_timeout
            );
            self.pending.clear();
            self.begin_window(ctx);
            return Fate::Keep;
        }
        self.attempt += 1;
        // Seeded jitter, up to +50% of the base backoff: decorrelates the
        // redial storms a whole cluster restarting (or a partition
        // healing) would otherwise synchronize, without giving up
        // determinism — the jitter is a pure hash of (dialer, port,
        // attempt), so identical histories redial at identical times and
        // a seed-pinned chaos run replays exactly.
        let base_us = self.backoff.as_micros() as u64;
        let key = ((self.node as u64) << 48) | (u64::from(self.addr.port()) << 32) | self.attempt;
        let jitter = Duration::from_micros(mix64(key) % (base_us / 2).max(1));
        let wait = (self.backoff + jitter).min(deadline - now);
        self.backoff = (self.backoff * 2).min(Duration::from_millis(100));
        self.state = OutState::Down;
        ctx.set_timer(wait);
        Fate::Keep
    }
}

/// The inbound half of one peer link: validates the versioned handshake,
/// binds itself to the sender's node index, then decodes flush frames and
/// cut markers and fans them to the core. Acknowledgements travel the
/// other way on the same connection, pushed by the core at sweep end.
struct PeerIn<P: Protocol> {
    node: usize,
    protocol: Arc<P>,
    map: Arc<PartitionMap>,
    core_tx: mpsc::Sender<CoreMsg<P::Clock>>,
    counters: Arc<NetMetrics>,
    /// The sender's node index, `None` until the handshake validates.
    peer: Option<usize>,
}

impl<P> Driver for PeerIn<P>
where
    P: Protocol + 'static,
    P::Clock: WireClock,
{
    // lint: hot-path
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: Lease) -> io::Result<()> {
        self.counters.bytes_in.add(frame.len() as u64 + 4);
        let Some(peer) = self.peer else {
            // First frame: the handshake. Answering (the hello-ack) is the
            // core's job — it owns the link's acknowledged offset.
            let hello = decode_peer_hello(&frame)?;
            if hello.map != *self.map {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    // lint: allow(alloc) protocol-violation error, cold
                    format!("peer {} runs a different partition map", hello.node),
                ));
            }
            if hello.node >= self.map.num_nodes() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    // lint: allow(alloc) protocol-violation error, cold
                    format!("peer index {} out of range", hello.node),
                ));
            }
            self.peer = Some(hello.node);
            if self
                .core_tx
                .send(CoreMsg::PeerJoin {
                    peer: hello.node,
                    conn: ctx.conn_id(),
                })
                .is_err()
            {
                ctx.close(); // Core shut down.
            }
            return Ok(());
        };
        // Cut markers travel in the update stream — that is what gives
        // them a channel position — so they are intercepted here, before
        // batch decoding, and forwarded on the same core channel as the
        // updates around them (arrival order is cut order).
        if frame.first() == Some(&TAG_CUT_MARKER) {
            let token = decode_cut_marker(&frame)?;
            if self.core_tx.send(CoreMsg::PeerMarker { token }).is_err() {
                ctx.close(); // Core shut down.
            }
            return Ok(());
        }
        // One frame, many `(partition, [(seq, update)])` sections plus the
        // sender's seal barrier: validate each section, then hand the
        // whole frame to the core as one delivery (and one WAL receipt).
        let roles = self.map.graph().num_replicas();
        let protocol = &self.protocol;
        let (sections, barrier) = decode_sealed_batches(&frame, |k| {
            (k.index() < roles).then(|| protocol.new_clock(k))
        })?;
        for (partition, _) in &sections {
            if partition.0 >= self.map.num_partitions() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    // lint: allow(alloc) protocol-violation error, cold
                    format!("batch for out-of-range {partition}"),
                ));
            }
            if self.map.role_on(*partition, self.node).is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    // lint: allow(alloc) protocol-violation error, cold
                    format!("peer {peer} misrouted {partition} updates here"),
                ));
            }
        }
        if self
            .core_tx
            .send(CoreMsg::Updates {
                peer,
                sections,
                barrier,
                conn: ctx.conn_id(),
            })
            .is_err()
        {
            ctx.close(); // Core shut down.
        }
        Ok(())
    }
    // lint: end-hot-path

    fn on_disconnect(&mut self, _ctx: &mut Ctx<'_>, err: Option<&io::Error>) -> Fate {
        if let Some(e) = err {
            eprintln!("prcc-service[{}]: peer reader: {e}", self.node);
        }
        Fate::Remove
    }
}

/// One client connection: decodes requests and routes them to the core
/// tagged with this connection's id; the core encodes the response and
/// pushes it back through the reactor at sweep end. `Config` and the
/// shutdown `Bye` are answered inline — neither touches core state.
struct ClientConn<C: WireClock> {
    map: Arc<PartitionMap>,
    core_tx: mpsc::Sender<CoreMsg<C>>,
    stop: Arc<AtomicBool>,
}

impl<C: WireClock> Driver for ClientConn<C> {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: Lease) -> io::Result<()> {
        let conn = ctx.conn_id();
        let msg = match decode_request(&frame)? {
            ClientRequest::Write {
                partition,
                register,
                value,
                ..
            } => CoreMsg::Write {
                partition,
                register,
                value,
                conn,
            },
            ClientRequest::Read {
                partition,
                register,
            } => CoreMsg::Read {
                partition,
                register,
                conn,
            },
            ClientRequest::Status => CoreMsg::Status(conn),
            ClientRequest::Trace => CoreMsg::Trace(conn),
            ClientRequest::Metrics => CoreMsg::Metrics(conn),
            ClientRequest::Cut { token, start } => CoreMsg::Cut { token, start, conn },
            ClientRequest::Config => {
                // Answered inline: pure configuration, no core state.
                let response = ClientResponse::Config {
                    version: WIRE_VERSION,
                    map: (*self.map).clone(),
                };
                let mut out = ctx.pool().lease(256);
                append_frame(&mut out, |buf| encode_response_into(&response, buf))?;
                ctx.send(out);
                return Ok(());
            }
            ClientRequest::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                // Enqueue the ack *before* stopping the core: the reactor's
                // graceful drain flushes it even as the node winds down.
                let mut out = ctx.pool().lease(64);
                append_frame(&mut out, |buf| {
                    encode_response_into(&ClientResponse::Bye, buf)
                })?;
                ctx.send(out);
                let _ = self.core_tx.send(CoreMsg::Shutdown);
                return Ok(());
            }
        };
        if self.core_tx.send(msg).is_err() {
            ctx.close(); // Core shut down.
        }
        Ok(())
    }
}
// lint: end-reactor

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_clock::EdgeProtocol;
    use prcc_graph::topologies;

    fn ring_core(
        node: usize,
        window_cap: usize,
    ) -> (EdgeProtocol, PartitionMap, Core<EdgeProtocol>) {
        let graph = topologies::ring(3);
        let map = PartitionMap::rotated(graph.clone(), 1, 3).expect("valid map");
        let protocol = EdgeProtocol::new(graph);
        let tel = CoreTelemetry::new(Arc::new(Registry::new()), &ServiceConfig::default());
        let core = Core::new(&protocol, &map, node, window_cap, tel);
        (protocol, map, core)
    }

    /// Issues one write on `core` that ships a copy to the other node,
    /// returning the `(peer, seq, partition, update)` send. Scans the
    /// register space for one this node's role may write with a remote
    /// recipient — the topology guarantees at least one exists.
    fn remote_write(
        protocol: &EdgeProtocol,
        map: &PartitionMap,
        core: &mut Core<EdgeProtocol>,
    ) -> (
        usize,
        u64,
        PartitionId,
        Update<<EdgeProtocol as Protocol>::Clock>,
    ) {
        let partition = PartitionId(0);
        for r in 0..map.graph().num_registers() {
            let register = RegisterId(r as u32);
            if !core.can_write(protocol, partition, register) {
                continue;
            }
            let wire_id = core.next_wire_id();
            let sends = core
                .apply_write(protocol, map, partition, register, 7, wire_id, 0)
                .expect("can_write gated");
            if let Some(send) = sends.into_iter().find(|(peer, ..)| *peer != core.node) {
                return send;
            }
        }
        panic!("no register with a remote recipient");
    }

    #[test]
    fn sealed_high_advances_only_on_acked_retirement() {
        let (protocol, map, mut core) = ring_core(0, 64);
        let (peer, seq, _, _) = remote_write(&protocol, &map, &mut core);

        // Unacknowledged: the pair blocks its seal and the barrier stays.
        assert!(core.plan_seal(1).is_empty());
        assert_eq!(core.links[peer].sealed_high, 0);

        // Acked retirement advances the barrier and unblocks the seal.
        core.prune(peer, seq);
        assert!(!core.plan_seal(1).is_empty());
        assert_eq!(core.links[peer].sealed_high, seq);
    }

    #[test]
    fn evicted_pairs_never_advance_sealed_high() {
        let (protocol, map, mut core) = ring_core(0, 1);
        let (peer, first_seq, _, _) = remote_write(&protocol, &map, &mut core);
        let (_, second_seq, _, _) = remote_write(&protocol, &map, &mut core);
        assert_eq!((first_seq, second_seq), (1, 2), "cap 1 evicts the first");
        assert_eq!(core.window_evicted, 1);

        // The evicted pair retires (it can never be acked) but must not
        // advance the barrier — the peer never observed it. The second
        // pair still blocks.
        core.plan_seal(1);
        assert_eq!(core.links[peer].sealed_high, 0);
        assert_eq!(core.links[peer].evicted_high, first_seq);
    }

    #[test]
    fn barrier_fast_path_matches_slow_path_counters() {
        let (protocol, map, mut origin) = ring_core(0, 64);
        let (peer, seq, partition, update) = remote_write(&protocol, &map, &mut origin);
        let sections: FlushSections<_> = vec![(partition, vec![(seq, update)])];

        let (_, _, mut receiver) = ring_core(peer, 64);
        receiver.apply_sections(&protocol, 0, sections.clone());
        let applied_log = receiver.partitions[partition.index()]
            .as_ref()
            .expect("hosted")
            .log
            .len();
        assert_eq!(receiver.duplicates_dropped, 0);

        // Straggler resend without a barrier: the watermark (slow path)
        // catches the duplicate.
        receiver.apply_sections(&protocol, 0, sections.clone());
        assert_eq!(receiver.duplicates_dropped, 1);
        assert_eq!(receiver.barrier_skips, 0);

        // With the origin's seal barrier covering the sequence, the fast
        // path drops it before the watermark — same counter motion, same
        // replica state.
        receiver.links[0].seal_barrier = seq;
        receiver.apply_sections(&protocol, 0, sections);
        assert_eq!(receiver.duplicates_dropped, 2);
        assert_eq!(receiver.barrier_skips, 1);
        assert_eq!(
            receiver.partitions[partition.index()]
                .as_ref()
                .expect("hosted")
                .log
                .len(),
            applied_log,
            "neither duplicate re-applied anything"
        );
    }
}
