//! A replica as an async-style TCP node.
//!
//! Each node runs a small constellation of threads around one *core* thread
//! that owns the [`Replica`] state machine:
//!
//! * the core thread serializes all state access (writes, reads, update
//!   application, trace/status snapshots) through one channel — replicating
//!   the run-to-completion event loop an async runtime would provide;
//! * one *sender* thread per peer dials the peer's update listener, then
//!   coalesces outgoing updates into batched frames: a batch closes when it
//!   reaches `batch_max` updates or `flush_interval` elapses after its
//!   first update, whichever is first;
//! * the peer listener accepts connections and spawns a reader per peer
//!   that decodes batches and forwards them to the core;
//! * the client listener serves the request/response API of
//!   [`crate::wire::ClientRequest`].
//!
//! Updates carry globally unique wire ids (`issuer << 40 | seq`), which
//! drive both duplicate suppression in [`Replica::receive`] and the
//! post-hoc oracle replay over collected traces.

use crate::wire::{
    decode_batch, decode_peer_hello, decode_request, encode_batch, encode_peer_hello,
    encode_response, read_frame, write_frame, ClientRequest, ClientResponse, NodeStatus, PeerHello,
};
use prcc_checker::trace::TraceEvent;
use prcc_checker::UpdateId;
use prcc_clock::{Protocol, WireClock};
use prcc_core::{Replica, Update};
use prcc_graph::{RegisterId, ReplicaId, ShareGraph};
use prcc_net::VirtualTime;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs of a node deployment.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum updates coalesced into one peer frame.
    pub batch_max: usize,
    /// How long a non-full batch may wait for more updates.
    pub flush_interval: Duration,
    /// Extra bytes shipped with each update (simulated value size).
    pub pad_bytes: usize,
    /// How long senders keep retrying a peer dial before giving up.
    pub connect_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch_max: 64,
            flush_interval: Duration::from_micros(200),
            pad_bytes: 0,
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Everything a node needs to come up: its identity, pre-bound listeners
/// (binding first solves the ephemeral-port bootstrap), and the peer map.
#[derive(Debug)]
pub struct NodeSeed {
    /// This node's replica id.
    pub id: ReplicaId,
    /// Listener for incoming peer update connections.
    pub peer_listener: TcpListener,
    /// Listener for the client API.
    pub client_listener: TcpListener,
    /// Peer update-listener addresses, indexed by replica.
    pub peer_addrs: Vec<SocketAddr>,
}

/// Handle to a spawned node.
#[derive(Debug)]
pub struct NodeHandle {
    /// The node's replica id.
    pub id: ReplicaId,
    /// Address of the peer update listener.
    pub peer_addr: SocketAddr,
    /// Address of the client API listener.
    pub client_addr: SocketAddr,
    core: Option<thread::JoinHandle<()>>,
}

impl NodeHandle {
    /// Blocks until the node's core thread exits (a client sent
    /// [`ClientRequest::Shutdown`]).
    pub fn join(&mut self) {
        if let Some(handle) = self.core.take() {
            let _ = handle.join();
        }
    }
}

enum CoreMsg<C> {
    Write {
        register: RegisterId,
        value: u64,
        reply: mpsc::Sender<bool>,
    },
    Read {
        register: RegisterId,
        reply: mpsc::Sender<(bool, Option<u64>)>,
    },
    Updates(Vec<Update<C>>),
    Status(mpsc::Sender<NodeStatus>),
    Trace(mpsc::Sender<Vec<TraceEvent>>),
    Shutdown,
}

struct SocketCounters {
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
    batches_sent: AtomicU64,
}

/// Spawns a node: core thread, peer senders, peer/client listeners.
///
/// # Errors
///
/// Fails only on listener introspection; network errors after spawn are
/// handled per-connection (logged to stderr, connection dropped).
pub fn spawn_node<P>(protocol: Arc<P>, seed: NodeSeed, cfg: ServiceConfig) -> io::Result<NodeHandle>
where
    P: Protocol + 'static,
    P::Clock: WireClock,
{
    let NodeSeed {
        id,
        peer_listener,
        client_listener,
        peer_addrs,
    } = seed;
    let peer_addr = peer_listener.local_addr()?;
    let client_addr = client_listener.local_addr()?;
    let graph = protocol.share_graph().clone();
    let n = graph.num_replicas();
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(SocketCounters {
        bytes_out: AtomicU64::new(0),
        bytes_in: AtomicU64::new(0),
        batches_sent: AtomicU64::new(0),
    });

    let (core_tx, core_rx) = mpsc::channel::<CoreMsg<P::Clock>>();

    // Per-peer outgoing channels feeding the sender threads.
    let mut peer_txs: Vec<Option<mpsc::Sender<Update<P::Clock>>>> = Vec::with_capacity(n);
    for (k, &addr) in peer_addrs.iter().enumerate().take(n) {
        if k == id.index() {
            peer_txs.push(None);
            continue;
        }
        let (tx, rx) = mpsc::channel::<Update<P::Clock>>();
        peer_txs.push(Some(tx));
        let hello = PeerHello {
            node: id,
            graph: graph.clone(),
        };
        let cfg = cfg.clone();
        let counters = Arc::clone(&counters);
        thread::spawn(move || peer_sender(addr, hello, rx, &cfg, &counters));
    }

    // Peer listener: one reader thread per inbound peer connection.
    {
        let core_tx = core_tx.clone();
        let protocol = Arc::clone(&protocol);
        let graph = graph.clone();
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        thread::spawn(move || {
            for conn in peer_listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { break };
                let core_tx = core_tx.clone();
                let protocol = Arc::clone(&protocol);
                let graph = graph.clone();
                let counters = Arc::clone(&counters);
                thread::spawn(move || {
                    if let Err(e) = peer_reader(stream, &protocol, &graph, &core_tx, &counters) {
                        eprintln!("prcc-service[{id}]: peer reader: {e}");
                    }
                });
            }
        });
    }

    // Client listener: one handler thread per client connection.
    {
        let core_tx = core_tx.clone();
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let addrs = (peer_addr, client_addr);
        thread::spawn(move || {
            for conn in client_listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { break };
                let core_tx = core_tx.clone();
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                thread::spawn(move || {
                    let _ = client_handler(stream, &core_tx, &stop, &counters, addrs);
                });
            }
        });
    }

    // The core event loop.
    let core = thread::Builder::new()
        .name(format!("prcc-core-{}", id.index()))
        .spawn(move || core_loop(&protocol, id, &core_rx, &peer_txs))?;

    Ok(NodeHandle {
        id,
        peer_addr,
        client_addr,
        core: Some(core),
    })
}

#[allow(clippy::type_complexity)]
fn core_loop<P>(
    protocol: &Arc<P>,
    id: ReplicaId,
    core_rx: &mpsc::Receiver<CoreMsg<P::Clock>>,
    peer_txs: &[Option<mpsc::Sender<Update<P::Clock>>>],
) where
    P: Protocol,
    P::Clock: WireClock,
{
    let mut replica: Replica<P> = Replica::new(protocol, id);
    let mut log: Vec<TraceEvent> = Vec::new();
    let mut seq: u64 = 0;
    let (mut issued, mut sent, mut received) = (0u64, 0u64, 0u64);

    while let Ok(msg) = core_rx.recv() {
        match msg {
            CoreMsg::Write {
                register,
                value,
                reply,
            } => match replica.write(&**protocol, register, value) {
                Ok(clock) => {
                    seq += 1;
                    let wire_id = ((id.index() as u64) << 40) | seq;
                    log.push(TraceEvent::Issue {
                        replica: id,
                        register,
                        update: wire_id,
                    });
                    issued += 1;
                    let update = Update {
                        id: UpdateId(wire_id),
                        issuer: id,
                        register,
                        value,
                        clock,
                        issued_at: VirtualTime::ZERO,
                        received_at: VirtualTime::ZERO,
                    };
                    for k in protocol.recipients(id, register) {
                        if let Some(tx) = &peer_txs[k.index()] {
                            if tx.send(update.clone()).is_ok() {
                                sent += 1;
                            }
                        }
                    }
                    let _ = reply.send(true);
                }
                Err(_) => {
                    let _ = reply.send(false);
                }
            },
            CoreMsg::Read { register, reply } => {
                let answer = match replica.read(&**protocol, register) {
                    Ok(value) => (true, value),
                    Err(_) => (false, None),
                };
                let _ = reply.send(answer);
            }
            CoreMsg::Updates(updates) => {
                for update in updates {
                    received += 1;
                    replica.receive(update, VirtualTime::ZERO);
                }
                for done in replica.drain(&**protocol) {
                    if protocol.stores_value(id, done.register) {
                        log.push(TraceEvent::Apply {
                            replica: id,
                            update: done.id.0,
                        });
                    }
                }
            }
            CoreMsg::Status(reply) => {
                let _ = reply.send(NodeStatus {
                    node: id.index() as u64,
                    issued,
                    messages_sent: sent,
                    messages_received: received,
                    applies: replica.applies(),
                    pending: replica.pending_len() as u64,
                    duplicates_dropped: replica.dropped_duplicates(),
                    // Socket byte counters are filled in by the handler.
                    bytes_out: 0,
                    bytes_in: 0,
                    batches_sent: 0,
                });
            }
            CoreMsg::Trace(reply) => {
                let _ = reply.send(log.clone());
            }
            CoreMsg::Shutdown => break,
        }
    }
}

fn peer_sender<C: WireClock>(
    addr: SocketAddr,
    hello: PeerHello,
    rx: mpsc::Receiver<Update<C>>,
    cfg: &ServiceConfig,
    counters: &SocketCounters,
) {
    // Dial with retry: peers come up in arbitrary order.
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut stream = loop {
        match TcpStream::connect(addr) {
            Ok(stream) => break stream,
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("prcc-service[{}]: dial {addr}: {e}", hello.node);
                    // Drain so the core never blocks on a dead peer.
                    while rx.recv().is_ok() {}
                    return;
                }
                thread::sleep(Duration::from_millis(5));
            }
        }
    };
    let _ = stream.set_nodelay(true);
    let send = |stream: &mut TcpStream, payload: &[u8]| -> io::Result<usize> {
        write_frame(stream, payload)
    };
    if let Ok(n) = send(&mut stream, &encode_peer_hello(&hello)) {
        counters.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
    } else {
        while rx.recv().is_ok() {}
        return;
    }

    // Batching loop: block for the first update, then coalesce until the
    // batch fills or the flush interval elapses.
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        let deadline = Instant::now() + cfg.flush_interval;
        while batch.len() < cfg.batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(update) => batch.push(update),
                Err(_) => break,
            }
        }
        match send(&mut stream, &encode_batch(&batch, cfg.pad_bytes)) {
            Ok(n) => {
                counters.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                counters.batches_sent.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                eprintln!("prcc-service[{}]: send to {addr}: {e}", hello.node);
                while rx.recv().is_ok() {}
                return;
            }
        }
    }
}

fn peer_reader<P>(
    mut stream: TcpStream,
    protocol: &Arc<P>,
    graph: &ShareGraph,
    core_tx: &mpsc::Sender<CoreMsg<P::Clock>>,
    counters: &SocketCounters,
) -> io::Result<()>
where
    P: Protocol,
    P::Clock: WireClock,
{
    let _ = stream.set_nodelay(true);
    let Some(hello_frame) = read_frame(&mut stream)? else {
        return Ok(());
    };
    counters
        .bytes_in
        .fetch_add(hello_frame.len() as u64 + 4, Ordering::Relaxed);
    let hello = decode_peer_hello(&hello_frame)?;
    if &hello.graph != graph {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer {} runs a different topology", hello.node),
        ));
    }
    let n = graph.num_replicas();
    while let Some(payload) = read_frame(&mut stream)? {
        counters
            .bytes_in
            .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
        let updates = decode_batch(&payload, |k| (k.index() < n).then(|| protocol.new_clock(k)))?;
        if core_tx.send(CoreMsg::Updates(updates)).is_err() {
            break; // Core shut down.
        }
    }
    Ok(())
}

fn client_handler<C: WireClock>(
    mut stream: TcpStream,
    core_tx: &mpsc::Sender<CoreMsg<C>>,
    stop: &Arc<AtomicBool>,
    counters: &SocketCounters,
    listeners: (SocketAddr, SocketAddr),
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    while let Some(payload) = read_frame(&mut stream)? {
        let response = match decode_request(&payload)? {
            ClientRequest::Write {
                register, value, ..
            } => {
                let (reply, rx) = mpsc::channel();
                let ok = core_tx
                    .send(CoreMsg::Write {
                        register,
                        value,
                        reply,
                    })
                    .is_ok()
                    && rx.recv().unwrap_or(false);
                ClientResponse::WriteAck { ok }
            }
            ClientRequest::Read { register } => {
                let (reply, rx) = mpsc::channel();
                let (ok, value) = if core_tx.send(CoreMsg::Read { register, reply }).is_ok() {
                    rx.recv().unwrap_or((false, None))
                } else {
                    (false, None)
                };
                ClientResponse::ReadResp { ok, value }
            }
            ClientRequest::Status => {
                let (reply, rx) = mpsc::channel();
                let mut status = if core_tx.send(CoreMsg::Status(reply)).is_ok() {
                    rx.recv().unwrap_or_default()
                } else {
                    NodeStatus::default()
                };
                status.bytes_out = counters.bytes_out.load(Ordering::Relaxed);
                status.bytes_in = counters.bytes_in.load(Ordering::Relaxed);
                status.batches_sent = counters.batches_sent.load(Ordering::Relaxed);
                ClientResponse::Status(status)
            }
            ClientRequest::Trace => {
                let (reply, rx) = mpsc::channel();
                let events = if core_tx.send(CoreMsg::Trace(reply)).is_ok() {
                    rx.recv().unwrap_or_default()
                } else {
                    Vec::new()
                };
                ClientResponse::Trace(events)
            }
            ClientRequest::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                // Ack *before* stopping the core: once the core exits, a
                // process joining it (prcc-serve) may exit and kill this
                // thread before an ack written later would ever leave.
                write_frame(&mut stream, &encode_response(&ClientResponse::Bye))?;
                let _ = core_tx.send(CoreMsg::Shutdown);
                // Unblock the accept loops so their threads observe `stop`.
                let _ = TcpStream::connect(listeners.0);
                let _ = TcpStream::connect(listeners.1);
                return Ok(());
            }
        };
        write_frame(&mut stream, &encode_response(&response))?;
    }
    Ok(())
}
