//! A partition-routing TCP node with optional durability.
//!
//! A node no longer *is* a replica: it hosts one replica *role* of every
//! partition the [`PartitionMap`] places on it, each an independent
//! [`Replica`] with its own share-graph-derived clock. The threads around
//! the core:
//!
//! * the core thread serializes all state access (writes, reads, update
//!   application, trace/status snapshots, link bookkeeping) through one
//!   channel — replicating the run-to-completion event loop an async
//!   runtime would provide — and routes every message to the target
//!   partition's replica;
//! * one *sender* thread per peer node dials the peer's update listener
//!   (redialing with bounded backoff and a fresh handshake if the link
//!   later drops), then coalesces outgoing updates: a batch closes when it
//!   reaches `batch_max` updates or `flush_interval` elapses after its
//!   first update, whichever is first, and the whole flush is emitted as
//!   *one* multi-partition frame carrying a section per partition present;
//! * the peer listener accepts connections and spawns a reader per peer
//!   that answers the handshake with the acknowledged resume offset,
//!   decodes multi-partition flush frames, fans their sections to the
//!   core, and streams acknowledgement frames back to the sender;
//! * the client listener serves the request/response API of
//!   [`crate::wire::ClientRequest`], including the [`PartitionMap`] itself
//!   (`Config`) so clients can route by key.
//!
//! # Durability (wire v4 + `prcc-storage`)
//!
//! With a data dir configured, the core appends every state-mutating input
//! to a checksummed write-ahead log *before* applying it: client writes as
//! [`WalRecord::Issue`], decoded peer flush frames as
//! [`WalRecord::Receipt`]. Because the core loop is deterministic, replaying
//! snapshot + log on boot rebuilds the exact pre-crash state — clocks,
//! stores, pending buffers, dedup sets, event logs, *and* the per-peer
//! outbound windows below. Periodic snapshots fold the log prefix and
//! truncate it.
//!
//! Peer links are acknowledged: the core assigns every outbound update a
//! per-link sequence number and parks it in that link's *window*; the
//! receiver acks the highest sequence it has durably received (at the
//! handshake and periodically in-stream), which prunes the window. After
//! any reconnect — link loss or node restart — the sender resends the
//! window suffix past the peer's acknowledged offset, so updates buffered
//! into a dying socket are retransmitted instead of lost; the receiver's
//! dedup set absorbs the overlap.
//!
//! Updates carry globally unique wire ids (`node << 40 | seq`, with `seq`
//! node-global across partitions and recovered on restart), which drive
//! duplicate suppression in [`Replica::receive`] and the post-hoc
//! per-partition oracle replay over collected traces.
//!
//! # Telemetry (wire v6 + `prcc-telemetry`)
//!
//! Every node owns a [`Registry`]: the socket-level counters live there as
//! `net_*` handles shared by the I/O threads, the core mirrors its logical
//! state into `core_*`/`wal_*`/`trace_*` gauges when asked, and the
//! update-lifecycle stage histograms (`wal_append_us`, `send_us`,
//! `wire_us`, `pending_stall_us`, `visibility_us`, `ack_us`, `seal_us`,
//! `wal_fsync_us`) record wall-clock stage latencies for 1-in-N sampled
//! updates. Sampling is decided once, at the origin: a sampled write
//! carries its issue stamp in `issued_at` over the live v6 wire, and every
//! downstream stage keys off that stamp being non-zero — so the unsampled
//! hot path pays no clock reads, and WAL replay (whose durable codecs
//! deliberately drop the stamps, keeping recovery byte-deterministic)
//! records nothing through the very same code paths. The core also keeps a
//! [`FlightRecorder`] ring of recent structured events, dumped to
//! `<node_dir>/flight.log` when the node fail-stops or is crash-injected.

use crate::bufpool::{BufPool, Lease};
use crate::wire::{
    append_frame, decode_cut_marker, decode_hello_ack, decode_peer_ack, decode_peer_batches,
    decode_peer_hello, decode_request, encode_cut_marker, encode_hello_ack,
    encode_multi_batch_into, encode_peer_ack_into, encode_peer_hello, encode_response_into,
    read_frame, read_frame_pooled, write_frame, ClientRequest, ClientResponse, FlushSections,
    NodeStatus, PartitionCounters, PeerHello, TAG_CUT_MARKER, WIRE_VERSION,
};
use parking_lot::Mutex;
use prcc_checker::trace::TraceEvent;
use prcc_checker::{CutSnapshot, PartitionCut, TraceCheckpoint, UpdateId};
use prcc_clock::{Protocol, WireClock};
use prcc_core::{Replica, SeqWatermark, Update};
use prcc_graph::{PartitionId, PartitionMap, RegisterId, ReplicaId};
use prcc_net::chaos::mix64;
use prcc_net::VirtualTime;
use prcc_storage::{
    decode_record, decode_snapshot, encode_snapshot, read_snapshot, write_snapshot, NodeSnapshot,
    PartitionSnapshot, PeerSnapshot, Wal, WalRecord,
};
use prcc_telemetry::{
    wall_us, Counter, FlightRecorder, MetricsSnapshot, Registry, Sampler, SharedHistogram,
};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, IoSlice, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Low 40 bits of a wire id: the node-global issue sequence (the issuing
/// node's index sits above them).
const WIRE_SEQ_MASK: u64 = (1 << 40) - 1;

/// How long an idle sender waits between checks of the stop flag (it
/// cannot block forever on its channel: its own relink handle keeps the
/// channel alive).
const SENDER_IDLE_POLL: Duration = Duration::from_millis(200);

/// Maximum messages one core sweep drains before committing the staged
/// WAL batch and releasing the sweep's replies. Bounds both the latency
/// any one reply can be held back and the staged-batch memory of a
/// flooded node; an idle node commits after every single message.
const SWEEP_MAX: usize = 256;

/// Maximum `IoSlice` entries per `write_vectored` call (kernels cap an
/// iovec at `IOV_MAX`, typically 1024; 64 keeps each syscall's setup
/// cheap while still coalescing a deep backlog).
const MAX_IOV: usize = 64;

/// How many consistent-cut snapshots the core keeps, newest-first. Cut
/// audits are live-only diagnostics: an auditor that falls more than this
/// many tokens behind simply sees `None` and retries with a fresh token.
const CUTS_KEPT: usize = 8;

/// Maximum frames a sender drains into one vectored flush. Each frame is
/// itself `batch_max`-bounded, so one flush moves at most
/// `batch_max * MAX_FLUSH_FRAMES` updates.
const MAX_FLUSH_FRAMES: usize = 8;

/// Tuning knobs of a node deployment.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum updates coalesced into one peer flush (emitted as a single
    /// multi-partition frame).
    pub batch_max: usize,
    /// How long a non-full batch may wait for more updates.
    pub flush_interval: Duration,
    /// Extra bytes shipped with each update (simulated value size).
    pub pad_bytes: usize,
    /// How long senders keep retrying a peer dial before giving up.
    pub connect_timeout: Duration,
    /// Directory for write-ahead logs and snapshots (`None` = in-memory
    /// node, the pre-durability behavior). Each node uses
    /// `<data_dir>/node-<i>/`.
    pub data_dir: Option<PathBuf>,
    /// WAL records between snapshots (snapshots truncate the log);
    /// 0 = never snapshot. Ignored without a data dir.
    pub snapshot_every: u64,
    /// Peer flush frames between streamed acknowledgements per link;
    /// 0 = acknowledge only at the handshake (useful for deterministic
    /// snapshot tests — windows then never shrink mid-run).
    pub ack_every: u64,
    /// Group commit: `fdatasync` the WAL every N appends (and sync
    /// snapshots before rename), for power-loss durability; 0 = never
    /// sync (a process crash still loses nothing). Ignored without a
    /// data dir.
    pub fsync_every: u64,
    /// Live trace events per partition above which the core seals the
    /// fully-acknowledged log prefix into its checkpoint summary and
    /// discards it; 0 = compact only when a snapshot is written. Keeps
    /// in-memory trace logs (and therefore snapshots) O(live state).
    pub trace_compact_at: usize,
    /// Hard cap on a per-peer resend window: a peer stranded past this
    /// many unacknowledged updates has its oldest entries evicted (counted
    /// in `NodeStatus::window_evicted`) instead of growing without bound.
    /// Eviction gives up on delivering those updates to that peer — its
    /// receive watermark will hold a permanent gap, so the link cannot
    /// heal by resend; restoring the peer takes a full state transfer
    /// (today: operator-driven, from a surviving holder's data) — a
    /// bounded node cannot replay unbounded absence.
    pub window_cap: usize,
    /// Update-lifecycle tracing period: 1 in `sample_every` issued updates
    /// carries a wall-clock issue stamp across the wire, feeding the
    /// per-stage latency histograms at every node it touches. 0 disables
    /// tracing entirely, 1 stamps every update. The unsampled hot path
    /// pays no clock reads.
    pub sample_every: u64,
    /// Flight-recorder capacity: how many recent core events the in-memory
    /// ring retains for the crash dump. 0 disables the recorder.
    pub flight_events: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch_max: 64,
            flush_interval: Duration::from_micros(200),
            pad_bytes: 0,
            connect_timeout: Duration::from_secs(10),
            data_dir: None,
            snapshot_every: 4096,
            ack_every: 16,
            fsync_every: 0,
            trace_compact_at: 1024,
            window_cap: 1 << 16,
            sample_every: 16,
            flight_events: 1024,
        }
    }
}

/// Everything a node needs to come up: its identity, pre-bound listeners
/// (binding first solves the ephemeral-port bootstrap), and the peer map.
#[derive(Debug)]
pub struct NodeSeed {
    /// This node's index in the partition map.
    pub node: usize,
    /// Listener for incoming peer update connections.
    pub peer_listener: TcpListener,
    /// Listener for the client API.
    pub client_listener: TcpListener,
    /// Peer update-listener addresses, indexed by node.
    pub peer_addrs: Vec<SocketAddr>,
}

/// Handle to a spawned node.
pub struct NodeHandle {
    /// The node's index in the partition map.
    pub node: usize,
    /// Address of the peer update listener.
    pub peer_addr: SocketAddr,
    /// Address of the client API listener.
    pub client_addr: SocketAddr,
    core: Option<thread::JoinHandle<()>>,
    kill: Arc<dyn Fn() + Send + Sync>,
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeHandle")
            .field("node", &self.node)
            .field("peer_addr", &self.peer_addr)
            .field("client_addr", &self.client_addr)
            .finish()
    }
}

impl NodeHandle {
    /// Blocks until the node's core thread exits (a client sent
    /// [`ClientRequest::Shutdown`], or the node was crashed).
    pub fn join(&mut self) {
        if let Some(handle) = self.core.take() {
            let _ = handle.join();
        }
    }

    /// Kills the node *without* graceful shutdown — fault injection for
    /// the recovery tests and `prcc-load --crash-restart`. The core stops
    /// mid-stream (no final snapshot, no drain), every peer connection is
    /// severed, and in-flight client requests see their connections drop.
    /// A node with a data dir can then be respawned on the same directory
    /// and recover from its snapshot + WAL.
    pub fn crash(&mut self) {
        (self.kill)();
        self.join();
    }
}

/// Commands a sender thread receives: a sequenced outbound update from the
/// core, or a nudge from an ack-reader that connection `generation` died
/// (so the sender redials even when no new traffic would surface the
/// failure).
enum SenderCmd<C> {
    Update(u64, PartitionId, Update<C>),
    Relink(u64),
    /// A consistent-cut marker: written to the peer at exactly the channel
    /// position it was enqueued at (after every update queued before it,
    /// before every update queued after it) — the Chandy–Lamport discipline
    /// the cut audit's closure check relies on. Markers are fire-and-forget:
    /// they never enter the resend window, so a link loss loses them and the
    /// audit reports the cut incomplete rather than wrong.
    Marker(u64),
}

enum CoreMsg<C> {
    Write {
        partition: PartitionId,
        register: RegisterId,
        value: u64,
        reply: mpsc::Sender<bool>,
    },
    Read {
        partition: PartitionId,
        register: RegisterId,
        reply: mpsc::Sender<(bool, Option<u64>)>,
    },
    /// One decoded peer flush frame: sender node, its sections, and the
    /// channel acknowledgements for this connection travel on.
    Updates {
        peer: usize,
        sections: FlushSections<C>,
        ack: mpsc::Sender<u64>,
    },
    /// A peer's inbound handshake: reply with the acknowledged resume
    /// offset for that link.
    PeerJoin {
        peer: usize,
        reply: mpsc::Sender<u64>,
    },
    /// A sender (re)connected and the peer acknowledged `acked`: prune the
    /// link's window to it and hand back what must be resent.
    PeerResume {
        peer: usize,
        acked: u64,
        reply: mpsc::Sender<Vec<(u64, PartitionId, Update<C>)>>,
    },
    /// A streamed acknowledgement from a peer arrived.
    PeerAcked {
        peer: usize,
        seq: u64,
    },
    /// A client-driven consistent-cut request: with `start`, record this
    /// node's snapshot for `token` (if unseen) and flood markers to every
    /// peer; either way reply with the recorded snapshot, if any.
    Cut {
        token: u64,
        start: bool,
        reply: mpsc::Sender<Option<CutSnapshot>>,
    },
    /// A cut marker arrived on a peer update stream: record this node's
    /// snapshot for `token` (if unseen) and propagate markers onward.
    PeerMarker {
        token: u64,
    },
    Status(mpsc::Sender<NodeStatus>),
    Trace(mpsc::Sender<Vec<(TraceCheckpoint, Vec<TraceEvent>)>>),
    /// A live metrics scrape: mirror core state into the registry's gauges
    /// and reply with the frozen snapshot.
    Metrics(mpsc::Sender<MetricsSnapshot>),
    /// Fault injection: stop immediately, no final snapshot.
    Crash,
    Shutdown,
}

/// Registry-backed handles for the socket-level metrics, shared by every
/// I/O thread (senders, readers, client handlers). Replaces the old
/// ad-hoc atomic-counter struct: the same values now travel in the v6
/// `Metrics` snapshot under their `net_*` names, and `send_us` times the
/// issue→first-socket-write stage for sampled updates.
struct NetMetrics {
    bytes_out: Counter,
    bytes_in: Counter,
    /// Per-partition update runs shipped (sections across all frames).
    batches_sent: Counter,
    /// Peer update frames written.
    frames_sent: Counter,
    /// Sender flush cycles.
    flushes: Counter,
    /// Update copies resent from the window after a reconnect.
    resent: Counter,
    /// Issue → first socket write, sampled updates only.
    send_us: Arc<SharedHistogram>,
}

impl NetMetrics {
    fn new(registry: &Registry) -> Self {
        NetMetrics {
            bytes_out: registry.counter("net_bytes_out"),
            bytes_in: registry.counter("net_bytes_in"),
            batches_sent: registry.counter("net_batches_sent"),
            frames_sent: registry.counter("net_frames_sent"),
            flushes: registry.counter("net_flushes"),
            resent: registry.counter("net_resent"),
            send_us: registry.histogram("send_us"),
        }
    }
}

/// Per-peer outgoing channel feeding the sender thread.
type PeerTx<C> = mpsc::Sender<SenderCmd<C>>;

/// The live inbound connection per dialing peer, keyed by its node index
/// and tagged with a process-unique registration token. A peer's sender
/// runs exactly one connection at a time, so a redial *replaces* the old
/// one: the acceptor shuts the stale socket down, which unblocks (and
/// ends) its reader thread instead of leaking it on a half-open link. The
/// crash switch severs everything registered here, and every reader
/// deregisters its own entry (matched by token) on exit — a registered
/// clone must never keep a readerless socket open, or the peer would keep
/// writing into a black hole without ever seeing the connection die.
type PeerConnections = Arc<Mutex<HashMap<usize, (u64, TcpStream)>>>;

/// Process-unique tokens for [`PeerConnections`] registrations.
static REGISTRATION_TOKEN: AtomicU64 = AtomicU64::new(0);

/// One hosted partition: the role this node plays in it, the replica state
/// machine, the sealed-prefix checkpoint summary, and the live tail of the
/// partition-local event log.
struct PartitionSlot<P: Protocol> {
    role: ReplicaId,
    replica: Replica<P>,
    /// Summary of the sealed (fully acknowledged, verified-by-construction)
    /// trace prefix — what the post-hoc oracle stitches under `log`.
    checkpoint: TraceCheckpoint,
    /// The live trace suffix; bounded by the compaction threshold plus the
    /// unacknowledged in-flight tail.
    log: Vec<TraceEvent>,
    issued: u64,
    /// Own issues not yet acknowledged by every remote recipient:
    /// `(wire id, remaining (peer, link seq) pairs)`, ascending by wire
    /// id. An issue may be sealed out of the trace log only once it has
    /// left this queue — the seal rule the stitched oracle relies on.
    unacked: VecDeque<(u64, Vec<(usize, u64)>)>,
}

/// One peer link's state, owned by the core (so it is snapshot-able and
/// deterministically rebuilt by WAL replay).
struct PeerLink<C> {
    /// Next outbound sequence to assign (starts at 1).
    next_seq: u64,
    /// Outbound updates not yet acknowledged by the peer, in sequence
    /// order. Entries enter when enqueued to the sender and leave when an
    /// acknowledgement covers them (or the window cap evicts them).
    window: VecDeque<(u64, PartitionId, Update<C>)>,
    /// Highest outbound sequence the peer has acknowledged.
    acked_high: u64,
    /// Highest outbound sequence evicted by the window cap (0 = none).
    /// Evicted sequences can never be acknowledged — the update copy is
    /// gone — so they are treated as abandoned rather than allowed to
    /// block trace sealing forever; `window_evicted` is the loud record
    /// that delivery to this peer was given up on.
    evicted_high: u64,
    /// Inbound receive watermark: contiguous high-water (the offset this
    /// node acknowledges back) plus the out-of-order residue — also the
    /// exact per-link duplicate filter.
    recv: SeqWatermark,
    /// Flush frames received since the last streamed acknowledgement.
    frames_since_ack: u64,
}

impl<C> PeerLink<C> {
    fn new() -> Self {
        PeerLink {
            next_seq: 1,
            window: VecDeque::new(),
            acked_high: 0,
            evicted_high: 0,
            recv: SeqWatermark::new(),
            frames_since_ack: 0,
        }
    }
}

/// The core thread's telemetry: the metric registry, pre-fetched handles
/// for the lifecycle-stage histograms, the sampling decision, the flight
/// recorder, and the live stamp side-tables.
///
/// Deliberately NOT part of the snapshot/WAL state: every value here is
/// wall-clock-derived, and the recovery suite proves durable bytes are
/// identical across same-seed runs. Stamps therefore ride only the live
/// v6 wire (`issued_at`), never the durable codecs — a recovered core
/// starts with an empty side-table and records nothing during replay,
/// through the same code paths the live loop uses.
struct CoreTelemetry {
    registry: Arc<Registry>,
    sampler: Sampler,
    flight: FlightRecorder,
    /// Write stamp → WAL append completed (origin only).
    wal_append_us: Arc<SharedHistogram>,
    /// Issue at origin → frame decoded at a recipient.
    wire_us: Arc<SharedHistogram>,
    /// Issue at origin → applied at a recipient: the end-to-end update
    /// visibility latency the paper's protocol trades against metadata.
    visibility_us: Arc<SharedHistogram>,
    /// Received → applied at a recipient: time buffered behind the
    /// deliverability predicate — the false-dependency cost made visible.
    pending_stall_us: Arc<SharedHistogram>,
    /// Issue at origin → the recipient's acknowledgement pruned the copy
    /// from the resend window.
    ack_us: Arc<SharedHistogram>,
    /// Issue at origin → the issue's trace event sealed into the
    /// checkpoint (every remote recipient acknowledged it).
    seal_us: Arc<SharedHistogram>,
    /// Sampled received-but-unapplied copies: wire id → receive stamp.
    /// Bounded by the pending buffers (entries leave at apply).
    stall_stamps: HashMap<u64, u64>,
    /// This node's own sampled issues: wire id → issue stamp, consumed
    /// when the issue seals. Bounded by the unsealed trace tail.
    seal_stamps: HashMap<u64, u64>,
}

impl CoreTelemetry {
    fn new(registry: Arc<Registry>, cfg: &ServiceConfig) -> Self {
        CoreTelemetry {
            sampler: Sampler::new(cfg.sample_every),
            flight: FlightRecorder::new(cfg.flight_events),
            wal_append_us: registry.histogram("wal_append_us"),
            wire_us: registry.histogram("wire_us"),
            visibility_us: registry.histogram("visibility_us"),
            pending_stall_us: registry.histogram("pending_stall_us"),
            ack_us: registry.histogram("ack_us"),
            seal_us: registry.histogram("seal_us"),
            stall_stamps: HashMap::new(),
            seal_stamps: HashMap::new(),
            registry,
        }
    }
}

/// The core's full logical state: everything the WAL + snapshot must be
/// able to rebuild. Kept separate from the I/O threads so the live event
/// loop and boot-time replay run the exact same transition functions.
struct Core<P: Protocol> {
    node: usize,
    partitions: Vec<Option<PartitionSlot<P>>>,
    links: Vec<PeerLink<P::Clock>>,
    /// Node-global wire-id sequence (low 40 bits of issued update ids).
    seq: u64,
    issued: u64,
    sent: u64,
    received: u64,
    dropped_misrouted: u64,
    /// Duplicate deliveries suppressed by the link watermarks.
    duplicates_dropped: u64,
    /// Hard cap on any one resend window (config).
    window_cap: usize,
    /// Largest window observed.
    max_window: u64,
    /// Entries evicted by the cap.
    window_evicted: u64,
    /// Stage histograms, sampling, and the flight recorder (live-only
    /// state — excluded from snapshots and rebuilt empty on recovery).
    tel: CoreTelemetry,
    /// Recent consistent-cut snapshots by token, oldest first, bounded by
    /// [`CUTS_KEPT`]. Live-only audit state: never snapshotted or WAL'd —
    /// a node that restarts mid-audit simply has no snapshot for the
    /// token, and the audit reports the cut incomplete.
    cuts: VecDeque<(u64, CutSnapshot)>,
}

impl<P: Protocol> Core<P> {
    fn new(
        protocol: &P,
        map: &PartitionMap,
        node: usize,
        window_cap: usize,
        tel: CoreTelemetry,
    ) -> Self {
        let roles = map.graph().num_replicas();
        let registers = map.graph().num_registers();
        let partitions = map
            .partitions()
            .map(|p| {
                map.role_on(p, node).map(|role| PartitionSlot {
                    role,
                    replica: Replica::new(protocol, role),
                    checkpoint: TraceCheckpoint::new(roles, registers),
                    log: Vec::new(),
                    issued: 0,
                    unacked: VecDeque::new(),
                })
            })
            .collect();
        Core {
            node,
            partitions,
            links: (0..map.num_nodes()).map(|_| PeerLink::new()).collect(),
            seq: 0,
            issued: 0,
            sent: 0,
            received: 0,
            dropped_misrouted: 0,
            duplicates_dropped: 0,
            window_cap: window_cap.max(1),
            max_window: 0,
            window_evicted: 0,
            tel,
            cuts: VecDeque::new(),
        }
    }

    /// Whether a snapshot for cut `token` was already recorded (the first
    /// marker sighting snapshots; later sightings of the same token are
    /// the expected echoes from the other peer links).
    fn cut_seen(&self, token: u64) -> bool {
        self.cuts.iter().any(|(t, _)| *t == token)
    }

    /// The recorded snapshot for `token`, if it is still retained.
    fn cut_snapshot(&self, token: u64) -> Option<CutSnapshot> {
        self.cuts
            .iter()
            .find(|(t, _)| *t == token)
            .map(|(_, snap)| snap.clone())
    }

    /// Records this node's side of consistent cut `token`: for every
    /// hosted partition, the issued frontier and the per-issuer-role
    /// applied frontiers *at this instant* — the sealed checkpoint summary
    /// joined with the live log tail, which is exactly the state the
    /// post-hoc oracle would reconstruct up to this point. Wire ids are
    /// monotone per issuer and applied in issue order per issuer, so these
    /// frontiers completely describe the cut for the closure check in
    /// [`prcc_checker::verify_cut_closure`].
    fn record_cut(&mut self, map: &PartitionMap, token: u64) {
        let mut partitions = Vec::with_capacity(self.partitions.len());
        for (index, slot) in self.partitions.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let partition = PartitionId(index as u32);
            let mut issued_high = slot.checkpoint.last_issue;
            let mut applied = slot.checkpoint.applied_high.clone();
            for event in &slot.log {
                match event {
                    TraceEvent::Issue { update, .. } => {
                        issued_high = issued_high.max(*update);
                        // An issue is applied at its issuer the moment it
                        // is issued (step 2 of the prototype).
                        if let Some(high) = applied.get_mut(slot.role.index()) {
                            *high = (*high).max(*update);
                        }
                    }
                    TraceEvent::Apply { update, .. } => {
                        let issuer_node = (*update >> 40) as usize;
                        if let Some(role) = map.role_on(partition, issuer_node) {
                            if let Some(high) = applied.get_mut(role.index()) {
                                *high = (*high).max(*update);
                            }
                        }
                    }
                }
            }
            partitions.push(PartitionCut {
                partition: partition.0,
                role: slot.role.index(),
                issued_high,
                applied,
                pending: slot.replica.pending_len() as u64,
            });
        }
        self.cuts.push_back((
            token,
            CutSnapshot {
                node: self.node as u64,
                token,
                partitions,
            },
        ));
        while self.cuts.len() > CUTS_KEPT {
            self.cuts.pop_front();
        }
    }

    /// Whether a client write to `(partition, register)` can be accepted
    /// here — checked *before* the WAL append so rejected writes never
    /// enter the durable history.
    fn can_write(&self, protocol: &P, partition: PartitionId, register: RegisterId) -> bool {
        self.partitions
            .get(partition.index())
            .and_then(Option::as_ref)
            .is_some_and(|slot| protocol.share_graph().stores(slot.role, register))
    }

    fn next_wire_id(&mut self) -> u64 {
        self.seq += 1;
        ((self.node as u64) << 40) | self.seq
    }

    /// Applies an accepted client write: advances the replica, records the
    /// trace event, and parks a copy in every recipient peer's window.
    /// Returns the `(peer, seq, partition, update)` copies for the live
    /// path to enqueue to sender threads (replay discards them — senders
    /// pull the windows on their first handshake instead).
    ///
    /// `stamp_us` is the wall-clock issue stamp of a *sampled* live write
    /// (0 = unsampled, and always 0 on replay). It rides `issued_at` over
    /// the live wire only: the durable codecs drop it, so it never
    /// perturbs the deterministic replica/trace/window state below.
    ///
    /// Shared by the live write path and WAL replay; determinism of this
    /// function (and `apply_sections`) is what makes snapshot + log replay
    /// reproduce the pre-crash state exactly.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn apply_write(
        &mut self,
        protocol: &P,
        map: &PartitionMap,
        partition: PartitionId,
        register: RegisterId,
        value: u64,
        wire_id: u64,
        stamp_us: u64,
    ) -> Option<Vec<(usize, u64, PartitionId, Update<P::Clock>)>> {
        self.seq = self.seq.max(wire_id & WIRE_SEQ_MASK);
        let node = self.node;
        let slot = self
            .partitions
            .get_mut(partition.index())
            .and_then(Option::as_mut)?;
        let clock = slot.replica.write(protocol, register, value).ok()?;
        slot.log.push(TraceEvent::Issue {
            replica: slot.role,
            register,
            update: wire_id,
        });
        slot.issued += 1;
        self.issued += 1;
        let update = Update {
            id: UpdateId(wire_id),
            issuer: slot.role,
            register,
            value,
            clock,
            issued_at: VirtualTime(stamp_us),
            received_at: VirtualTime::ZERO,
        };
        if stamp_us != 0 {
            self.tel.seal_stamps.insert(wire_id, stamp_us);
        }
        let role = slot.role;
        let mut sends = Vec::new();
        let mut pairs = Vec::new();
        for recipient in protocol.recipients(role, register) {
            let peer = map.node_of(partition, recipient);
            if peer == node {
                continue;
            }
            let link = &mut self.links[peer];
            let seq = link.next_seq;
            link.next_seq += 1;
            link.window.push_back((seq, partition, update.clone()));
            // Cap the window: a peer stranded past `window_cap` must not
            // grow this node without bound. Evicted entries cannot be
            // resent — the eviction counter is the loud signal that the
            // peer needs a fresh data dir when it returns.
            while link.window.len() > self.window_cap {
                if let Some((evicted, _, _)) = link.window.pop_front() {
                    link.evicted_high = link.evicted_high.max(evicted);
                }
                self.window_evicted += 1;
            }
            self.max_window = self.max_window.max(link.window.len() as u64);
            self.sent += 1;
            pairs.push((peer, seq));
            sends.push((peer, seq, partition, update.clone()));
        }
        if !pairs.is_empty() {
            // Track until every recipient acks: only then may the issue's
            // trace event be sealed out of the live log.
            let slot = self.partitions[partition.index()]
                .as_mut()
                // lint: allow(unwrap) hosting checked at the top of issue()
                .expect("slot checked above");
            slot.unacked.push_back((wire_id, pairs));
        }
        Some(sends)
    }

    /// Applies one peer flush frame's sections: dedups against the link's
    /// receive watermark, feeds the replicas, and records apply events.
    /// Shared by the live path and WAL replay.
    ///
    /// The watermark's contiguous high-water is the acknowledgement line:
    /// acknowledging sequence `s` promises every sequence `<= s` is
    /// durable, so a gap — which can only mean an earlier frame was
    /// dropped (e.g. its WAL append failed) — holds the line (out-of-order
    /// arrivals wait in the watermark's residue) rather than being skipped
    /// over, or the sender would prune updates this node never kept.
    ///
    /// The same watermark is the duplicate filter: resend overlap after a
    /// reconnect is dropped *here*, at the link, in O(reordering window)
    /// memory — the per-replica id set that used to absorb it grew with
    /// history. Unsequenced updates (`seq == 0`, legacy v2 test traffic)
    /// bypass the filter and must be exactly-once.
    fn apply_sections(&mut self, protocol: &P, peer: usize, sections: FlushSections<P::Clock>) {
        let node = self.node;
        for (partition, updates) in sections {
            let Some(slot) = self
                .partitions
                .get_mut(partition.index())
                .and_then(Option::as_mut)
            else {
                // Misrouted section: the reader already validated the
                // partition range, so this is a hosting mismatch.
                self.dropped_misrouted += updates.len() as u64;
                eprintln!(
                    "prcc-service[{node}]: dropped {} updates for unhosted {partition}",
                    updates.len()
                );
                continue;
            };
            // Stage stamps: at most one clock read for the receive sweep
            // and one for the apply sweep, taken lazily only when the
            // frame actually carries sampled updates (replayed frames
            // never do — the durable codec dropped their stamps).
            let mut recv_now = 0u64;
            for (seq, update) in updates {
                self.received += 1;
                if seq > 0 && !self.links[peer].recv.observe(seq) {
                    self.duplicates_dropped += 1;
                    continue;
                }
                let stamp = update.issued_at.0;
                if stamp != 0 {
                    if recv_now == 0 {
                        recv_now = wall_us();
                    }
                    self.tel.wire_us.record(recv_now.saturating_sub(stamp));
                    self.tel.stall_stamps.insert(update.id.0, recv_now);
                }
                // The replica's own `received_at` stays at virtual zero:
                // pending-buffer state is snapshotted, and real time in it
                // would break byte-identical recovery. Stall accounting
                // lives in the side-table above instead.
                slot.replica.receive(update, VirtualTime::ZERO);
            }
            let mut apply_now = 0u64;
            for done in slot.replica.drain(protocol) {
                if let Some(recv_us) = self.tel.stall_stamps.remove(&done.id.0) {
                    if apply_now == 0 {
                        apply_now = wall_us();
                    }
                    self.tel
                        .pending_stall_us
                        .record(apply_now.saturating_sub(recv_us));
                    self.tel
                        .visibility_us
                        .record(apply_now.saturating_sub(done.issued_at.0));
                }
                if protocol.stores_value(slot.role, done.register) {
                    slot.log.push(TraceEvent::Apply {
                        replica: slot.role,
                        update: done.id.0,
                    });
                }
            }
        }
    }

    /// Prunes a link's window: the peer has acknowledged everything up to
    /// and including `acked`. Sampled copies leaving the window record the
    /// acknowledgement-stage latency (issue → this prune); entries
    /// restored from a snapshot lost their stamps in the durable codec and
    /// record nothing.
    fn prune(&mut self, peer: usize, acked: u64) {
        if let Some(link) = self.links.get_mut(peer) {
            link.acked_high = link.acked_high.max(acked);
            let mut now = 0u64;
            while link.window.front().is_some_and(|(seq, _, _)| *seq <= acked) {
                // lint: allow(unwrap) loop condition just saw a front entry
                let (_, _, update) = link.window.pop_front().expect("front checked");
                let stamp = update.issued_at.0;
                if stamp != 0 {
                    if now == 0 {
                        now = wall_us();
                    }
                    self.tel.ack_us.record(now.saturating_sub(stamp));
                }
            }
        }
    }

    /// Plans a trace compaction: for every hosted partition whose live log
    /// holds at least `min_events` entries, the longest log prefix whose
    /// issues have all been acknowledged by every remote recipient.
    /// Applies may always seal; an unacknowledged issue blocks itself and
    /// everything after it (the stitched oracle's liveness guarantee rests
    /// on sealed issues being durable at all their recipients).
    ///
    /// Consumes fully-acknowledged entries off the `unacked` queues (an
    /// un-logged mutation: which entries are acked is derived state, only
    /// the resulting seal lengths are logged and replayed).
    fn plan_seal(&mut self, min_events: usize) -> Vec<(PartitionId, u64)> {
        let mut seals = Vec::new();
        for (p, slot) in self.partitions.iter_mut().enumerate() {
            let Some(slot) = slot.as_mut() else { continue };
            if slot.log.len() < min_events.max(1) {
                continue;
            }
            while let Some((_, pairs)) = slot.unacked.front_mut() {
                // A pair stops blocking once acknowledged — or once its
                // window entry was evicted by the cap (it can never be
                // acknowledged then; `window_evicted` records the loss).
                pairs.retain(|&(peer, seq)| {
                    self.links
                        .get(peer)
                        .is_none_or(|link| seq > link.acked_high && seq > link.evicted_high)
                });
                if pairs.is_empty() {
                    slot.unacked.pop_front();
                } else {
                    break;
                }
            }
            // Entries sit in wire-id order, so the first still-unacked
            // issue bounds the sealable prefix.
            let blocked = slot.unacked.front().map(|&(wire, _)| wire);
            let sealable = slot
                .log
                .iter()
                .take_while(|event| match event {
                    TraceEvent::Issue { update, .. } => blocked.is_none_or(|b| *update < b),
                    TraceEvent::Apply { .. } => true,
                })
                .count();
            if sealable > 0 {
                seals.push((PartitionId(p as u32), sealable as u64));
            }
        }
        seals
    }

    /// Applies a (planned or replayed) trace compaction: absorbs each
    /// partition's prefix into its checkpoint summary and discards it.
    /// Shared by the live path and WAL replay of [`WalRecord::Checkpoint`]
    /// records, so recovered checkpoint + suffix pairs match the pre-crash
    /// state exactly.
    fn apply_seal(&mut self, map: &PartitionMap, seals: &[(PartitionId, u64)]) {
        for &(partition, events) in seals {
            let Some(slot) = self
                .partitions
                .get_mut(partition.index())
                .and_then(Option::as_mut)
            else {
                continue;
            };
            let events = (events as usize).min(slot.log.len());
            // Seal-stage latency for sampled own issues leaving the live
            // log. Replay reaches here with an empty side-table, so
            // recorded seals replay silently.
            let mut now = 0u64;
            for event in &slot.log[..events] {
                if let TraceEvent::Issue { update, .. } = event {
                    if let Some(stamp) = self.tel.seal_stamps.remove(update) {
                        if now == 0 {
                            now = wall_us();
                        }
                        self.tel.seal_us.record(now.saturating_sub(stamp));
                    }
                }
            }
            slot.checkpoint.absorb(&slot.log[..events], |w| {
                map.role_on(partition, (w >> 40) as usize)
            });
            slot.log.drain(..events);
            // Drop queue entries the seal covered (replay reaches here
            // with post-snapshot ack state, where they may still linger).
            while slot
                .unacked
                .front()
                .is_some_and(|&(wire, _)| wire <= slot.checkpoint.last_issue)
            {
                slot.unacked.pop_front();
            }
        }
    }

    /// Handshake resume: prune to the peer's acknowledged offset and hand
    /// back the remaining window for retransmission.
    fn resume(&mut self, peer: usize, acked: u64) -> Vec<(u64, PartitionId, Update<P::Clock>)> {
        self.prune(peer, acked);
        self.links
            .get(peer)
            .map(|link| link.window.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn status(&self) -> NodeStatus {
        let per_partition = self
            .partitions
            .iter()
            .map(|slot| match slot {
                Some(slot) => PartitionCounters {
                    issued: slot.issued,
                    applies: slot.replica.applies(),
                    pending: slot.replica.pending_len() as u64,
                },
                None => PartitionCounters::default(),
            })
            .collect();
        NodeStatus {
            node: self.node as u64,
            issued: self.issued,
            messages_sent: self.sent,
            messages_received: self.received,
            applies: self
                .partitions
                .iter()
                .flatten()
                .map(|s| s.replica.applies())
                .sum(),
            pending: self
                .partitions
                .iter()
                .flatten()
                .map(|s| s.replica.pending_len() as u64)
                .sum(),
            duplicates_dropped: self.duplicates_dropped,
            dropped_misrouted: self.dropped_misrouted,
            trace_events: self
                .partitions
                .iter()
                .flatten()
                .map(|s| s.log.len() as u64)
                .sum(),
            sealed_events: self
                .partitions
                .iter()
                .flatten()
                .map(|s| s.checkpoint.events)
                .sum(),
            max_window: self.max_window,
            window_evicted: self.window_evicted,
            // Socket byte/frame counters are filled in by the handler, WAL
            // counters by the core loop.
            bytes_out: 0,
            bytes_in: 0,
            batches_sent: 0,
            frames_sent: 0,
            flushes: 0,
            resent: 0,
            wal_appends: 0,
            snapshots_written: 0,
            wal_bytes: 0,
            snapshot_bytes: 0,
            first_snapshot_bytes: 0,
            per_partition,
        }
    }

    /// Mirrors the core's logical state (and the durability sidecar's
    /// counters) into the registry's gauges, so a metrics snapshot taken
    /// right after reflects this instant. Cold path: runs only per scrape.
    fn mirror_gauges(&self, durable: &Option<Durable>) {
        let r = &self.tel.registry;
        r.gauge("core_issued").set(self.issued);
        r.gauge("core_applies").set(
            self.partitions
                .iter()
                .flatten()
                .map(|s| s.replica.applies())
                .sum(),
        );
        r.gauge("core_pending").set(
            self.partitions
                .iter()
                .flatten()
                .map(|s| s.replica.pending_len() as u64)
                .sum(),
        );
        r.gauge("core_duplicates_dropped")
            .set(self.duplicates_dropped);
        r.gauge("core_dropped_misrouted")
            .set(self.dropped_misrouted);
        r.gauge("core_max_window").set(self.max_window);
        r.gauge("core_window_evicted").set(self.window_evicted);
        r.gauge("trace_events_live").set(
            self.partitions
                .iter()
                .flatten()
                .map(|s| s.log.len() as u64)
                .sum(),
        );
        r.gauge("trace_events_sealed").set(
            self.partitions
                .iter()
                .flatten()
                .map(|s| s.checkpoint.events)
                .sum(),
        );
        if let Some(d) = durable {
            r.gauge("wal_appends").set(d.wal_appends);
            r.gauge("wal_writes").set(d.wal_writes);
            r.gauge("wal_bytes").set(d.wal.bytes());
            r.gauge("snapshots_written").set(d.snapshots_written);
            r.gauge("snapshot_bytes").set(d.snapshot_bytes);
        }
    }

    fn traces(&self) -> Vec<(TraceCheckpoint, Vec<TraceEvent>)> {
        self.partitions
            .iter()
            .map(|slot| match slot.as_ref() {
                Some(s) => (s.checkpoint.clone(), s.log.clone()),
                // Unhosted: an empty placeholder (the collector regroups
                // by hosted role and never reads these).
                None => (TraceCheckpoint::new(0, 0), Vec::new()),
            })
            .collect()
    }

    /// Folds the core into a snapshot covering WAL records `..= wal_high`.
    fn to_snapshot(&self, wal_high: u64) -> NodeSnapshot<P::Clock>
    where
        P::Clock: WireClock,
    {
        NodeSnapshot {
            wal_high,
            seq: self.seq,
            issued: self.issued,
            sent: self.sent,
            received: self.received,
            dropped_misrouted: self.dropped_misrouted,
            duplicates_dropped: self.duplicates_dropped,
            partitions: self
                .partitions
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|slot| PartitionSnapshot {
                        state: slot.replica.export_state(),
                        issued: slot.issued,
                        checkpoint: slot.checkpoint.clone(),
                        log: slot.log.clone(),
                    })
                })
                .collect(),
            peers: self
                .links
                .iter()
                .map(|link| PeerSnapshot {
                    next_seq: link.next_seq,
                    acked_high: link.acked_high,
                    recv_high: link.recv.high(),
                    recv_residue: link.recv.residue().collect(),
                    window: link.window.iter().cloned().collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a core from a snapshot, validating it against the current
    /// deployment configuration.
    fn from_snapshot(
        protocol: &P,
        map: &PartitionMap,
        node: usize,
        window_cap: usize,
        snap: NodeSnapshot<P::Clock>,
        tel: CoreTelemetry,
    ) -> io::Result<Self> {
        let bad =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {what}"));
        if snap.partitions.len() != map.num_partitions() as usize {
            return Err(bad("partition count differs from the map"));
        }
        if snap.peers.len() != map.num_nodes() {
            return Err(bad("peer count differs from the map"));
        }
        let mut partitions = Vec::with_capacity(snap.partitions.len());
        for (p, slot) in snap.partitions.into_iter().enumerate() {
            let expected = map.role_on(PartitionId(p as u32), node);
            match (slot, expected) {
                (None, None) => partitions.push(None),
                (Some(part), Some(role)) => {
                    if part.state.id != role {
                        return Err(bad("partition role differs from the map"));
                    }
                    let replica = Replica::from_state(protocol, part.state)
                        .map_err(|e| bad(&format!("replica state: {e}")))?;
                    partitions.push(Some(PartitionSlot {
                        role,
                        replica,
                        checkpoint: part.checkpoint,
                        log: part.log,
                        issued: part.issued,
                        unacked: VecDeque::new(),
                    }));
                }
                _ => return Err(bad("hosted partitions differ from the map")),
            }
        }
        let mut core = Core {
            node,
            partitions,
            links: snap
                .peers
                .into_iter()
                .map(|peer| PeerLink {
                    next_seq: peer.next_seq,
                    window: peer.window.into(),
                    acked_high: peer.acked_high,
                    evicted_high: 0,
                    recv: SeqWatermark::from_parts(peer.recv_high, peer.recv_residue),
                    frames_since_ack: 0,
                })
                .collect(),
            seq: snap.seq,
            issued: snap.issued,
            sent: snap.sent,
            received: snap.received,
            dropped_misrouted: snap.dropped_misrouted,
            duplicates_dropped: snap.duplicates_dropped,
            window_cap: window_cap.max(1),
            max_window: 0,
            window_evicted: 0,
            tel,
            cuts: VecDeque::new(),
        };
        core.rebuild_unacked();
        Ok(core)
    }

    /// Rebuilds the per-partition unacknowledged-issue queues from the
    /// resend windows (the windows are the source of truth: an issue is
    /// fully acknowledged exactly when no window still parks a copy).
    /// Only this node's own issues gate trace sealing, so forwarded
    /// partitions' entries resolve through the wire id's node bits.
    fn rebuild_unacked(&mut self) {
        let own = (self.node as u64) << 40;
        let mut by_wire: HashMap<u64, (PartitionId, Vec<(usize, u64)>)> = HashMap::new();
        for (peer, link) in self.links.iter().enumerate() {
            for &(seq, partition, ref update) in &link.window {
                if update.id.0 & !WIRE_SEQ_MASK != own {
                    continue; // Not issued here (cannot happen today).
                }
                by_wire
                    .entry(update.id.0)
                    .or_insert_with(|| (partition, Vec::new()))
                    .1
                    .push((peer, seq));
            }
        }
        let mut wires: Vec<u64> = by_wire.keys().copied().collect();
        wires.sort_unstable();
        for slot in self.partitions.iter_mut().flatten() {
            slot.unacked.clear();
        }
        for wire in wires {
            // lint: allow(unwrap) key came from by_wire's own key set
            let (partition, pairs) = by_wire.remove(&wire).expect("collected above");
            if let Some(slot) = self
                .partitions
                .get_mut(partition.index())
                .and_then(Option::as_mut)
            {
                slot.unacked.push_back((wire, pairs));
            }
        }
    }
}

/// The durability sidecar of a core: the open WAL, record indexing, and
/// snapshot policy.
struct Durable {
    wal: Wal,
    snapshot_path: PathBuf,
    /// Index the next appended record gets (monotonic across truncations).
    next_index: u64,
    snapshot_every: u64,
    records_since_snapshot: u64,
    /// Sync snapshots through to disk before renaming (paired with the
    /// WAL's group commit).
    fsync: bool,
    /// Logical records appended (one per staged record).
    wal_appends: u64,
    /// Physical WAL writes issued (one per committed batch) — group commit
    /// makes this measurably smaller than `wal_appends` under load.
    wal_writes: u64,
    snapshots_written: u64,
    /// Payload size of the most recent snapshot, and of the first one this
    /// process wrote — the flat-snapshot regression gate's numerator and
    /// baseline.
    snapshot_bytes: u64,
    first_snapshot_bytes: u64,
    /// Encoded-but-unwritten records of the current sweep: contiguous
    /// payload bytes plus `(start, len)` spans. [`Durable::commit`] hands
    /// all spans to the WAL as one group-committed batch.
    staged_buf: Vec<u8>,
    staged_spans: Vec<(usize, usize)>,
}

impl Durable {
    /// Stages one encoded payload; infallible (I/O happens at commit).
    /// Returns the record's WAL index.
    fn stage_payload(&mut self, encode: impl FnOnce(u64, &mut Vec<u8>)) -> u64 {
        let index = self.next_index;
        let start = self.staged_buf.len();
        encode(index, &mut self.staged_buf);
        self.staged_spans
            .push((start, self.staged_buf.len() - start));
        self.next_index += 1;
        self.records_since_snapshot += 1;
        self.wal_appends += 1;
        index
    }

    fn stage<C: WireClock>(&mut self, record: &WalRecord<C>) -> u64 {
        self.stage_payload(|index, out| prcc_storage::encode_record_into(index, record, out))
    }

    fn stage_receipt<C: WireClock>(&mut self, peer: u64, sections: &FlushSections<C>) -> u64 {
        self.stage_payload(|index, out| {
            prcc_storage::encode_receipt_record_into(index, peer, sections, out)
        })
    }

    /// Whether any records are staged but not yet committed.
    fn staged(&self) -> bool {
        !self.staged_spans.is_empty()
    }

    /// Writes every staged record as one framed batch: one buffer, one
    /// `write`, one group-commit tick — the sweep-scoped group commit.
    fn commit(&mut self) -> io::Result<()> {
        if self.staged_spans.is_empty() {
            return Ok(());
        }
        let payloads: Vec<&[u8]> = self
            .staged_spans
            .iter()
            .map(|&(start, len)| &self.staged_buf[start..start + len])
            .collect();
        let result = self.wal.append_batch(&payloads);
        drop(payloads);
        self.staged_buf.clear();
        self.staged_spans.clear();
        result?;
        self.wal_writes += 1;
        Ok(())
    }
}

/// Syncs the WAL before an acknowledgement leaves the node, when group
/// commit is enabled (without it, acks only promise process-crash
/// durability, which the flushed page cache already provides). Returns
/// false on a sync failure — the ack must not be sent over records the
/// disk may not hold, and a failing disk is fail-stop like every other
/// WAL error.
fn sync_before_ack(durable: &mut Option<Durable>, node: usize) -> bool {
    let Some(d) = durable.as_mut().filter(|d| d.fsync) else {
        return true;
    };
    if let Err(e) = d.wal.sync() {
        eprintln!("prcc-service[{node}]: WAL sync before ack failed, stopping: {e}");
        return false;
    }
    true
}

/// Seals every fully-acknowledged trace prefix of at least `min_events`
/// live events, staging the decision as a [`WalRecord::Checkpoint`]
/// through the same stage-before-apply path as the state-mutating inputs
/// (so replay reproduces the identical seal points). Staging is
/// infallible — the caller's sweep-end [`Durable::commit`] carries the
/// fail-stop.
fn compact_traces<P>(
    core: &mut Core<P>,
    durable: &mut Option<Durable>,
    map: &PartitionMap,
    min_events: usize,
) where
    P: Protocol,
    P::Clock: WireClock,
{
    let seals = core.plan_seal(min_events);
    if seals.is_empty() {
        return;
    }
    if let Some(d) = durable.as_mut() {
        let record = WalRecord::<P::Clock>::Checkpoint {
            seals: seals.clone(),
        };
        let index = d.stage(&record);
        core.tel.flight.record("wal_append", &[("index", index)]);
    }
    let sealed: u64 = seals.iter().map(|&(_, n)| n).sum();
    core.apply_seal(map, &seals);
    core.tel.flight.record(
        "seal",
        &[("partitions", seals.len() as u64), ("events", sealed)],
    );
}

/// Writes a snapshot of the (already compacted) core and truncates the
/// WAL. The caller runs [`compact_traces`] first — its WAL-append failure
/// is fail-stop, while a failure *here* (snapshot write, log reset) is
/// recoverable: the WAL still holds everything.
fn snapshot_state<P>(core: &Core<P>, d: &mut Durable) -> io::Result<u64>
where
    P: Protocol,
    P::Clock: WireClock,
{
    let snap = core.to_snapshot(d.next_index - 1);
    let payload = encode_snapshot(&snap);
    write_snapshot(&d.snapshot_path, &payload, d.fsync)?;
    d.wal.reset()?;
    d.records_since_snapshot = 0;
    d.snapshots_written += 1;
    d.snapshot_bytes = payload.len() as u64;
    if d.first_snapshot_bytes == 0 {
        d.first_snapshot_bytes = payload.len() as u64;
    }
    // Payload size for the caller's flight-recorder event (this function
    // only borrows the core immutably).
    Ok(payload.len() as u64)
}

/// Builds the post-snapshot [`WalRecord::Digest`]: one `(partition,
/// sealed events, chained digest)` triple per hosted partition, ascending
/// by partition index. Staged right after a snapshot truncates the log,
/// it is the first record replay sees, and recovery verifies it against
/// the checkpoints decoded from the snapshot file itself.
fn digest_record<P>(core: &Core<P>) -> WalRecord<P::Clock>
where
    P: Protocol,
    P::Clock: WireClock,
{
    WalRecord::Digest {
        partitions: core
            .partitions
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref().map(|s| {
                    (
                        PartitionId(i as u32),
                        s.checkpoint.events,
                        s.checkpoint.digest,
                    )
                })
            })
            .collect(),
    }
}

/// Snapshots when due (every `snapshot_every` records): compacts trace
/// logs through the WAL'd checkpoint path, commits everything staged (the
/// snapshot folds staged effects, so they must be on disk before the log
/// truncates), then folds the core into a snapshot, truncates the log,
/// and stages the cross-restart [`WalRecord::Digest`] guard.
///
/// Returns false when the node must fail-stop: a failed *commit* may have
/// torn the log tail, and any later append would bury the tear mid-file
/// (the same invariant as every other append site). A failed snapshot
/// *write* is merely logged — the WAL alone still recovers everything.
fn maybe_snapshot<P>(core: &mut Core<P>, durable: &mut Option<Durable>, map: &PartitionMap) -> bool
where
    P: Protocol,
    P::Clock: WireClock,
{
    let due = durable
        .as_ref()
        .is_some_and(|d| d.snapshot_every > 0 && d.records_since_snapshot >= d.snapshot_every);
    if !due {
        return true;
    }
    compact_traces(core, durable, map, 1);
    // lint: allow(unwrap) `due` above required durable to be Some
    let d = durable.as_mut().expect("due implies a data dir");
    if let Err(e) = d.commit() {
        eprintln!(
            "prcc-service[{}]: WAL append failed, stopping (restart recovers \
             the log): {e}",
            core.node
        );
        return false;
    }
    match snapshot_state(core, d) {
        Ok(bytes) => {
            let record = digest_record(core);
            d.stage(&record);
            let wal_high = d.next_index - 1;
            core.tel
                .flight
                .record("snapshot", &[("bytes", bytes), ("wal_high", wal_high)]);
        }
        Err(e) => eprintln!("prcc-service[{}]: snapshot failed: {e}", core.node),
    }
    true
}

/// Boots a durable core: loads the snapshot (if any — v2, or a legacy v1
/// file converted on read), replays the WAL suffix past it through the
/// same transition functions the live loop uses, and returns the
/// recovered core plus the open log.
///
/// Replay never reconstructs sealed trace prefixes: the snapshot carries
/// their [`TraceCheckpoint`] summaries, records at or below the
/// snapshot's fold point are skipped outright, and
/// [`WalRecord::Checkpoint`] records in the suffix re-apply the exact
/// recorded seal points — so a recovered node's checkpoint + live-suffix
/// pair matches its pre-crash state byte for byte.
///
/// A [`WalRecord::Digest`] record (staged right after every snapshot)
/// carries the per-partition checkpoint digests the pre-crash node
/// computed; replay re-checks them against the checkpoints decoded from
/// the snapshot file and refuses to boot on a mismatch — a tampered or
/// bit-rotted snapshot must not silently seed the audit trail.
fn recover<P>(
    protocol: &P,
    map: &PartitionMap,
    node: usize,
    dir: &std::path::Path,
    cfg: &ServiceConfig,
    tel: CoreTelemetry,
    pool: &BufPool,
) -> io::Result<(Core<P>, Durable)>
where
    P: Protocol,
    P::Clock: WireClock,
{
    let node_dir = dir.join(format!("node-{node}"));
    std::fs::create_dir_all(&node_dir)?;
    let snapshot_path = node_dir.join("snapshot.bin");
    let wal_path = node_dir.join("wal.bin");
    let roles = map.graph().num_replicas();
    let (mut core, mut high) = match read_snapshot(&snapshot_path)? {
        Some((version, payload)) => {
            let snap = decode_snapshot(version, &payload, roles, |k| {
                (k.index() < roles).then(|| protocol.new_clock(k))
            })?;
            let high = snap.wal_high;
            (
                Core::from_snapshot(protocol, map, node, cfg.window_cap, snap, tel)?,
                high,
            )
        }
        None => (Core::new(protocol, map, node, cfg.window_cap, tel), 0),
    };
    // The whole-file image lives in a pooled lease: replay decodes records
    // as borrowed spans of it instead of one `Vec` per record, and the
    // buffer recycles into the node's frame pool when replay finishes.
    let mut image = pool.lease(0);
    let (mut wal, scan) = Wal::open_with_image(&wal_path, &mut image)?;
    wal.set_fsync_every(cfg.fsync_every);
    let torn_bytes = image.len() - scan.valid_len;
    if torn_bytes > 0 {
        eprintln!("prcc-service[{node}]: WAL recovery dropped a {torn_bytes}-byte torn tail");
    }
    let corrupt = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    for &(start, end) in &scan.spans {
        let payload = &image[start..end];
        let (index, record) = decode_record(payload, |k| {
            (k.index() < roles).then(|| protocol.new_clock(k))
        })?;
        if index <= high {
            // Already folded into the snapshot (a crash landed between
            // snapshot write and log truncation), or a duplicate.
            continue;
        }
        if index != high + 1 {
            // Legitimate operation can never produce a gap: appends are
            // consecutive and truncation only ever removes a snapshotted
            // prefix. A gap means the snapshot and log do not belong
            // together (stale snapshot restored from a backup, mixed-up
            // data dirs) — booting would silently drop acknowledged
            // records, so refuse instead.
            return Err(corrupt(format!(
                "WAL record {index} follows {high}: snapshot and log disagree"
            )));
        }
        high = index;
        match record {
            WalRecord::Issue {
                partition,
                register,
                value,
                wire_id,
            } => {
                if !core.can_write(protocol, partition, register) {
                    return Err(corrupt(format!(
                        "WAL record {index}: issue for unhosted {partition}/{register}"
                    )));
                }
                core.apply_write(protocol, map, partition, register, value, wire_id, 0)
                    .ok_or_else(|| {
                        corrupt(format!("WAL record {index}: issue failed to replay"))
                    })?;
            }
            WalRecord::Receipt { peer, sections } => {
                let peer = usize::try_from(peer)
                    .ok()
                    .filter(|&p| p < map.num_nodes())
                    .ok_or_else(|| corrupt(format!("WAL record {index}: peer out of range")))?;
                core.apply_sections(protocol, peer, sections);
            }
            WalRecord::Checkpoint { seals } => {
                core.apply_seal(map, &seals);
            }
            WalRecord::Digest { partitions } => {
                for (partition, events, digest) in partitions {
                    let actual = core
                        .partitions
                        .get(partition.index())
                        .and_then(Option::as_ref)
                        .map(|s| (s.checkpoint.events, s.checkpoint.digest));
                    if actual != Some((events, digest)) {
                        return Err(corrupt(format!(
                            "WAL record {index}: checkpoint digest mismatch for \
                             {partition} — the log expects {events} sealed events \
                             with digest {digest:#x}, the snapshot decodes to \
                             {actual:?}; the snapshot file is tampered or \
                             bit-rotted, refusing to boot"
                        )));
                    }
                }
            }
        }
    }
    Ok((
        core,
        Durable {
            wal,
            snapshot_path,
            next_index: high + 1,
            snapshot_every: cfg.snapshot_every,
            records_since_snapshot: 0,
            fsync: cfg.fsync_every > 0,
            wal_appends: 0,
            wal_writes: 0,
            snapshots_written: 0,
            snapshot_bytes: 0,
            first_snapshot_bytes: 0,
            staged_buf: Vec::new(),
            staged_spans: Vec::new(),
        },
    ))
}

/// Spawns a node: core thread, peer senders, peer/client listeners. With
/// `cfg.data_dir` set, the node first recovers its state from
/// `<data_dir>/node-<i>/` (snapshot + WAL replay) and appends every
/// subsequent state-mutating input before applying it.
///
/// `protocol` must be configured for the partition map's per-partition
/// share graph; each hosted partition gets an independent [`Replica`] over
/// the shared protocol object (clocks are per-replica state, so partitions
/// do not share counters).
///
/// # Errors
///
/// Fails on listener introspection, a protocol/map share-graph mismatch,
/// or an unrecoverable data dir (I/O failure, corrupted snapshot, or a
/// checksum-corrupted WAL record — a torn WAL tail recovers silently);
/// network errors after spawn are handled per-connection (logged to
/// stderr, connection dropped).
pub fn spawn_node<P>(
    protocol: Arc<P>,
    map: PartitionMap,
    seed: NodeSeed,
    cfg: ServiceConfig,
) -> io::Result<NodeHandle>
where
    P: Protocol + 'static,
    P::Clock: WireClock,
{
    let NodeSeed {
        node,
        peer_listener,
        client_listener,
        peer_addrs,
    } = seed;
    if protocol.share_graph() != map.graph() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "protocol share graph differs from the partition map's",
        ));
    }
    let peer_addr = peer_listener.local_addr()?;
    let client_addr = client_listener.local_addr()?;
    let n = map.num_nodes();
    let stop = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(Registry::new());
    let counters = Arc::new(NetMetrics::new(&registry));
    let tel = CoreTelemetry::new(Arc::clone(&registry), &cfg);
    // One buffer pool per node, shared by every reader, sender and client
    // handler thread (and seeded by recovery's WAL image lease).
    let pool = BufPool::new(&registry);

    // Recover durable state before any thread starts: senders must see the
    // rebuilt windows on their first handshake.
    let (core, durable) = match &cfg.data_dir {
        Some(dir) => {
            let (core, mut durable) = recover(&*protocol, &map, node, dir, &cfg, tel, &pool)?;
            durable
                .wal
                .set_fsync_hist(registry.histogram("wal_fsync_us"));
            (core, Some(durable))
        }
        None => (Core::new(&*protocol, &map, node, cfg.window_cap, tel), None),
    };

    let (core_tx, core_rx) = mpsc::channel::<CoreMsg<P::Clock>>();

    // Per-peer outgoing channels feeding the sender threads.
    let mut peer_txs: Vec<Option<PeerTx<P::Clock>>> = Vec::with_capacity(n);
    for (k, &addr) in peer_addrs.iter().enumerate().take(n) {
        if k == node {
            peer_txs.push(None);
            continue;
        }
        let (tx, rx) = mpsc::channel::<SenderCmd<P::Clock>>();
        let relink_tx = tx.clone();
        peer_txs.push(Some(tx));
        let hello = PeerHello {
            node,
            map: map.clone(),
        };
        let cfg = cfg.clone();
        let counters = Arc::clone(&counters);
        let core_tx = core_tx.clone();
        let stop = Arc::clone(&stop);
        let pool = pool.clone();
        thread::spawn(move || {
            peer_sender(
                k, addr, hello, &rx, &relink_tx, &cfg, &counters, &core_tx, &stop, &pool,
            );
        });
    }

    // Registry of live inbound peer connections, shared by the peer
    // listener (redial eviction) and the crash switch (severing).
    let connections: PeerConnections =
        Arc::new(Mutex::named(HashMap::new(), "service.peer_connections"));

    // Peer listener: one reader thread per inbound peer connection.
    {
        let core_tx = core_tx.clone();
        let protocol = Arc::clone(&protocol);
        let map = map.clone();
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let connections = Arc::clone(&connections);
        let pool = pool.clone();
        thread::spawn(move || {
            for conn in peer_listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(stream) => stream,
                    Err(e) => {
                        // Transient accept failures (ECONNABORTED under
                        // redial churn, EMFILE spikes) must not kill the
                        // listener for good — forever-redialing senders
                        // would mask the outage silently.
                        eprintln!("prcc-service[{node}]: peer accept: {e}");
                        thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                };
                let core_tx = core_tx.clone();
                let protocol = Arc::clone(&protocol);
                let map = map.clone();
                let counters = Arc::clone(&counters);
                let connections = Arc::clone(&connections);
                let stop = Arc::clone(&stop);
                let pool = pool.clone();
                thread::spawn(move || {
                    if let Err(e) = peer_reader(
                        stream,
                        &protocol,
                        &map,
                        node,
                        &core_tx,
                        &counters,
                        &connections,
                        &stop,
                        &pool,
                    ) {
                        eprintln!("prcc-service[{node}]: peer reader: {e}");
                    }
                });
            }
        });
    }

    // Client listener: one handler thread per client connection.
    {
        let core_tx = core_tx.clone();
        let map = map.clone();
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let addrs = (peer_addr, client_addr);
        let pool = pool.clone();
        thread::spawn(move || {
            for conn in client_listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(stream) => stream,
                    Err(e) => {
                        eprintln!("prcc-service[{node}]: client accept: {e}");
                        thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                };
                let core_tx = core_tx.clone();
                let map = map.clone();
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                let pool = pool.clone();
                thread::spawn(move || {
                    let _ = client_handler(stream, &map, &core_tx, &stop, &counters, addrs, &pool);
                });
            }
        });
    }

    // The crash switch: stop everything without a graceful drain.
    let kill: Arc<dyn Fn() + Send + Sync> = {
        let stop = Arc::clone(&stop);
        let core_tx = core_tx.clone();
        let connections = Arc::clone(&connections);
        Arc::new(move || {
            stop.store(true, Ordering::SeqCst);
            let _ = core_tx.send(CoreMsg::Crash);
            let severed: Vec<TcpStream> = {
                let mut live = connections.lock();
                live.drain().map(|(_, (_, stream))| stream).collect()
            };
            for stream in severed {
                let _ = stream.shutdown(Shutdown::Both);
            }
            // Unblock the accept loops so their threads observe `stop`.
            let _ = TcpStream::connect(peer_addr);
            let _ = TcpStream::connect(client_addr);
        })
    };

    // The core event loop. It holds the crash switch so a fail-stop (WAL
    // append failure) tears the whole node down — listeners, registered
    // connections — instead of leaving a half-alive shell whose bound
    // ports and accept loops would mask the outage.
    let ack_every = cfg.ack_every;
    let trace_compact_at = cfg.trace_compact_at;
    let core_kill = Arc::clone(&kill);
    let core_thread = thread::Builder::new()
        .name(format!("prcc-core-{node}"))
        .spawn(move || {
            core_loop(
                &protocol,
                &map,
                node,
                &core_rx,
                &peer_txs,
                core,
                durable,
                ack_every,
                trace_compact_at,
                &core_kill,
            )
        })?;

    Ok(NodeHandle {
        node,
        peer_addr,
        client_addr,
        core: Some(core_thread),
        kill,
    })
}

/// One postponed side effect of a core sweep. Nothing a processed message
/// produced may escape the node — no client reply, no peer update, no
/// acknowledgement — until the sweep's staged WAL batch is committed:
/// releasing any of them earlier would let an effect outlive a crash that
/// loses its record. Emitted in arrival order at sweep end.
enum Deferred<C> {
    WriteReply(mpsc::Sender<bool>, bool),
    ReadReply(mpsc::Sender<(bool, Option<u64>)>, (bool, Option<u64>)),
    /// An outbound update headed for `peer`'s sender thread.
    Send(usize, u64, PartitionId, Update<C>),
    /// A streamed link acknowledgement — requires a WAL sync first.
    Ack(mpsc::Sender<u64>, u64),
    /// A handshake acknowledgement — same sync-before-promise rule.
    JoinReply(mpsc::Sender<u64>, u64),
    ResumeReply(
        mpsc::Sender<Vec<(u64, PartitionId, Update<C>)>>,
        Vec<(u64, PartitionId, Update<C>)>,
    ),
    Status(mpsc::Sender<NodeStatus>, Box<NodeStatus>),
    Trace(
        mpsc::Sender<Vec<(TraceCheckpoint, Vec<TraceEvent>)>>,
        Vec<(TraceCheckpoint, Vec<TraceEvent>)>,
    ),
    Metrics(mpsc::Sender<MetricsSnapshot>, MetricsSnapshot),
    /// A consistent-cut reply to a client (the snapshot is live-only
    /// audit state, but the reply still waits for the sweep's commit like
    /// every other effect — simpler than a second release path).
    CutReply(mpsc::Sender<Option<CutSnapshot>>, Option<CutSnapshot>),
    /// A cut marker to broadcast to every peer sender. Deferred-in-order
    /// like the sends around it: an update processed before the marker in
    /// this sweep reaches the sender channel first, one processed after
    /// it reaches the channel after — channel order is exactly marker
    /// order on the wire.
    Marker(u64),
}

/// The node's event loop, organized as *sweeps*: one blocking receive
/// opens a sweep, an opportunistic drain extends it (up to [`SWEEP_MAX`]
/// messages), and every WAL record the sweep's messages stage is
/// committed as one group-committed batch at sweep end — one buffer, one
/// `write`, one fsync tick — before any of the sweep's deferred effects
/// (replies, acks, peer sends) are released. Under load this collapses
/// the historical ~1.55 WAL writes per operation into a fraction of a
/// write per operation without weakening durability: an effect escapes
/// only after its record is on disk, exactly as in the
/// one-write-per-record regime.
#[allow(clippy::too_many_arguments)]
fn core_loop<P>(
    protocol: &Arc<P>,
    map: &PartitionMap,
    node: usize,
    core_rx: &mpsc::Receiver<CoreMsg<P::Clock>>,
    peer_txs: &[Option<PeerTx<P::Clock>>],
    mut core: Core<P>,
    mut durable: Option<Durable>,
    ack_every: u64,
    trace_compact_at: usize,
    kill: &Arc<dyn Fn() + Send + Sync>,
) where
    P: Protocol,
    P::Clock: WireClock,
{
    // Whether to dump the flight recorder on exit: set by every fail-stop
    // and crash-injection path, left unset by graceful shutdown.
    let mut dump = false;
    // Sweep-lived scratch, reused across sweeps.
    let mut deferred: Vec<Deferred<P::Clock>> = Vec::new();
    let mut wal_stamps: Vec<u64> = Vec::new();
    // lint: hot-path
    'run: while let Ok(first) = core_rx.recv() {
        let mut swept = 0usize;
        let mut shutdown = false;
        let mut pending = Some(first);
        while let Some(msg) = pending.take() {
            swept += 1;
            match msg {
                CoreMsg::Write {
                    partition,
                    register,
                    value,
                    reply,
                } => {
                    if !core.can_write(&**protocol, partition, register) {
                        deferred.push(Deferred::WriteReply(reply, false));
                    } else {
                        let wire_id = core.next_wire_id();
                        // Origin sampling decision: a non-zero stamp makes this
                        // write a traced one, at every stage and node it touches.
                        let stamp_us = if core.tel.sampler.hit() { wall_us() } else { 0 };
                        if let Some(d) = durable.as_mut() {
                            let record = WalRecord::<P::Clock>::Issue {
                                partition,
                                register,
                                value,
                                wire_id,
                            };
                            // Stage-before-apply: the record joins the sweep's
                            // batch; the client's ack and the peer sends below
                            // stay deferred until that batch is committed.
                            let index = d.stage(&record);
                            core.tel
                                .flight
                                .record("wal_append", &[("index", index), ("wire_id", wire_id)]);
                            if stamp_us != 0 {
                                wal_stamps.push(stamp_us);
                            }
                        }
                        let sends = core
                            .apply_write(
                                &**protocol,
                                map,
                                partition,
                                register,
                                value,
                                wire_id,
                                stamp_us,
                            )
                            // lint: allow(unwrap) can_write gated this branch
                            .expect("write validated before stage");
                        core.tel.flight.record(
                            "write",
                            &[
                                ("wire_id", wire_id),
                                ("partition", u64::from(partition.0)),
                                ("register", u64::from(register.0)),
                            ],
                        );
                        for (peer, seq, p, update) in sends {
                            deferred.push(Deferred::Send(peer, seq, p, update));
                        }
                        deferred.push(Deferred::WriteReply(reply, true));
                        if trace_compact_at > 0 {
                            compact_traces(&mut core, &mut durable, map, trace_compact_at);
                        }
                        if !maybe_snapshot(&mut core, &mut durable, map) {
                            core.tel.flight.record("fail_stop_checkpoint", &[]);
                            dump = true;
                            deferred.clear();
                            kill();
                            break 'run;
                        }
                    }
                }
                CoreMsg::Read {
                    partition,
                    register,
                    reply,
                } => {
                    let answer = match core
                        .partitions
                        .get(partition.index())
                        .and_then(Option::as_ref)
                        .map(|slot| slot.replica.read(&**protocol, register))
                    {
                        Some(Ok(value)) => (true, value),
                        Some(Err(_)) | None => (false, None),
                    };
                    // Deferred like every reply: a read may observe a write
                    // staged earlier in this sweep, and that observation must
                    // not escape before the write's record is committed.
                    deferred.push(Deferred::ReadReply(reply, answer));
                }
                CoreMsg::Updates {
                    peer,
                    sections,
                    ack,
                } => {
                    if peer < core.links.len() {
                        let n_updates: u64 = sections.iter().map(|(_, us)| us.len() as u64).sum();
                        if let Some(d) = durable.as_mut() {
                            // Frame-level sampling for the receipt append: the
                            // issue-keyed stamps measure origin-side appends,
                            // this measures the recipient's.
                            let t0 = if core.tel.sampler.hit() { wall_us() } else { 0 };
                            // Stage-before-apply: the frame joins the sweep's
                            // batch, and the acknowledgement below stays
                            // deferred (and synced) behind the commit — a
                            // commit failure drops the frame *unacknowledged*
                            // and fail-stops the node, so the peer's window
                            // retransmits it to the restarted node.
                            let index = d.stage_receipt(peer as u64, &sections);
                            core.tel.flight.record("wal_append", &[("index", index)]);
                            if t0 != 0 {
                                wal_stamps.push(t0);
                            }
                        }
                        core.tel.flight.record(
                            "recv_frame",
                            &[("peer", peer as u64), ("updates", n_updates)],
                        );
                        core.apply_sections(&**protocol, peer, sections);
                        let link = &mut core.links[peer];
                        link.frames_since_ack += 1;
                        if ack_every > 0 && link.frames_since_ack >= ack_every {
                            link.frames_since_ack = 0;
                            // Acknowledge the watermark's contiguous line only:
                            // residue above a gap stays unacknowledged until
                            // the gap fills. An ack makes the peer prune its
                            // resend window, so with group commit the sweep
                            // syncs before releasing it.
                            let acked = link.recv.high();
                            deferred.push(Deferred::Ack(ack, acked));
                        }
                        if trace_compact_at > 0 {
                            compact_traces(&mut core, &mut durable, map, trace_compact_at);
                        }
                        if !maybe_snapshot(&mut core, &mut durable, map) {
                            core.tel.flight.record("fail_stop_checkpoint", &[]);
                            dump = true;
                            deferred.clear();
                            kill();
                            break 'run;
                        }
                    }
                }
                CoreMsg::PeerJoin { peer, reply } => {
                    let acked = core.links.get(peer).map_or(0, |link| link.recv.high());
                    // The hello-ack is an acknowledgement too (the dialer
                    // prunes and resumes past it) — same sync-before-promise
                    // rule as the streamed acks, enforced at sweep end.
                    core.tel
                        .flight
                        .record("peer_join", &[("peer", peer as u64), ("acked", acked)]);
                    deferred.push(Deferred::JoinReply(reply, acked));
                }
                CoreMsg::PeerResume { peer, acked, reply } => {
                    let window = core.resume(peer, acked);
                    core.tel.flight.record(
                        "peer_resume",
                        &[
                            ("peer", peer as u64),
                            ("acked", acked),
                            ("window", window.len() as u64),
                        ],
                    );
                    deferred.push(Deferred::ResumeReply(reply, window));
                }
                CoreMsg::PeerAcked { peer, seq } => {
                    core.prune(peer, seq);
                }
                CoreMsg::Cut {
                    token,
                    start,
                    reply,
                } => {
                    if start && !core.cut_seen(token) {
                        // Snapshot *now*, at this message's channel
                        // position: writes processed earlier in the sweep
                        // are inside the cut, later ones outside it.
                        core.record_cut(map, token);
                        core.tel.flight.record("cut_start", &[("token", token)]);
                        deferred.push(Deferred::Marker(token));
                    }
                    deferred.push(Deferred::CutReply(reply, core.cut_snapshot(token)));
                }
                CoreMsg::PeerMarker { token } => {
                    if !core.cut_seen(token) {
                        core.record_cut(map, token);
                        core.tel.flight.record("cut_marker", &[("token", token)]);
                        deferred.push(Deferred::Marker(token));
                    }
                }
                CoreMsg::Status(reply) => {
                    let mut status = core.status();
                    if let Some(d) = &durable {
                        status.wal_appends = d.wal_appends;
                        status.snapshots_written = d.snapshots_written;
                        status.wal_bytes = d.wal.bytes();
                        status.snapshot_bytes = d.snapshot_bytes;
                        status.first_snapshot_bytes = d.first_snapshot_bytes;
                    }
                    // lint: allow(alloc) status scrape is the cold admin path
                    deferred.push(Deferred::Status(reply, Box::new(status)));
                }
                CoreMsg::Trace(reply) => {
                    deferred.push(Deferred::Trace(reply, core.traces()));
                }
                CoreMsg::Metrics(reply) => {
                    // Gauges mirror authoritative core state at scrape time;
                    // counters and histograms are already live in the
                    // registry the I/O threads share.
                    core.mirror_gauges(&durable);
                    deferred.push(Deferred::Metrics(reply, core.tel.registry.snapshot()));
                }
                CoreMsg::Crash => {
                    // Drop the sweep on the floor: nothing staged commits and
                    // nothing deferred escapes — indistinguishable from the
                    // crash landing before these messages arrived, which is
                    // exactly the point the recovery suite replays from.
                    core.tel.flight.record("crash", &[]);
                    dump = true;
                    deferred.clear();
                    break 'run;
                }
                CoreMsg::Shutdown => {
                    // Stop draining; the sweep end below commits and releases
                    // what was already processed, then the final snapshot runs.
                    shutdown = true;
                }
            }
            if !shutdown && swept < SWEEP_MAX {
                pending = core_rx.try_recv().ok();
            }
        }

        // Sweep end: one group-committed WAL write covers every record the
        // sweep staged; only then do the sweep's effects leave the node.
        if let Some(d) = durable.as_mut() {
            if d.staged() {
                if let Err(e) = d.commit() {
                    // Fail-stop: a failed write may have left partial bytes
                    // in the log, and any further append would bury that
                    // tear mid-file — turning recoverable torn-tail damage
                    // into unrecoverable corruption. Every deferred effect
                    // is dropped (unreplied, unacked), so clients see a
                    // dead node and peers retransmit after restart.
                    eprintln!(
                        "prcc-service[{node}]: WAL append failed, stopping (restart \
                         recovers the log): {e}"
                    );
                    core.tel.flight.record("fail_stop_wal_append", &[]);
                    dump = true;
                    deferred.clear();
                    kill();
                    break;
                }
            }
        }
        for &t0 in &wal_stamps {
            core.tel.wal_append_us.record(wall_us().saturating_sub(t0));
        }
        wal_stamps.clear();
        let needs_sync = deferred
            .iter()
            .any(|d| matches!(d, Deferred::Ack(..) | Deferred::JoinReply(..)));
        if needs_sync && !sync_before_ack(&mut durable, node) {
            core.tel.flight.record("fail_stop_sync", &[]);
            dump = true;
            deferred.clear();
            kill();
            break;
        }
        for effect in deferred.drain(..) {
            match effect {
                Deferred::WriteReply(tx, ok) => {
                    let _ = tx.send(ok);
                }
                Deferred::ReadReply(tx, answer) => {
                    let _ = tx.send(answer);
                }
                Deferred::Send(peer, seq, p, update) => {
                    if let Some(tx) = &peer_txs[peer] {
                        let _ = tx.send(SenderCmd::Update(seq, p, update));
                    }
                }
                Deferred::Ack(tx, acked) => {
                    let _ = tx.send(acked);
                }
                Deferred::JoinReply(tx, acked) => {
                    let _ = tx.send(acked);
                }
                Deferred::ResumeReply(tx, window) => {
                    let _ = tx.send(window);
                }
                Deferred::Status(tx, status) => {
                    let _ = tx.send(*status);
                }
                Deferred::Trace(tx, traces) => {
                    let _ = tx.send(traces);
                }
                Deferred::Metrics(tx, snapshot) => {
                    let _ = tx.send(snapshot);
                }
                Deferred::CutReply(tx, snap) => {
                    let _ = tx.send(snap);
                }
                Deferred::Marker(token) => {
                    for tx in peer_txs.iter().flatten() {
                        let _ = tx.send(SenderCmd::Marker(token));
                    }
                }
            }
        }
        if shutdown {
            // A final snapshot makes restart-after-shutdown instant and
            // keeps the WAL short; failure is non-fatal (the WAL alone
            // still recovers everything, and the node is stopping anyway —
            // no later append can bury a torn tail).
            if durable.is_some() {
                compact_traces(&mut core, &mut durable, map, 1);
                // lint: allow(unwrap) `durable.is_some()` gated this branch
                let d = durable.as_mut().expect("checked above");
                if let Err(e) = d.commit() {
                    eprintln!("prcc-service[{node}]: final WAL append failed: {e}");
                } else {
                    match snapshot_state(&core, d) {
                        Ok(_) => {
                            let record = digest_record(&core);
                            d.stage(&record);
                            if let Err(e) = d.commit() {
                                eprintln!("prcc-service[{node}]: final digest append failed: {e}");
                            }
                        }
                        Err(e) => eprintln!("prcc-service[{node}]: final snapshot failed: {e}"),
                    }
                }
            }
            break;
        }
    }
    // lint: end-hot-path
    // The flight dump is the crash's black box: written only on fail-stop
    // or injected crash, next to the node's WAL, so a post-mortem can line
    // the last recorded events up against the recovered log.
    if dump {
        if let Some(dir) = durable.as_ref().and_then(|d| d.snapshot_path.parent()) {
            let path = dir.join("flight.log");
            if let Err(e) = core.tel.flight.dump_to(&path) {
                eprintln!("prcc-service[{node}]: flight dump failed: {e}");
            }
        }
    }
}

/// Dials `addr` with retry and exponential backoff (peers come up — and
/// after a link loss or crash-restart, come back — in arbitrary order),
/// performs the versioned handshake, and reads the peer's hello-ack.
/// Returns the connected stream plus the peer's acknowledged link offset;
/// `None` once `connect_timeout` elapses without a completed handshake, or
/// when the node is stopping.
fn dial_peer(
    addr: SocketAddr,
    hello: &PeerHello,
    cfg: &ServiceConfig,
    counters: &NetMetrics,
    stop: &AtomicBool,
) -> Option<(TcpStream, u64)> {
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut backoff = Duration::from_millis(5);
    let mut attempt = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.set_nodelay(true);
            // The handshake opens every connection, including redials: the
            // acceptor spawns a fresh reader that expects it and answers
            // with the link's acknowledged resume offset.
            if let Ok(n) = write_frame(&mut stream, &encode_peer_hello(hello)) {
                counters.bytes_out.add(n as u64);
                if let Ok(Some(payload)) = read_frame(&mut stream) {
                    counters.bytes_in.add(payload.len() as u64 + 4);
                    if let Ok(acked) = decode_hello_ack(&payload) {
                        return Some((stream, acked));
                    }
                }
            }
        }
        let now = Instant::now();
        if now >= deadline {
            eprintln!(
                "prcc-service[{}]: peer {addr} unreachable for {:?}, backing off",
                hello.node, cfg.connect_timeout
            );
            return None;
        }
        attempt += 1;
        // Seeded jitter, up to +50% of the base backoff: decorrelates the
        // redial storms a whole cluster restarting (or a partition
        // healing) would otherwise synchronize, without giving up
        // determinism — the jitter is a pure hash of (dialer, port,
        // attempt), so identical histories redial at identical times and
        // a seed-pinned chaos run replays exactly.
        let base_us = backoff.as_micros() as u64;
        let key = ((hello.node as u64) << 48) | ((u64::from(addr.port())) << 32) | attempt;
        let jitter = Duration::from_micros(mix64(key) % (base_us / 2).max(1));
        thread::sleep((backoff + jitter).min(deadline - now));
        backoff = (backoff * 2).min(Duration::from_millis(100));
    }
}

/// Groups a run of `(seq, partition, update)` entries into multi-batch
/// sections, preserving first-seen section order and per-partition update
/// order (cross-partition order is irrelevant — partitions are causally
/// independent).
fn pack_sections<C>(
    entries: impl IntoIterator<Item = (u64, PartitionId, Update<C>)>,
) -> FlushSections<C> {
    let mut sections: FlushSections<C> = Vec::new();
    for (seq, partition, update) in entries {
        // Linear scan: a flush touches at most a handful of partitions.
        match sections.iter_mut().find(|(p, _)| *p == partition) {
            Some((_, updates)) => updates.push((seq, update)),
            None => sections.push((partition, vec![(seq, update)])),
        }
    }
    sections
}

/// Writes a run of complete frames with `write_vectored`, retrying short
/// writes (a partial write resumes mid-frame) and `Interrupted`. Returns
/// the total bytes written. Each syscall carries at most [`MAX_IOV`]
/// slices.
// lint: hot-path
fn write_frames_vectored(stream: &mut TcpStream, frames: &[Lease]) -> io::Result<usize> {
    let mut total = 0usize;
    let mut frame_idx = 0usize;
    let mut offset = 0usize;
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOV);
    while frame_idx < frames.len() {
        slices.clear();
        slices.push(IoSlice::new(&frames[frame_idx][offset..]));
        for frame in frames[frame_idx + 1..].iter().take(MAX_IOV - 1) {
            slices.push(IoSlice::new(frame));
        }
        let written = match stream.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer socket closed mid-flush",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        total += written;
        // Advance (frame, offset) past the bytes the kernel took.
        let mut advanced = written;
        while advanced > 0 {
            let remaining = frames[frame_idx].len() - offset;
            if advanced >= remaining {
                advanced -= remaining;
                frame_idx += 1;
                offset = 0;
            } else {
                offset += advanced;
                advanced = 0;
            }
        }
    }
    stream.flush()?;
    Ok(total)
}

/// Ships a run of `(seq, partition, update)` entries: packs each
/// `batch_max`-sized chunk into one multi-batch frame encoded in place
/// into a pooled buffer, then flushes every frame with a single vectored
/// write. Maintains the flush/frame/batch counters.
fn send_entries<C: WireClock>(
    stream: &mut TcpStream,
    entries: &[(u64, PartitionId, Update<C>)],
    cfg: &ServiceConfig,
    counters: &NetMetrics,
    pool: &BufPool,
) -> io::Result<()> {
    if entries.is_empty() {
        return Ok(());
    }
    let chunks = entries.len().div_ceil(cfg.batch_max.max(1));
    let mut frames: Vec<Lease> = Vec::with_capacity(chunks);
    let mut batches = 0u64;
    for chunk in entries.chunks(cfg.batch_max.max(1)) {
        // lint: allow(alloc) sections regroup one bounded chunk per flush
        let sections = pack_sections(chunk.iter().cloned());
        // `flushes` counts drain cycles at the moment a flush exists —
        // deliberately NOT at the same site as `frames_sent`, which counts
        // successful frame writes. Keeping the two sites apart is what
        // makes `frames_per_flush` a binding regression signal for the
        // prcc-load `--max-frames-per-flush` gate.
        counters.flushes.add(1);
        let mut frame = pool.lease(256);
        append_frame(&mut frame, |out| {
            encode_multi_batch_into(&sections, cfg.pad_bytes, out)
        })?;
        batches += sections.len() as u64;
        frames.push(frame);
    }
    let total = write_frames_vectored(stream, &frames)?;
    counters.bytes_out.add(total as u64);
    counters.batches_sent.add(batches);
    counters.frames_sent.add(frames.len() as u64);
    Ok(())
}
// lint: end-hot-path

#[allow(clippy::too_many_arguments)]
fn peer_sender<C: WireClock>(
    peer: usize,
    addr: SocketAddr,
    hello: PeerHello,
    rx: &mpsc::Receiver<SenderCmd<C>>,
    relink_tx: &PeerTx<C>,
    cfg: &ServiceConfig,
    counters: &Arc<NetMetrics>,
    core_tx: &mpsc::Sender<CoreMsg<C>>,
    stop: &Arc<AtomicBool>,
    pool: &BufPool,
) {
    // Each successful dial is a new connection generation; stale relink
    // nudges from a previous connection's ack-reader are ignored.
    let mut generation: u64 = 0;
    'link: loop {
        let Some((mut stream, acked)) = dial_peer(addr, &hello, cfg, counters, stop) else {
            // Peer unreachable for a whole dial window (or this node is
            // stopping). Discard the queued channel backlog — every entry
            // is also parked in the core's window, which the resume on
            // the next successful dial retransmits — and try again: a
            // peer down longer than one connect_timeout (e.g. a slow
            // crash-restart) must not strand the link forever.
            loop {
                match rx.try_recv() {
                    Ok(_) => {}
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => return,
                }
            }
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue 'link;
        };
        generation += 1;

        // Resume: fetch the unacked window past the peer's offset and
        // retransmit it before any fresh traffic. Everything the peer did
        // not acknowledge — including frames that were buffered into a
        // dying socket on the previous connection — goes again; the
        // receiver's dedup set absorbs any overlap.
        let (reply, reply_rx) = mpsc::channel();
        if core_tx
            .send(CoreMsg::PeerResume { peer, acked, reply })
            .is_err()
        {
            return;
        }
        let Ok(window) = reply_rx.recv() else { return };

        // An ack-reader per connection: forwards streamed acks to the core
        // and nudges this sender to redial when the connection dies.
        if let Ok(ack_stream) = stream.try_clone() {
            let core_tx = core_tx.clone();
            let relink_tx = relink_tx.clone();
            let counters = Arc::clone(counters);
            let this_generation = generation;
            thread::spawn(move || {
                peer_ack_reader(
                    ack_stream,
                    peer,
                    this_generation,
                    &core_tx,
                    &relink_tx,
                    &counters,
                );
            });
        }

        // Everything up to the window's tail is covered by this resume:
        // entries still sitting in the channel at or below `covered` are
        // duplicates of what the resume just sent and are skipped below.
        let mut covered = window.last().map_or(acked, |(seq, _, _)| *seq);
        // A window shipped on the very first connection of a fresh link
        // (generation 1, nothing acked) is a first transmission — writes
        // merely raced the dial — not a retransmission; everything else
        // (reconnects, and restarts where the peer remembers the link) is.
        let resent = if generation > 1 || acked > 0 {
            window.len() as u64
        } else {
            0
        };
        if let Err(e) = send_entries(&mut stream, &window, cfg, counters, pool) {
            eprintln!(
                "prcc-service[{}]: resend to {addr}: {e}; reconnecting",
                hello.node
            );
            continue 'link;
        }
        counters.resent.add(resent);

        // Batching loop: block for the first update, then coalesce until
        // the batch fills or the flush interval elapses, then emit the
        // whole flush as ONE multi-partition frame per batch_max chunk —
        // a backlogged sender drains several chunks and ships them all in
        // one vectored write. On a dead link the batch is simply dropped
        // locally and the loop redials: every update still sits in the
        // core's window and is retransmitted by the resume above.
        // lint: hot-path
        loop {
            let first = match rx.recv_timeout(SENDER_IDLE_POLL) {
                Ok(SenderCmd::Update(seq, partition, update)) => (seq, partition, update),
                Ok(SenderCmd::Relink(at)) => {
                    if at == generation {
                        continue 'link;
                    }
                    continue;
                }
                Ok(SenderCmd::Marker(token)) => {
                    // No batch open: the marker's channel position is
                    // "right now" — write it immediately.
                    // lint: allow(alloc) one frame per audit, far off the hot path
                    match write_frame(&mut stream, &encode_cut_marker(token)) {
                        Ok(n) => counters.bytes_out.add(n as u64),
                        Err(_) => continue 'link,
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            };
            let mut batch = Vec::with_capacity(cfg.batch_max.max(1));
            batch.push(first);
            let deadline = Instant::now() + cfg.flush_interval;
            let mut relink = false;
            // A marker closes the batch early: everything queued before it
            // must hit the wire first, the marker next, everything after
            // it later — so it waits here while the batch ahead flushes.
            let mut marker: Option<u64> = None;
            while batch.len() < cfg.batch_max {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(SenderCmd::Update(seq, partition, update)) => {
                        batch.push((seq, partition, update));
                    }
                    Ok(SenderCmd::Relink(at)) => {
                        if at == generation {
                            relink = true;
                            break;
                        }
                    }
                    Ok(SenderCmd::Marker(token)) => {
                        marker = Some(token);
                        break;
                    }
                    Err(_) => break,
                }
            }
            // Opportunistic backlog drain: a sender that fell behind (slow
            // peer, long flush) pulls whatever is already queued — up to
            // MAX_FLUSH_FRAMES frames' worth — so the vectored flush below
            // moves it with one syscall instead of one per chunk.
            while !relink
                && marker.is_none()
                && batch.len() < cfg.batch_max.max(1) * MAX_FLUSH_FRAMES
            {
                match rx.try_recv() {
                    Ok(SenderCmd::Update(seq, partition, update)) => {
                        batch.push((seq, partition, update));
                    }
                    Ok(SenderCmd::Relink(at)) => {
                        if at == generation {
                            relink = true;
                        }
                    }
                    Ok(SenderCmd::Marker(token)) => {
                        marker = Some(token);
                    }
                    Err(_) => break,
                }
            }
            if relink {
                continue 'link;
            }
            // Drop entries the resume already transmitted on this
            // connection (they were in both the window and the channel).
            batch.retain(|(seq, _, _)| *seq > covered);
            if let Some(&(last, _, _)) = batch.last() {
                covered = last;
                if let Err(e) = send_entries(&mut stream, &batch, cfg, counters, pool) {
                    eprintln!(
                        "prcc-service[{}]: send to {addr}: {e}; reconnecting",
                        hello.node
                    );
                    continue 'link;
                }
                // Send-stage latency (issue → first socket write) for sampled
                // updates: one clock read per flush, taken lazily, and only on
                // this first-transmission path — window resends above would
                // double-count the same stamps.
                let mut now = 0u64;
                for (_, _, update) in &batch {
                    let stamp = update.issued_at.0;
                    if stamp != 0 {
                        if now == 0 {
                            now = wall_us();
                        }
                        counters.send_us.record(now.saturating_sub(stamp));
                    }
                }
            }
            // The batch that was queued ahead of the marker is on the wire;
            // the marker takes its channel position now. A write failure
            // loses it (markers are not windowed) — the audit then reports
            // the cut incomplete, never a wrong verdict.
            if let Some(token) = marker {
                // lint: allow(alloc) one frame per audit, far off the hot path
                match write_frame(&mut stream, &encode_cut_marker(token)) {
                    Ok(n) => counters.bytes_out.add(n as u64),
                    Err(e) => {
                        eprintln!(
                            "prcc-service[{}]: marker to {addr}: {e}; reconnecting",
                            hello.node
                        );
                        continue 'link;
                    }
                }
            }
        }
        // lint: end-hot-path
    }
}

/// Reads streamed acknowledgement frames off (a clone of) a sender's
/// connection, forwarding them to the core for window pruning. When the
/// connection dies — even with no outbound traffic pending — it nudges the
/// sender to redial, so undelivered window entries are retransmitted
/// promptly instead of waiting for the next write to fail.
fn peer_ack_reader<C>(
    mut stream: TcpStream,
    peer: usize,
    generation: u64,
    core_tx: &mpsc::Sender<CoreMsg<C>>,
    relink_tx: &PeerTx<C>,
    counters: &NetMetrics,
) {
    while let Ok(Some(payload)) = read_frame(&mut stream) {
        counters.bytes_in.add(payload.len() as u64 + 4);
        let Ok(seq) = decode_peer_ack(&payload) else {
            break;
        };
        if core_tx.send(CoreMsg::PeerAcked { peer, seq }).is_err() {
            return;
        }
    }
    let _ = relink_tx.send(SenderCmd::Relink(generation));
}

#[allow(clippy::too_many_arguments)]
fn peer_reader<P>(
    mut stream: TcpStream,
    protocol: &Arc<P>,
    map: &PartitionMap,
    node: usize,
    core_tx: &mpsc::Sender<CoreMsg<P::Clock>>,
    counters: &Arc<NetMetrics>,
    connections: &PeerConnections,
    stop: &Arc<AtomicBool>,
    pool: &BufPool,
) -> io::Result<()>
where
    P: Protocol,
    P::Clock: WireClock,
{
    let _ = stream.set_nodelay(true);
    let Some(hello_frame) = read_frame(&mut stream)? else {
        return Ok(());
    };
    counters.bytes_in.add(hello_frame.len() as u64 + 4);
    let hello = decode_peer_hello(&hello_frame)?;
    if &hello.map != map {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer {} runs a different partition map", hello.node),
        ));
    }
    if hello.node >= map.num_nodes() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer index {} out of range", hello.node),
        ));
    }
    // Answer with the acknowledged resume offset for this link: the sender
    // retransmits its unacked window right after it.
    let acked = {
        let (reply, reply_rx) = mpsc::channel();
        if core_tx
            .send(CoreMsg::PeerJoin {
                peer: hello.node,
                reply,
            })
            .is_err()
        {
            return Ok(()); // Core shut down.
        }
        let Ok(acked) = reply_rx.recv() else {
            return Ok(());
        };
        acked
    };
    let n = write_frame(&mut stream, &encode_hello_ack(acked))?;
    counters.bytes_out.add(n as u64);

    // Register this connection as the peer's live one; shut any previous
    // connection down so the reader blocked on it wakes up and exits (a
    // sender reconnecting after a half-open link loss would otherwise
    // accumulate one stuck reader thread per redial). Registering only
    // after the handshake means a garbage connection cannot evict a
    // healthy peer link.
    let token = REGISTRATION_TOKEN.fetch_add(1, Ordering::Relaxed);
    let replaced = {
        let mut live = connections.lock();
        stream
            .try_clone()
            .ok()
            .and_then(|clone| live.insert(hello.node, (token, clone)))
    };
    if let Some((_, stale)) = replaced {
        let _ = stale.shutdown(Shutdown::Both);
    }
    // Close the race with the crash switch: its sweep severs everything
    // registered before it ran, and anything registered after observes
    // `stop` (set before the sweep) right here and severs itself. Without
    // this check a handshake completed against the dying core — whose
    // queued replies can still land after the sweep — would leave a live,
    // never-severed connection the peer keeps writing into.
    if stop.load(Ordering::SeqCst) {
        deregister(connections, hello.node, token);
        let _ = stream.shutdown(Shutdown::Both);
        return Ok(());
    }

    // Acknowledgements are written by a dedicated thread on a clone of the
    // stream, so the reader keeps draining frames while acks go out (the
    // core decides when one is due and sends the high-water mark here).
    let (ack_tx, ack_rx) = mpsc::channel::<u64>();
    if let Ok(mut ack_stream) = stream.try_clone() {
        let counters = Arc::clone(counters);
        let pool = pool.clone();
        thread::spawn(move || {
            // One leased buffer for the thread's lifetime: every ack frame
            // is encoded in place into it.
            let mut frame = pool.lease(64);
            while let Ok(mut seq) = ack_rx.recv() {
                // Coalesce queued acks: only the newest high-water matters.
                while let Ok(later) = ack_rx.try_recv() {
                    seq = later;
                }
                frame.clear();
                if append_frame(&mut frame, |out| encode_peer_ack_into(seq, out)).is_err() {
                    break;
                }
                match ack_stream
                    .write_all(&frame)
                    .and_then(|()| ack_stream.flush())
                {
                    Ok(()) => {
                        counters.bytes_out.add(frame.len() as u64);
                    }
                    Err(_) => break,
                }
            }
        });
    }

    // Pump frames until the connection or the core dies, then deregister
    // this connection on EVERY exit path: the registered clone must not
    // outlive the reader, or the peer's socket would stay open — and its
    // sender writing happily — with nobody consuming the frames.
    let result = pump_peer_frames(
        &mut stream,
        protocol,
        map,
        node,
        &hello,
        core_tx,
        counters,
        ack_tx,
        pool,
    );
    deregister(connections, hello.node, token);
    let _ = stream.shutdown(Shutdown::Both);
    result
}

/// Removes a peer's registry entry if it still belongs to this reader
/// (matched by registration token — a newer connection must not be evicted
/// by its predecessor's cleanup).
fn deregister(connections: &PeerConnections, peer: usize, token: u64) {
    let mut live = connections.lock();
    if live.get(&peer).is_some_and(|(t, _)| *t == token) {
        if let Some((_, clone)) = live.remove(&peer) {
            let _ = clone.shutdown(Shutdown::Both);
        }
    }
}

/// The post-handshake frame loop of a peer reader: decode each flush
/// frame, validate its sections, and hand it to the core as one delivery.
#[allow(clippy::too_many_arguments)]
fn pump_peer_frames<P>(
    stream: &mut TcpStream,
    protocol: &Arc<P>,
    map: &PartitionMap,
    node: usize,
    hello: &PeerHello,
    core_tx: &mpsc::Sender<CoreMsg<P::Clock>>,
    counters: &Arc<NetMetrics>,
    ack_tx: mpsc::Sender<u64>,
    pool: &BufPool,
) -> io::Result<()>
where
    P: Protocol,
    P::Clock: WireClock,
{
    let roles = map.graph().num_replicas();
    // Pooled reads: each frame lands in a leased buffer sized by its
    // length prefix, returned to the pool as soon as it is decoded.
    // lint: hot-path
    while let Some(payload) = read_frame_pooled(stream, pool)? {
        counters.bytes_in.add(payload.len() as u64 + 4);
        // Cut markers travel in the update stream — that is what gives
        // them a channel position — so they are intercepted here, before
        // batch decoding, and forwarded on the same core channel as the
        // updates around them (arrival order is cut order).
        if payload.first() == Some(&TAG_CUT_MARKER) {
            let token = decode_cut_marker(&payload)?;
            if core_tx.send(CoreMsg::PeerMarker { token }).is_err() {
                return Ok(()); // Core shut down.
            }
            continue;
        }
        // One frame, many `(partition, [(seq, update)])` sections: validate
        // each section, then hand the whole frame to the core as one
        // delivery (and one WAL receipt record).
        let sections = decode_peer_batches(&payload, |k| {
            (k.index() < roles).then(|| protocol.new_clock(k))
        })?;
        for (partition, _) in &sections {
            if partition.0 >= map.num_partitions() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    // lint: allow(alloc) protocol-violation error, cold
                    format!("batch for out-of-range {partition}"),
                ));
            }
            if map.role_on(*partition, node).is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    // lint: allow(alloc) protocol-violation error, cold
                    format!("peer {} misrouted {partition} updates here", hello.node),
                ));
            }
        }
        if core_tx
            .send(CoreMsg::Updates {
                peer: hello.node,
                sections,
                // lint: allow(alloc) channel-handle refcount bump, not a buffer
                ack: ack_tx.clone(),
            })
            .is_err()
        {
            return Ok(()); // Core shut down.
        }
    }
    // lint: end-hot-path
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn client_handler<C: WireClock>(
    mut stream: TcpStream,
    map: &PartitionMap,
    core_tx: &mpsc::Sender<CoreMsg<C>>,
    stop: &Arc<AtomicBool>,
    counters: &NetMetrics,
    listeners: (SocketAddr, SocketAddr),
    pool: &BufPool,
) -> io::Result<()> {
    let dead_core = || io::Error::new(io::ErrorKind::BrokenPipe, "node core is gone");
    let _ = stream.set_nodelay(true);
    while let Some(payload) = read_frame_pooled(&mut stream, pool)? {
        let response = match decode_request(&payload)? {
            ClientRequest::Write {
                partition,
                register,
                value,
                ..
            } => {
                let (reply, rx) = mpsc::channel();
                core_tx
                    .send(CoreMsg::Write {
                        partition,
                        register,
                        value,
                        reply,
                    })
                    .map_err(|_| dead_core())?;
                let ok = rx.recv().map_err(|_| dead_core())?;
                ClientResponse::WriteAck { ok }
            }
            ClientRequest::Read {
                partition,
                register,
            } => {
                let (reply, rx) = mpsc::channel();
                core_tx
                    .send(CoreMsg::Read {
                        partition,
                        register,
                        reply,
                    })
                    .map_err(|_| dead_core())?;
                let (ok, value) = rx.recv().map_err(|_| dead_core())?;
                ClientResponse::ReadResp { ok, value }
            }
            ClientRequest::Status => {
                let (reply, rx) = mpsc::channel();
                core_tx
                    .send(CoreMsg::Status(reply))
                    .map_err(|_| dead_core())?;
                let mut status = rx.recv().map_err(|_| dead_core())?;
                status.bytes_out = counters.bytes_out.get();
                status.bytes_in = counters.bytes_in.get();
                status.batches_sent = counters.batches_sent.get();
                status.frames_sent = counters.frames_sent.get();
                status.flushes = counters.flushes.get();
                status.resent = counters.resent.get();
                ClientResponse::Status(status)
            }
            ClientRequest::Trace => {
                let (reply, rx) = mpsc::channel();
                core_tx
                    .send(CoreMsg::Trace(reply))
                    .map_err(|_| dead_core())?;
                let logs = rx.recv().map_err(|_| dead_core())?;
                ClientResponse::Trace(logs)
            }
            ClientRequest::Metrics => {
                let (reply, rx) = mpsc::channel();
                core_tx
                    .send(CoreMsg::Metrics(reply))
                    .map_err(|_| dead_core())?;
                let snapshot = rx.recv().map_err(|_| dead_core())?;
                ClientResponse::Metrics(snapshot)
            }
            ClientRequest::Cut { token, start } => {
                let (reply, rx) = mpsc::channel();
                core_tx
                    .send(CoreMsg::Cut {
                        token,
                        start,
                        reply,
                    })
                    .map_err(|_| dead_core())?;
                let snap = rx.recv().map_err(|_| dead_core())?;
                ClientResponse::Cut(snap)
            }
            ClientRequest::Config => ClientResponse::Config {
                version: WIRE_VERSION,
                map: map.clone(),
            },
            ClientRequest::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                // Ack *before* stopping the core: once the core exits, a
                // process joining it (prcc-serve) may exit and kill this
                // thread before an ack written later would ever leave.
                write_response(&mut stream, &ClientResponse::Bye, pool)?;
                let _ = core_tx.send(CoreMsg::Shutdown);
                // Unblock the accept loops so their threads observe `stop`.
                let _ = TcpStream::connect(listeners.0);
                let _ = TcpStream::connect(listeners.1);
                return Ok(());
            }
        };
        write_response(&mut stream, &response, pool)?;
    }
    Ok(())
}

/// Encodes a client response in place into a pooled buffer and writes it
/// as one frame.
fn write_response(
    stream: &mut TcpStream,
    response: &ClientResponse,
    pool: &BufPool,
) -> io::Result<()> {
    let mut frame = pool.lease(256);
    append_frame(&mut frame, |out| encode_response_into(response, out))?;
    stream.write_all(&frame)?;
    stream.flush()
}
