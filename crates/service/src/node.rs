//! A partition-routing TCP node.
//!
//! A node no longer *is* a replica: it hosts one replica *role* of every
//! partition the [`PartitionMap`] places on it, each an independent
//! [`Replica`] with its own share-graph-derived clock. The threads around
//! the core are unchanged in shape:
//!
//! * the core thread serializes all state access (writes, reads, update
//!   application, trace/status snapshots) through one channel — replicating
//!   the run-to-completion event loop an async runtime would provide — and
//!   routes every message to the target partition's replica;
//! * one *sender* thread per peer node dials the peer's update listener
//!   (redialing with bounded backoff and a fresh handshake if the link
//!   later drops), then coalesces outgoing updates: a batch closes when it
//!   reaches `batch_max` updates or `flush_interval` elapses after its
//!   first update, whichever is first, and the whole flush is emitted as
//!   *one* wire-v3 multi-partition frame carrying a section per partition
//!   present (per-partition order preserved) — so framing cost is per
//!   flush, not per partition;
//! * the peer listener accepts connections and spawns a reader per peer
//!   that decodes multi-partition flush frames (and the legacy v2
//!   single-partition framing) and fans their sections to the core;
//! * the client listener serves the request/response API of
//!   [`crate::wire::ClientRequest`], including the [`PartitionMap`] itself
//!   (`Config`) so clients can route by key.
//!
//! Updates carry globally unique wire ids (`node << 40 | seq`, with `seq`
//! node-global across partitions), which drive both duplicate suppression
//! in [`Replica::receive`] and the post-hoc per-partition oracle replay
//! over collected traces.

use crate::wire::{
    decode_peer_batches, decode_peer_hello, decode_request, encode_multi_batch, encode_peer_hello,
    encode_response, read_frame, write_frame, ClientRequest, ClientResponse, NodeStatus,
    PartitionCounters, PeerHello, WIRE_VERSION,
};
use prcc_checker::trace::TraceEvent;
use prcc_checker::UpdateId;
use prcc_clock::{Protocol, WireClock};
use prcc_core::{Replica, Update};
use prcc_graph::{PartitionId, PartitionMap, RegisterId, ReplicaId};
use prcc_net::VirtualTime;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How many times a sender reconnects (full dial-with-backoff windows) for
/// one frame before stranding the peer link.
const RECONNECT_ATTEMPTS: usize = 5;

/// Tuning knobs of a node deployment.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum updates coalesced into one peer flush (emitted as a single
    /// multi-partition frame).
    pub batch_max: usize,
    /// How long a non-full batch may wait for more updates.
    pub flush_interval: Duration,
    /// Extra bytes shipped with each update (simulated value size).
    pub pad_bytes: usize,
    /// How long senders keep retrying a peer dial before giving up.
    pub connect_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch_max: 64,
            flush_interval: Duration::from_micros(200),
            pad_bytes: 0,
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Everything a node needs to come up: its identity, pre-bound listeners
/// (binding first solves the ephemeral-port bootstrap), and the peer map.
#[derive(Debug)]
pub struct NodeSeed {
    /// This node's index in the partition map.
    pub node: usize,
    /// Listener for incoming peer update connections.
    pub peer_listener: TcpListener,
    /// Listener for the client API.
    pub client_listener: TcpListener,
    /// Peer update-listener addresses, indexed by node.
    pub peer_addrs: Vec<SocketAddr>,
}

/// Handle to a spawned node.
#[derive(Debug)]
pub struct NodeHandle {
    /// The node's index in the partition map.
    pub node: usize,
    /// Address of the peer update listener.
    pub peer_addr: SocketAddr,
    /// Address of the client API listener.
    pub client_addr: SocketAddr,
    core: Option<thread::JoinHandle<()>>,
}

impl NodeHandle {
    /// Blocks until the node's core thread exits (a client sent
    /// [`ClientRequest::Shutdown`]).
    pub fn join(&mut self) {
        if let Some(handle) = self.core.take() {
            let _ = handle.join();
        }
    }
}

enum CoreMsg<C> {
    Write {
        partition: PartitionId,
        register: RegisterId,
        value: u64,
        reply: mpsc::Sender<bool>,
    },
    Read {
        partition: PartitionId,
        register: RegisterId,
        reply: mpsc::Sender<(bool, Option<u64>)>,
    },
    Updates(PartitionId, Vec<Update<C>>),
    Status(mpsc::Sender<NodeStatus>),
    Trace(mpsc::Sender<Vec<Vec<TraceEvent>>>),
    Shutdown,
}

struct SocketCounters {
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
    /// Per-partition update runs shipped (sections across all frames).
    batches_sent: AtomicU64,
    /// Peer update frames written.
    frames_sent: AtomicU64,
    /// Sender flush cycles.
    flushes: AtomicU64,
}

/// Per-peer outgoing channel: updates tagged with their partition.
type PeerTx<C> = mpsc::Sender<(PartitionId, Update<C>)>;

/// The live inbound connection per dialing peer, keyed by its node index.
/// A peer's sender runs exactly one connection at a time, so a redial
/// *replaces* the old one: the acceptor shuts the stale socket down, which
/// unblocks (and ends) its reader thread instead of leaking it on a
/// half-open link.
type PeerConnections = Arc<Mutex<HashMap<usize, TcpStream>>>;

/// One hosted partition: the role this node plays in it, the replica state
/// machine, and the partition-local event log.
struct PartitionSlot<P: Protocol> {
    role: ReplicaId,
    replica: Replica<P>,
    log: Vec<TraceEvent>,
    issued: u64,
}

/// Spawns a node: core thread, peer senders, peer/client listeners.
///
/// `protocol` must be configured for the partition map's per-partition
/// share graph; each hosted partition gets an independent [`Replica`] over
/// the shared protocol object (clocks are per-replica state, so partitions
/// do not share counters).
///
/// # Errors
///
/// Fails on listener introspection or a protocol/map share-graph mismatch;
/// network errors after spawn are handled per-connection (logged to stderr,
/// connection dropped).
pub fn spawn_node<P>(
    protocol: Arc<P>,
    map: PartitionMap,
    seed: NodeSeed,
    cfg: ServiceConfig,
) -> io::Result<NodeHandle>
where
    P: Protocol + 'static,
    P::Clock: WireClock,
{
    let NodeSeed {
        node,
        peer_listener,
        client_listener,
        peer_addrs,
    } = seed;
    if protocol.share_graph() != map.graph() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "protocol share graph differs from the partition map's",
        ));
    }
    let peer_addr = peer_listener.local_addr()?;
    let client_addr = client_listener.local_addr()?;
    let n = map.num_nodes();
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(SocketCounters {
        bytes_out: AtomicU64::new(0),
        bytes_in: AtomicU64::new(0),
        batches_sent: AtomicU64::new(0),
        frames_sent: AtomicU64::new(0),
        flushes: AtomicU64::new(0),
    });

    let (core_tx, core_rx) = mpsc::channel::<CoreMsg<P::Clock>>();

    // Per-peer outgoing channels feeding the sender threads.
    let mut peer_txs: Vec<Option<PeerTx<P::Clock>>> = Vec::with_capacity(n);
    for (k, &addr) in peer_addrs.iter().enumerate().take(n) {
        if k == node {
            peer_txs.push(None);
            continue;
        }
        let (tx, rx) = mpsc::channel::<(PartitionId, Update<P::Clock>)>();
        peer_txs.push(Some(tx));
        let hello = PeerHello {
            node,
            map: map.clone(),
        };
        let cfg = cfg.clone();
        let counters = Arc::clone(&counters);
        thread::spawn(move || peer_sender(addr, hello, rx, &cfg, &counters));
    }

    // Peer listener: one reader thread per inbound peer connection, with a
    // registry so a peer's redial evicts its previous reader.
    {
        let core_tx = core_tx.clone();
        let protocol = Arc::clone(&protocol);
        let map = map.clone();
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let connections: PeerConnections = Arc::new(Mutex::new(HashMap::new()));
        thread::spawn(move || {
            for conn in peer_listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { break };
                let core_tx = core_tx.clone();
                let protocol = Arc::clone(&protocol);
                let map = map.clone();
                let counters = Arc::clone(&counters);
                let connections = Arc::clone(&connections);
                thread::spawn(move || {
                    if let Err(e) = peer_reader(
                        stream,
                        &protocol,
                        &map,
                        node,
                        &core_tx,
                        &counters,
                        &connections,
                    ) {
                        eprintln!("prcc-service[{node}]: peer reader: {e}");
                    }
                });
            }
        });
    }

    // Client listener: one handler thread per client connection.
    {
        let core_tx = core_tx.clone();
        let map = map.clone();
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let addrs = (peer_addr, client_addr);
        thread::spawn(move || {
            for conn in client_listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { break };
                let core_tx = core_tx.clone();
                let map = map.clone();
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                thread::spawn(move || {
                    let _ = client_handler(stream, &map, &core_tx, &stop, &counters, addrs);
                });
            }
        });
    }

    // The core event loop.
    let core = thread::Builder::new()
        .name(format!("prcc-core-{node}"))
        .spawn(move || core_loop(&protocol, &map, node, &core_rx, &peer_txs))?;

    Ok(NodeHandle {
        node,
        peer_addr,
        client_addr,
        core: Some(core),
    })
}

fn core_loop<P>(
    protocol: &Arc<P>,
    map: &PartitionMap,
    node: usize,
    core_rx: &mpsc::Receiver<CoreMsg<P::Clock>>,
    peer_txs: &[Option<PeerTx<P::Clock>>],
) where
    P: Protocol,
    P::Clock: WireClock,
{
    // One independent replica per hosted partition; `None` for partitions
    // this node plays no role in.
    let mut partitions: Vec<Option<PartitionSlot<P>>> = map
        .partitions()
        .map(|p| {
            map.role_on(p, node).map(|role| PartitionSlot {
                role,
                replica: Replica::new(&**protocol, role),
                log: Vec::new(),
                issued: 0,
            })
        })
        .collect();
    let mut seq: u64 = 0;
    let (mut issued, mut sent, mut received) = (0u64, 0u64, 0u64);
    let mut dropped_misrouted: u64 = 0;

    while let Ok(msg) = core_rx.recv() {
        match msg {
            CoreMsg::Write {
                partition,
                register,
                value,
                reply,
            } => {
                let Some(slot) = partitions
                    .get_mut(partition.index())
                    .and_then(Option::as_mut)
                else {
                    let _ = reply.send(false);
                    continue;
                };
                match slot.replica.write(&**protocol, register, value) {
                    Ok(clock) => {
                        seq += 1;
                        let wire_id = ((node as u64) << 40) | seq;
                        slot.log.push(TraceEvent::Issue {
                            replica: slot.role,
                            register,
                            update: wire_id,
                        });
                        slot.issued += 1;
                        issued += 1;
                        let update = Update {
                            id: UpdateId(wire_id),
                            issuer: slot.role,
                            register,
                            value,
                            clock,
                            issued_at: VirtualTime::ZERO,
                            received_at: VirtualTime::ZERO,
                        };
                        for role in protocol.recipients(slot.role, register) {
                            let peer = map.node_of(partition, role);
                            if let Some(tx) = &peer_txs[peer] {
                                if tx.send((partition, update.clone())).is_ok() {
                                    sent += 1;
                                }
                            }
                        }
                        let _ = reply.send(true);
                    }
                    Err(_) => {
                        let _ = reply.send(false);
                    }
                }
            }
            CoreMsg::Read {
                partition,
                register,
                reply,
            } => {
                let answer = match partitions
                    .get(partition.index())
                    .and_then(Option::as_ref)
                    .map(|slot| slot.replica.read(&**protocol, register))
                {
                    Some(Ok(value)) => (true, value),
                    Some(Err(_)) | None => (false, None),
                };
                let _ = reply.send(answer);
            }
            CoreMsg::Updates(partition, updates) => {
                let Some(slot) = partitions
                    .get_mut(partition.index())
                    .and_then(Option::as_mut)
                else {
                    // Misrouted section: the reader already validated the
                    // partition range, so this is a hosting mismatch.
                    dropped_misrouted += updates.len() as u64;
                    eprintln!(
                        "prcc-service[{node}]: dropped {} updates for unhosted {partition}",
                        updates.len()
                    );
                    continue;
                };
                for update in updates {
                    received += 1;
                    slot.replica.receive(update, VirtualTime::ZERO);
                }
                for done in slot.replica.drain(&**protocol) {
                    if protocol.stores_value(slot.role, done.register) {
                        slot.log.push(TraceEvent::Apply {
                            replica: slot.role,
                            update: done.id.0,
                        });
                    }
                }
            }
            CoreMsg::Status(reply) => {
                let per_partition = partitions
                    .iter()
                    .map(|slot| match slot {
                        Some(slot) => PartitionCounters {
                            issued: slot.issued,
                            applies: slot.replica.applies(),
                            pending: slot.replica.pending_len() as u64,
                        },
                        None => PartitionCounters::default(),
                    })
                    .collect();
                let _ = reply.send(NodeStatus {
                    node: node as u64,
                    issued,
                    messages_sent: sent,
                    messages_received: received,
                    applies: partitions
                        .iter()
                        .flatten()
                        .map(|s| s.replica.applies())
                        .sum(),
                    pending: partitions
                        .iter()
                        .flatten()
                        .map(|s| s.replica.pending_len() as u64)
                        .sum(),
                    duplicates_dropped: partitions
                        .iter()
                        .flatten()
                        .map(|s| s.replica.dropped_duplicates())
                        .sum(),
                    dropped_misrouted,
                    // Socket byte/frame counters are filled in by the handler.
                    bytes_out: 0,
                    bytes_in: 0,
                    batches_sent: 0,
                    frames_sent: 0,
                    flushes: 0,
                    per_partition,
                });
            }
            CoreMsg::Trace(reply) => {
                let logs = partitions
                    .iter()
                    .map(|slot| slot.as_ref().map(|s| s.log.clone()).unwrap_or_default())
                    .collect();
                let _ = reply.send(logs);
            }
            CoreMsg::Shutdown => break,
        }
    }
}

/// Dials `addr` with retry and exponential backoff (peers come up — and
/// after a link loss, come back — in arbitrary order), then performs the
/// versioned handshake. `None` once `connect_timeout` elapses without a
/// connected, hello-acknowledging stream.
fn dial_peer(
    addr: SocketAddr,
    hello: &PeerHello,
    cfg: &ServiceConfig,
    counters: &SocketCounters,
) -> Option<TcpStream> {
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut backoff = Duration::from_millis(5);
    loop {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.set_nodelay(true);
            // The handshake opens every connection, including redials: the
            // acceptor spawns a fresh reader that expects it.
            if let Ok(n) = write_frame(&mut stream, &encode_peer_hello(hello)) {
                counters.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                return Some(stream);
            }
        }
        let now = Instant::now();
        if now >= deadline {
            eprintln!(
                "prcc-service[{}]: peer {addr} unreachable for {:?}, giving up",
                hello.node, cfg.connect_timeout
            );
            return None;
        }
        thread::sleep(backoff.min(deadline - now));
        backoff = (backoff * 2).min(Duration::from_millis(100));
    }
}

fn peer_sender<C: WireClock>(
    addr: SocketAddr,
    hello: PeerHello,
    rx: mpsc::Receiver<(PartitionId, Update<C>)>,
    cfg: &ServiceConfig,
    counters: &SocketCounters,
) {
    let Some(mut stream) = dial_peer(addr, &hello, cfg, counters) else {
        // Drain so the core never blocks on a dead peer.
        while rx.recv().is_ok() {}
        return;
    };

    // Batching loop: block for the first update, then coalesce until the
    // batch fills or the flush interval elapses, then emit the whole flush
    // as ONE multi-partition frame — a `(partition, updates)` section per
    // partition present, in first-seen order with per-partition update
    // order preserved (cross-partition order is irrelevant — partitions are
    // causally independent). One flush = one frame, whatever the partition
    // count: framing overhead no longer scales with sharding.
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        let deadline = Instant::now() + cfg.flush_interval;
        while batch.len() < cfg.batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(update) => batch.push(update),
                Err(_) => break,
            }
        }
        let mut sections: Vec<(PartitionId, Vec<Update<C>>)> = Vec::new();
        for (partition, update) in batch {
            // Linear scan: a flush touches at most a handful of partitions.
            match sections.iter_mut().find(|(p, _)| *p == partition) {
                Some((_, updates)) => updates.push(update),
                None => sections.push((partition, vec![update])),
            }
        }
        // `flushes` counts drain cycles at the moment a flush exists —
        // deliberately NOT at the same site as `frames_sent`, which counts
        // successful frame writes below. Keeping the two sites apart is
        // what makes `frames_per_flush` a binding regression signal: a
        // sender that goes back to one frame per partition (and counts its
        // frames honestly) shows a ratio near the partition count, and a
        // sender that stops counting frames shows 0, both of which the
        // `prcc-load --max-frames-per-flush` gate rejects.
        counters.flushes.fetch_add(1, Ordering::Relaxed);
        let payload = encode_multi_batch(&sections, cfg.pad_bytes);
        // Send, reconnecting (bounded) on a dead link: the frame that hit
        // the error is retried on the fresh connection after a new
        // handshake, so a transient link loss delays updates instead of
        // stranding every future flush for this peer.
        let mut delivered = false;
        for attempt in 0..=RECONNECT_ATTEMPTS {
            match write_frame(&mut stream, &payload) {
                Ok(n) => {
                    counters.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                    counters
                        .batches_sent
                        .fetch_add(sections.len() as u64, Ordering::Relaxed);
                    counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                    delivered = true;
                    break;
                }
                Err(e) if attempt < RECONNECT_ATTEMPTS => {
                    eprintln!(
                        "prcc-service[{}]: send to {addr}: {e}; reconnecting ({}/{})",
                        hello.node,
                        attempt + 1,
                        RECONNECT_ATTEMPTS
                    );
                    match dial_peer(addr, &hello, cfg, counters) {
                        Some(fresh) => stream = fresh,
                        None => break,
                    }
                }
                Err(e) => {
                    eprintln!("prcc-service[{}]: send to {addr}: {e}", hello.node);
                }
            }
        }
        if !delivered {
            while rx.recv().is_ok() {}
            return;
        }
    }
}

fn peer_reader<P>(
    mut stream: TcpStream,
    protocol: &Arc<P>,
    map: &PartitionMap,
    node: usize,
    core_tx: &mpsc::Sender<CoreMsg<P::Clock>>,
    counters: &SocketCounters,
    connections: &PeerConnections,
) -> io::Result<()>
where
    P: Protocol,
    P::Clock: WireClock,
{
    let _ = stream.set_nodelay(true);
    let Some(hello_frame) = read_frame(&mut stream)? else {
        return Ok(());
    };
    counters
        .bytes_in
        .fetch_add(hello_frame.len() as u64 + 4, Ordering::Relaxed);
    let hello = decode_peer_hello(&hello_frame)?;
    if &hello.map != map {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer {} runs a different partition map", hello.node),
        ));
    }
    // Register this connection as the peer's live one; shut any previous
    // connection down so the reader blocked on it wakes up and exits (a
    // sender reconnecting after a half-open link loss would otherwise
    // accumulate one stuck reader thread per redial). Registering only
    // after the handshake means a garbage connection cannot evict a
    // healthy peer link.
    let replaced = {
        let mut live = connections.lock().unwrap_or_else(|e| e.into_inner());
        stream
            .try_clone()
            .ok()
            .and_then(|clone| live.insert(hello.node, clone))
    };
    if let Some(stale) = replaced {
        let _ = stale.shutdown(Shutdown::Both);
    }
    let roles = map.graph().num_replicas();
    while let Some(payload) = read_frame(&mut stream)? {
        counters
            .bytes_in
            .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
        // One frame, many `(partition, updates)` sections: validate each
        // section, then fan them to the core as independent deliveries.
        let sections = decode_peer_batches(&payload, |k| {
            (k.index() < roles).then(|| protocol.new_clock(k))
        })?;
        for (partition, updates) in sections {
            if partition.0 >= map.num_partitions() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("batch for out-of-range {partition}"),
                ));
            }
            if map.role_on(partition, node).is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("peer {} misrouted {partition} updates here", hello.node),
                ));
            }
            if core_tx.send(CoreMsg::Updates(partition, updates)).is_err() {
                return Ok(()); // Core shut down.
            }
        }
    }
    Ok(())
}

fn client_handler<C: WireClock>(
    mut stream: TcpStream,
    map: &PartitionMap,
    core_tx: &mpsc::Sender<CoreMsg<C>>,
    stop: &Arc<AtomicBool>,
    counters: &SocketCounters,
    listeners: (SocketAddr, SocketAddr),
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    while let Some(payload) = read_frame(&mut stream)? {
        let response = match decode_request(&payload)? {
            ClientRequest::Write {
                partition,
                register,
                value,
                ..
            } => {
                let (reply, rx) = mpsc::channel();
                let ok = core_tx
                    .send(CoreMsg::Write {
                        partition,
                        register,
                        value,
                        reply,
                    })
                    .is_ok()
                    && rx.recv().unwrap_or(false);
                ClientResponse::WriteAck { ok }
            }
            ClientRequest::Read {
                partition,
                register,
            } => {
                let (reply, rx) = mpsc::channel();
                let (ok, value) = if core_tx
                    .send(CoreMsg::Read {
                        partition,
                        register,
                        reply,
                    })
                    .is_ok()
                {
                    rx.recv().unwrap_or((false, None))
                } else {
                    (false, None)
                };
                ClientResponse::ReadResp { ok, value }
            }
            ClientRequest::Status => {
                let (reply, rx) = mpsc::channel();
                let mut status = if core_tx.send(CoreMsg::Status(reply)).is_ok() {
                    rx.recv().unwrap_or_default()
                } else {
                    NodeStatus::default()
                };
                status.bytes_out = counters.bytes_out.load(Ordering::Relaxed);
                status.bytes_in = counters.bytes_in.load(Ordering::Relaxed);
                status.batches_sent = counters.batches_sent.load(Ordering::Relaxed);
                status.frames_sent = counters.frames_sent.load(Ordering::Relaxed);
                status.flushes = counters.flushes.load(Ordering::Relaxed);
                ClientResponse::Status(status)
            }
            ClientRequest::Trace => {
                let (reply, rx) = mpsc::channel();
                let logs = if core_tx.send(CoreMsg::Trace(reply)).is_ok() {
                    rx.recv().unwrap_or_default()
                } else {
                    Vec::new()
                };
                ClientResponse::Trace(logs)
            }
            ClientRequest::Config => ClientResponse::Config {
                version: WIRE_VERSION,
                map: map.clone(),
            },
            ClientRequest::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                // Ack *before* stopping the core: once the core exits, a
                // process joining it (prcc-serve) may exit and kill this
                // thread before an ack written later would ever leave.
                write_frame(&mut stream, &encode_response(&ClientResponse::Bye))?;
                let _ = core_tx.send(CoreMsg::Shutdown);
                // Unblock the accept loops so their threads observe `stop`.
                let _ = TcpStream::connect(listeners.0);
                let _ = TcpStream::connect(listeners.1);
                return Ok(());
            }
        };
        write_frame(&mut stream, &encode_response(&response))?;
    }
    Ok(())
}
