//! `ServiceClient` — the blocking client library for the node API.

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, ClientRequest, ClientResponse,
    NodeStatus,
};
use prcc_checker::trace::TraceEvent;
use prcc_graph::RegisterId;
use std::io;
use std::net::{SocketAddr, TcpStream};

/// A connection to one node's client API.
///
/// One request is in flight at a time (simple request/response framing);
/// open several clients for pipelined load.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
}

fn protocol_error(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

impl ServiceClient {
    /// Connects to a node's client listener.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServiceClient { stream })
    }

    fn round_trip(&mut self, req: &ClientRequest) -> io::Result<ClientResponse> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| protocol_error("connection closed mid-request"))?;
        decode_response(&payload)
    }

    /// Issues `write(x, v)`, shipping `pad` extra payload bytes; resolves
    /// once the node has applied the write locally and enqueued the peer
    /// updates. Returns `false` if the node does not store `x`.
    pub fn write_padded(&mut self, x: RegisterId, v: u64, pad: usize) -> io::Result<bool> {
        match self.round_trip(&ClientRequest::Write {
            register: x,
            value: v,
            pad,
        })? {
            ClientResponse::WriteAck { ok } => Ok(ok),
            _ => Err(protocol_error("unexpected response to write")),
        }
    }

    /// Issues `write(x, v)`.
    pub fn write(&mut self, x: RegisterId, v: u64) -> io::Result<bool> {
        self.write_padded(x, v, 0)
    }

    /// Issues `read(x)`. `Err` is an I/O problem; `Ok(None)` means the node
    /// stores `x` but no write has reached it (or does not store `x` — check
    /// with the topology).
    pub fn read(&mut self, x: RegisterId) -> io::Result<Option<u64>> {
        match self.round_trip(&ClientRequest::Read { register: x })? {
            ClientResponse::ReadResp { value, .. } => Ok(value),
            _ => Err(protocol_error("unexpected response to read")),
        }
    }

    /// Fetches the node's counter snapshot.
    pub fn status(&mut self) -> io::Result<NodeStatus> {
        match self.round_trip(&ClientRequest::Status)? {
            ClientResponse::Status(status) => Ok(status),
            _ => Err(protocol_error("unexpected response to status")),
        }
    }

    /// Fetches the node's local event log.
    pub fn trace(&mut self) -> io::Result<Vec<TraceEvent>> {
        match self.round_trip(&ClientRequest::Trace)? {
            ClientResponse::Trace(events) => Ok(events),
            _ => Err(protocol_error("unexpected response to trace")),
        }
    }

    /// Asks the node to shut down gracefully.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&ClientRequest::Shutdown)? {
            ClientResponse::Bye => Ok(()),
            _ => Err(protocol_error("unexpected response to shutdown")),
        }
    }
}
