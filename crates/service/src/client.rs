//! Client libraries for the node API.
//!
//! [`ServiceClient`] is the blocking single-node connection; it addresses
//! `(partition, register)` pairs directly. [`RoutedClient`] sits on top:
//! it fetches the cluster's [`PartitionMap`] from any node, then routes
//! flat *keys* — `key → (partition, register)` by key range, then to a node
//! hosting a holder of that register — opening per-node connections
//! lazily.

use crate::wire::{
    append_frame, decode_response, encode_request_into, read_frame_into, ClientRequest,
    ClientResponse, NodeStatus, WIRE_VERSION,
};
use prcc_checker::trace::TraceEvent;
use prcc_checker::{CutSnapshot, TraceCheckpoint};
use prcc_graph::{PartitionId, PartitionMap, RegisterId};
use prcc_telemetry::MetricsSnapshot;
use prcc_workloads::ops::key_affinity;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};

/// A connection to one node's client API.
///
/// One request is in flight at a time (simple request/response framing);
/// open several clients for pipelined load. Request and response buffers
/// are owned by the connection and reused, so a warmed-up client issues
/// its round trips allocation-free.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
}

fn protocol_error(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

impl ServiceClient {
    /// Connects to a node's client listener.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServiceClient {
            stream,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
        })
    }

    fn round_trip(&mut self, req: &ClientRequest) -> io::Result<ClientResponse> {
        self.wbuf.clear();
        append_frame(&mut self.wbuf, |out| encode_request_into(req, out))?;
        self.stream.write_all(&self.wbuf)?;
        self.stream.flush()?;
        read_frame_into(&mut self.stream, &mut self.rbuf)?
            .ok_or_else(|| protocol_error("connection closed mid-request"))?;
        decode_response(&self.rbuf)
    }

    /// Issues `write(x, v)` in partition `p`, shipping `pad` extra payload
    /// bytes; resolves once the node has applied the write locally and
    /// enqueued the peer updates. Returns `false` if the node does not host
    /// `x` in `p`.
    pub fn write_padded(
        &mut self,
        p: PartitionId,
        x: RegisterId,
        v: u64,
        pad: usize,
    ) -> io::Result<bool> {
        match self.round_trip(&ClientRequest::Write {
            partition: p,
            register: x,
            value: v,
            pad,
        })? {
            ClientResponse::WriteAck { ok } => Ok(ok),
            _ => Err(protocol_error("unexpected response to write")),
        }
    }

    /// Issues `write(x, v)` in partition `p`.
    pub fn write_in(&mut self, p: PartitionId, x: RegisterId, v: u64) -> io::Result<bool> {
        self.write_padded(p, x, v, 0)
    }

    /// Issues `write(x, v)` in partition 0 — the whole register space of an
    /// unsharded deployment.
    pub fn write(&mut self, x: RegisterId, v: u64) -> io::Result<bool> {
        self.write_in(PartitionId(0), x, v)
    }

    /// Issues `read(x)` in partition `p`. `Err` is an I/O problem;
    /// `Ok(None)` means the node hosts `x` but no write has reached it (or
    /// does not host it — check with the partition map).
    pub fn read_in(&mut self, p: PartitionId, x: RegisterId) -> io::Result<Option<u64>> {
        match self.round_trip(&ClientRequest::Read {
            partition: p,
            register: x,
        })? {
            ClientResponse::ReadResp { value, .. } => Ok(value),
            _ => Err(protocol_error("unexpected response to read")),
        }
    }

    /// Issues `read(x)` in partition 0.
    pub fn read(&mut self, x: RegisterId) -> io::Result<Option<u64>> {
        self.read_in(PartitionId(0), x)
    }

    /// Fetches the node's counter snapshot.
    pub fn status(&mut self) -> io::Result<NodeStatus> {
        match self.round_trip(&ClientRequest::Status)? {
            ClientResponse::Status(status) => Ok(status),
            _ => Err(protocol_error("unexpected response to status")),
        }
    }

    /// Fetches the node's local event logs, indexed by partition: per
    /// partition, the sealed-prefix checkpoint summary plus the live
    /// suffix (a compacting node no longer retains full history).
    pub fn trace(&mut self) -> io::Result<Vec<(TraceCheckpoint, Vec<TraceEvent>)>> {
        match self.round_trip(&ClientRequest::Trace)? {
            ClientResponse::Trace(logs) => Ok(logs),
            _ => Err(protocol_error("unexpected response to trace")),
        }
    }

    /// Fetches the node's live metrics snapshot: the `net_*` / `core_*` /
    /// `wal_*` counters and gauges plus the update-lifecycle stage
    /// histograms. The response frame is version-stamped, so a node
    /// speaking a different wire protocol is refused at decode.
    pub fn metrics(&mut self) -> io::Result<MetricsSnapshot> {
        match self.round_trip(&ClientRequest::Metrics)? {
            ClientResponse::Metrics(snapshot) => Ok(snapshot),
            _ => Err(protocol_error("unexpected response to metrics")),
        }
    }

    /// Starts an online consistent-cut audit: the node snapshots its
    /// frontiers for `token` (first sighting only) and floods cut markers
    /// to every peer in channel order. Returns the node's own snapshot.
    /// Traffic keeps flowing — the audit never blocks the write path.
    pub fn cut_start(&mut self, token: u64) -> io::Result<Option<CutSnapshot>> {
        match self.round_trip(&ClientRequest::Cut { token, start: true })? {
            ClientResponse::Cut(snap) => Ok(snap),
            _ => Err(protocol_error("unexpected response to cut start")),
        }
    }

    /// Fetches the node's recorded snapshot for cut `token`, if the marker
    /// has reached it (and the token is recent enough to still be
    /// retained). `None` means "not yet" — poll again or give the cut up
    /// as incomplete.
    pub fn cut_report(&mut self, token: u64) -> io::Result<Option<CutSnapshot>> {
        match self.round_trip(&ClientRequest::Cut {
            token,
            start: false,
        })? {
            ClientResponse::Cut(snap) => Ok(snap),
            _ => Err(protocol_error("unexpected response to cut report")),
        }
    }

    /// Fetches the node's sharding configuration, refusing nodes that speak
    /// a different wire protocol version.
    pub fn config(&mut self) -> io::Result<PartitionMap> {
        match self.round_trip(&ClientRequest::Config)? {
            ClientResponse::Config { version, map } => {
                if version != WIRE_VERSION {
                    return Err(protocol_error(&format!(
                        "wire protocol version mismatch: node speaks v{version}, \
                         this client v{WIRE_VERSION}"
                    )));
                }
                Ok(map)
            }
            _ => Err(protocol_error("unexpected response to config")),
        }
    }

    /// Asks the node to shut down gracefully.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&ClientRequest::Shutdown)? {
            ClientResponse::Bye => Ok(()),
            _ => Err(protocol_error("unexpected response to shutdown")),
        }
    }
}

/// A key-routing client over the whole cluster.
///
/// Holds the [`PartitionMap`] plus one lazily opened [`ServiceClient`] per
/// node, and routes each operation on flat key `k`: locate `(partition,
/// register)` by key range, pick a hosting node among the register's
/// holders (spread deterministically by key), and issue the single-node
/// operation there.
#[derive(Debug)]
pub struct RoutedClient {
    map: PartitionMap,
    client_addrs: Vec<SocketAddr>,
    clients: Vec<Option<ServiceClient>>,
}

impl RoutedClient {
    /// Connects to the cluster: fetches the partition map from the first
    /// address, then routes over all of them. `client_addrs[i]` must be
    /// node `i`'s client listener.
    pub fn connect(client_addrs: Vec<SocketAddr>) -> io::Result<Self> {
        let first = *client_addrs
            .first()
            .ok_or_else(|| protocol_error("no node addresses"))?;
        let map = ServiceClient::connect(first)?.config()?;
        Self::with_map(map, client_addrs)
    }

    /// Builds a router from an already known partition map (e.g. the
    /// harness that launched the cluster).
    ///
    /// # Errors
    ///
    /// Fails if the address list does not cover the map's nodes.
    pub fn with_map(map: PartitionMap, client_addrs: Vec<SocketAddr>) -> io::Result<Self> {
        if client_addrs.len() != map.num_nodes() {
            return Err(protocol_error("address list does not match node count"));
        }
        let clients = client_addrs.iter().map(|_| None).collect();
        Ok(RoutedClient {
            map,
            client_addrs,
            clients,
        })
    }

    /// The cluster's partition map.
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// Routes key `k` to `(partition, register, node)`; `None` for keys
    /// outside the universe or registers without holders.
    pub fn route(&self, key: u64) -> Option<(PartitionId, RegisterId, usize)> {
        let (p, x) = self.map.locate(key)?;
        let holders = self.map.holder_nodes(p, x);
        if holders.is_empty() {
            return None;
        }
        // Deterministic spread, shared with the workload generators: one
        // key always talks to one node (session affinity keeps its ops
        // causally chained at that replica).
        let node = holders[key_affinity(key, holders.len())];
        Some((p, x, node))
    }

    fn client(&mut self, node: usize) -> io::Result<&mut ServiceClient> {
        if self.clients[node].is_none() {
            self.clients[node] = Some(ServiceClient::connect(self.client_addrs[node])?);
        }
        // lint: allow(unwrap) the None arm above just filled the slot
        Ok(self.clients[node].as_mut().expect("just connected"))
    }

    /// Runs one operation against `node`'s client, dropping the cached
    /// connection on any I/O error so the next operation redials instead of
    /// reusing a dead stream.
    fn with_client<T>(
        &mut self,
        node: usize,
        op: impl FnOnce(&mut ServiceClient) -> io::Result<T>,
    ) -> io::Result<T> {
        let result = self.client(node).and_then(op);
        if result.is_err() {
            self.clients[node] = None;
        }
        result
    }

    /// Writes `v` under key `k`, shipping `pad` extra payload bytes.
    ///
    /// # Errors
    ///
    /// I/O errors, unroutable keys, and nodes refusing the write all error.
    pub fn write_key_padded(&mut self, key: u64, v: u64, pad: usize) -> io::Result<()> {
        let (p, x, node) = self
            .route(key)
            .ok_or_else(|| protocol_error("key outside the partitioned universe"))?;
        if self.with_client(node, |c| c.write_padded(p, x, v, pad))? {
            Ok(())
        } else {
            Err(protocol_error("routed node refused the write"))
        }
    }

    /// Writes `v` under key `k`.
    pub fn write_key(&mut self, key: u64, v: u64) -> io::Result<()> {
        self.write_key_padded(key, v, 0)
    }

    /// Reads the value under key `k` from a node hosting it.
    pub fn read_key(&mut self, key: u64) -> io::Result<Option<u64>> {
        let (p, x, node) = self
            .route(key)
            .ok_or_else(|| protocol_error("key outside the partitioned universe"))?;
        self.with_client(node, |c| c.read_in(p, x))
    }
}
