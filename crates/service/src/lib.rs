//! A networked TCP deployment of the partially-replicated causal-consistency
//! protocol.
//!
//! The simulator (`prcc-net`) and threaded runtime (`prcc-runtime`) validate
//! the algorithm in one process; this crate takes the same generic
//! [`prcc_clock::Protocol`] replicas across real sockets:
//!
//! * [`wire`] — the length-prefixed binary wire protocol (version 6): a
//!   versioned peer handshake carrying the serialized
//!   [`prcc_graph::PartitionMap`] and answered with the link's
//!   acknowledged resume offset, multi-partition flush frames (one frame
//!   per flush, a `(partition, [(link seq, update)])` section per
//!   partition present) built on [`prcc_clock::WireClock`] /
//!   `Update::encode_wire` and carrying per-update origin issue stamps,
//!   streamed acknowledgement frames, the partition-addressed client
//!   read/write API, and a version-stamped `Metrics` request returning
//!   the node's live [`prcc_telemetry::MetricsSnapshot`].
//! * [`node`] — a partition-routing TCP node: a core protocol thread
//!   owning one [`prcc_core::Replica`] per hosted partition, and a fixed
//!   pool of `prcc-reactor` epoll workers carrying *all* socket I/O —
//!   peer senders that batch updates and pack each flush into a single
//!   multi-partition frame (reconnecting with backoff on link loss and
//!   resending the unacked window), peer receivers, and every client
//!   connection, as non-blocking connection drivers instead of dedicated
//!   threads. With a data dir configured the core appends every
//!   state-mutating input to a `prcc-storage` write-ahead log before
//!   applying it, snapshots periodically, and recovers snapshot + log on
//!   boot — deterministically rebuilding clocks, stores, event logs and
//!   resend windows after a crash.
//! * [`bufpool`] — the size-classed reusable buffer pool behind the
//!   zero-copy hot path: pooled frame reads and in-place flush encodes
//!   lease buffers instead of allocating, with hit/miss/outstanding
//!   telemetry in the node's metric registry.
//! * [`client`] — [`ServiceClient`] (blocking, single-node) and
//!   [`RoutedClient`] (key-routed over the whole cluster).
//! * [`cluster`] — [`LoopbackCluster`]: bind, spawn, drain-to-quiescence,
//!   trace collection, post-hoc per-partition [`prcc_checker`] oracle
//!   verification, and crash/restart fault injection
//!   (`crash_node`/`restart_node`).
//! * [`report`] — the `prcc-load` benchmark report (`BENCH_service.json`),
//!   including the server-side update-lifecycle stage histograms
//!   (visibility latency, pending stall, WAL append, first send) absorbed
//!   from the cluster's merged metrics snapshot.
//! * [`config`] — topology selection shared by the `prcc-serve` /
//!   `prcc-load` binaries.
//!
//! The deployment is event-loop I/O without an async runtime: the hermetic
//! build environment has no tokio, so sockets are multiplexed onto a fixed
//! pool of epoll event-loop threads via the dependency-free `compat/mio`
//! shim and the `prcc-reactor` driver runtime. A node's thread count is a
//! configuration constant (`reactor_threads` workers plus the core loop),
//! independent of how many peers or clients are connected, while the core
//! keeps identical semantics: a run-to-completion loop fed by channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bufpool;
pub mod client;
pub mod cluster;
pub mod config;
pub mod node;
pub mod report;
pub mod wire;

pub use bufpool::{BufPool, Lease};
pub use client::{RoutedClient, ServiceClient};
pub use cluster::LoopbackCluster;
pub use node::{spawn_node, NodeHandle, NodeSeed, ServiceConfig};
pub use report::{BenchReport, LatencySummary, PartitionBench};
pub use wire::{NodeStatus, PartitionCounters, WIRE_VERSION};

pub use prcc_telemetry::MetricsSnapshot;
