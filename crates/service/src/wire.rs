//! The length-prefixed wire protocol (version 6, partition-aware,
//! acknowledged, bounded-memory aware, and observable).
//!
//! Every message is a *frame*: a little-endian `u32` payload length followed
//! by the payload; the first payload byte is a message tag. Peer frames
//! carry batched [`Update`]s (varint-encoded via the lower layers'
//! [`prcc_clock::wire::WireClock`] / [`Update::encode_wire`] codecs); client
//! frames carry the read/write/ops API.
//!
//! Version 2 sharded the register space: every peer batch and every client
//! read/write is tagged with the [`prcc_graph::PartitionId`] it belongs to,
//! and the peer handshake ([`PeerHello`]) opens with a protocol version
//! followed by the full [`PartitionMap`] (hosting table + share-graph
//! assignments). A node refuses peers that speak a different protocol
//! version or run a different partition map — either mismatch would
//! otherwise corrupt delivery predicates or routing silently.
//!
//! Version 3 packs multi-partition flushes: a peer flush touching many
//! partitions ships as one [`encode_multi_batch`] frame carrying
//! `(partition, updates[])` sections in per-partition order, instead of one
//! v2 single-partition frame per partition. Readers still *decode* the v2
//! single-partition batch tag ([`decode_peer_batches`] dispatches on the
//! tag), but the versioned handshake refuses v2 peers outright — a
//! mixed-version cluster fails loudly at connection time rather than
//! half-working.
//!
//! Version 4 makes peer links acknowledged, closing the loss window where
//! frames buffered into a dying socket vanished silently: every update in
//! a multi-batch section carries its per-link sequence number, the
//! acceptor answers each [`PeerHello`] with a [`encode_hello_ack`] frame
//! naming the highest link sequence it has durably received from that
//! peer (the sender resumes — resends from its durable window — right
//! after it), and the receiver streams [`encode_peer_ack`] frames back on
//! the same socket so the sender can prune its window.
//!
//! Version 5 is the bounded-memory protocol: nodes compact their trace
//! logs into [`prcc_checker::TraceCheckpoint`] summaries, so the `Trace`
//! response ships `(checkpoint, live suffix)` per partition instead of the
//! full history, and the status payload grew the memory-boundedness gauges
//! (`wal_bytes`, `snapshot_bytes`, `trace_events`, resend-window peaks).
//!
//! Version 6 makes live clusters inspectable: each update in a
//! multi-partition flush carries its origin's wall-clock *issue stamp*
//! (micros since epoch, varint; 0 = not sampled for lifecycle tracing), so
//! recipients can measure visibility latency and pending-stall without any
//! cross-node coordination, and the client API grew a `Metrics`
//! request/response pair shipping a [`prcc_telemetry::MetricsSnapshot`]
//! (counters, gauges, and mergeable latency histograms). Issue stamps ride
//! the live wire only — WAL records and snapshots still use the stamp-free
//! [`Update::encode_wire`] codec, keeping durable bytes deterministic.
//!
//! Version 7 adds the online consistent-cut audit: a client `Cut`
//! request injects (or polls) a marker token, nodes flood
//! [`encode_cut_marker`] frames down their peer links *in channel order*
//! (the Chandy–Lamport discipline — a marker overtaken by data frames
//! would not delimit a consistent cut), and each node answers with its
//! [`prcc_checker::CutSnapshot`] of per-partition issue/apply frontiers
//! taken at first sight of the token. Markers are fire-and-forget: they
//! carry no link sequence and are not resent, so a marker lost to a
//! severed connection makes the audit *inconclusive* (retried with a
//! fresh token), never wrong.
//!
//! Version 8 rides the event-loop I/O rewrite and adds the *seal
//! barrier*: a multi-partition flush may close with one trailing varint
//! naming the highest link sequence whose update the origin has already
//! retired as acknowledged-by-this-receiver (absent = 0 = no barrier, so
//! barrier-free frames are byte-identical to v7). A receiver seeing a
//! straggler resend at or below the barrier drops it *before* the
//! watermark/dedup machinery — by the barrier's definition the receiver
//! has already acknowledged that sequence, so the skip cannot change
//! watermark state, only save the re-check ([`NodeStatus::barrier_skips`]
//! counts the saves). The status payload also grew the reactor gauges
//! (`reactor_wakeups`, `reactor_events`, `reactor_rearms`,
//! `reactor_outq_hiwat`).
//!
//! Causal timestamps ship counters only; index sets and the partition
//! layout are static configuration carried once in the handshake.

use crate::bufpool::{BufPool, Lease};
use prcc_checker::trace::TraceEvent;
use prcc_checker::{CutSnapshot, PartitionCut, TraceCheckpoint};
use prcc_clock::encoding::{read_varint_at as get_varint, write_varint};
use prcc_clock::WireClock;
use prcc_core::Update;
use prcc_graph::{PartitionId, PartitionMap, RegisterId, ReplicaId, ShareGraph};
use prcc_net::VirtualTime;
use prcc_storage::{decode_trace_checkpoint, encode_trace_checkpoint};
use prcc_telemetry::MetricsSnapshot;
use std::io::{self, Read, Write};

/// The protocol version spoken by this build. Bumped to 2 when frames
/// became partition-tagged, to 3 when peer flushes became single
/// multi-partition frames, to 4 when peer links became acknowledged
/// (sequenced updates, hello-acks, streamed acks), to 5 when trace
/// responses became checkpointed and the status payload grew the
/// memory-boundedness gauges, to 6 when flush sections gained per-update
/// issue stamps and the client API gained `Metrics`, to 7 when the
/// consistent-cut audit landed (peer marker frames, client `Cut`
/// request/response), to 8 when flush frames gained the trailing seal
/// barrier and the status payload the reactor counters; peers at any
/// other version are refused at the handshake.
pub const WIRE_VERSION: u64 = 8;

/// Upper bound on accepted frame payloads (64 MiB) — a garbage or hostile
/// length prefix is refused with a descriptive error *before* any
/// allocation or pool lease happens. Lives in `prcc-reactor` now (the
/// reactor's incremental [`prcc_reactor::FrameDecoder`] enforces it);
/// re-exported here so every wire-level caller keeps its path.
pub use prcc_reactor::MAX_FRAME_BYTES;

// Message tags.
const TAG_PEER_HELLO: u8 = 1;
const TAG_PEER_BATCH: u8 = 2;
const TAG_MULTI_BATCH: u8 = 3;
const TAG_HELLO_ACK: u8 = 4;
const TAG_PEER_ACK: u8 = 5;
/// Peer-frame tag of a consistent-cut marker (v7). Public so fault
/// injectors can recognize markers and preserve their channel position —
/// reordering a marker against data frames would break the cut the audit
/// checks.
pub const TAG_CUT_MARKER: u8 = 6;
const TAG_WRITE: u8 = 16;
const TAG_READ: u8 = 17;
const TAG_STATUS: u8 = 18;
const TAG_TRACE: u8 = 19;
const TAG_SHUTDOWN: u8 = 20;
const TAG_CONFIG: u8 = 21;
const TAG_METRICS: u8 = 22;
const TAG_CUT: u8 = 23;
const TAG_WRITE_ACK: u8 = 32;
const TAG_READ_RESP: u8 = 33;
const TAG_STATUS_RESP: u8 = 34;
const TAG_TRACE_RESP: u8 = 35;
const TAG_BYE: u8 = 36;
const TAG_CONFIG_RESP: u8 = 37;
const TAG_METRICS_RESP: u8 = 38;
const TAG_CUT_RESP: u8 = 39;

/// Writes one frame; returns the bytes put on the wire (payload + prefix).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<usize> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(payload.len() + 4)
}

/// Reads a frame's 4-byte length prefix. `Ok(None)` signals a clean EOF at
/// a frame boundary — zero bytes read. A connection dying *inside* the
/// prefix is a truncated frame and errors, so a half-written prefix is
/// never misreported as a graceful shutdown; a length above
/// [`MAX_FRAME_BYTES`] is refused here, before any buffer is sized.
fn read_frame_len<R: Read>(r: &mut R) -> io::Result<Option<usize>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("connection closed after {got} bytes of a frame length prefix"),
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"),
        ));
    }
    Ok(Some(len))
}

/// Reads one frame into a fresh allocation. `Ok(None)` is a clean EOF at a
/// frame boundary (see [`read_frame_len`] for the truncation and
/// [`MAX_FRAME_BYTES`] rules). The hot paths use [`read_frame_pooled`] /
/// [`read_frame_into`] instead; this stays the simple owned-buffer entry
/// point for handshakes, tools and tests.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let Some(len) = read_frame_len(r)? else {
        return Ok(None);
    };
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// lint: hot-path
/// Reads one frame into a caller-owned buffer (cleared and refilled),
/// returning the payload length — the reuse-a-scratch-`Vec` variant of
/// [`read_frame`] for connections that read many frames back to back.
pub fn read_frame_into<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<Option<usize>> {
    let Some(len) = read_frame_len(r)? else {
        return Ok(None);
    };
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf.as_mut_slice())?;
    Ok(Some(len))
}

/// Reads one frame into a pooled buffer: the length prefix is read first
/// and only then is a right-sized [`Lease`] taken, so a connection idling
/// between frames holds **zero** buffers — the property that keeps RSS
/// bounded under hundreds of mostly-idle client connections. Same EOF,
/// truncation and [`MAX_FRAME_BYTES`] semantics as [`read_frame`].
pub fn read_frame_pooled<R: Read>(r: &mut R, pool: &BufPool) -> io::Result<Option<Lease>> {
    let Some(len) = read_frame_len(r)? else {
        return Ok(None);
    };
    let mut lease = pool.lease(len);
    lease.resize(len, 0);
    r.read_exact(lease.as_mut_slice())?;
    Ok(Some(lease))
}

/// Appends one frame to `out` in place: reserves the 4-byte length slot,
/// lets `body` encode the payload directly after it, then backpatches the
/// slot with the measured payload length. Returns the bytes appended
/// (payload + prefix, matching [`write_frame`]'s accounting); an
/// over-`u32` payload truncates `out` back to where it started and errors.
pub fn append_frame<F: FnOnce(&mut Vec<u8>)>(out: &mut Vec<u8>, body: F) -> io::Result<usize> {
    let slot = out.len();
    out.extend_from_slice(&[0u8; 4]);
    body(out);
    let payload_len = out.len() - slot - 4;
    let Ok(len) = u32::try_from(payload_len) else {
        out.truncate(slot);
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    };
    out[slot..slot + 4].copy_from_slice(&len.to_le_bytes());
    Ok(payload_len + 4)
}
// lint: end-hot-path

fn bad_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Serializes a share graph as per-replica register assignments.
pub fn encode_share_graph(g: &ShareGraph, out: &mut Vec<u8>) {
    let assignments = g.assignments();
    write_varint(out, assignments.len() as u64);
    for regs in &assignments {
        write_varint(out, regs.len() as u64);
        for r in regs {
            write_varint(out, u64::from(r.0));
        }
    }
}

/// Decodes a share graph encoded by [`encode_share_graph`].
pub fn decode_share_graph(buf: &[u8], at: &mut usize) -> io::Result<ShareGraph> {
    let replicas = get_varint(buf, at)? as usize;
    if replicas > 1 << 20 {
        return Err(bad_data("absurd replica count"));
    }
    let mut assignments = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let count = get_varint(buf, at)? as usize;
        let mut regs = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let r = u32::try_from(get_varint(buf, at)?).map_err(|_| bad_data("register id"))?;
            regs.push(RegisterId(r));
        }
        assignments.push(regs);
    }
    ShareGraph::from_assignments(assignments).map_err(|e| bad_data(&format!("share graph: {e:?}")))
}

/// Serializes a partition map: the per-partition share graph, the node
/// count, and the hosting table.
pub fn encode_partition_map(map: &PartitionMap, out: &mut Vec<u8>) {
    encode_share_graph(map.graph(), out);
    write_varint(out, map.num_nodes() as u64);
    write_varint(out, u64::from(map.num_partitions()));
    for row in map.hosts() {
        for &node in row {
            write_varint(out, node as u64);
        }
    }
}

/// Decodes a partition map encoded by [`encode_partition_map`], revalidating
/// the hosting table.
pub fn decode_partition_map(buf: &[u8], at: &mut usize) -> io::Result<PartitionMap> {
    let graph = decode_share_graph(buf, at)?;
    let nodes = get_varint(buf, at)? as usize;
    let partitions = get_varint(buf, at)? as usize;
    if partitions > 1 << 20 {
        return Err(bad_data("absurd partition count"));
    }
    let roles = graph.num_replicas();
    let mut hosts = Vec::with_capacity(partitions);
    for _ in 0..partitions {
        let mut row = Vec::with_capacity(roles);
        for _ in 0..roles {
            row.push(get_varint(buf, at)? as usize);
        }
        hosts.push(row);
    }
    PartitionMap::from_parts(graph, nodes, hosts)
        .map_err(|e| bad_data(&format!("partition map: {e}")))
}

/// The peer handshake: protocol version, the dialing node, and the dialer's
/// full partition map (which must match the acceptor's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerHello {
    /// The dialing node's index in the partition map.
    pub node: usize,
    /// The dialer's sharding configuration.
    pub map: PartitionMap,
}

/// Encodes a [`PeerHello`] frame payload (always at [`WIRE_VERSION`]).
pub fn encode_peer_hello(hello: &PeerHello) -> Vec<u8> {
    let mut out = vec![TAG_PEER_HELLO];
    write_varint(&mut out, WIRE_VERSION);
    write_varint(&mut out, hello.node as u64);
    encode_partition_map(&hello.map, &mut out);
    out
}

/// Decodes a [`PeerHello`] frame payload, refusing other protocol versions.
pub fn decode_peer_hello(payload: &[u8]) -> io::Result<PeerHello> {
    let mut at = 0;
    if payload.first() != Some(&TAG_PEER_HELLO) {
        return Err(bad_data("expected peer hello"));
    }
    at += 1;
    let version = get_varint(payload, &mut at)?;
    if version != WIRE_VERSION {
        return Err(bad_data(&format!(
            "wire protocol version mismatch: peer speaks v{version}, this node v{WIRE_VERSION}"
        )));
    }
    let node = get_varint(payload, &mut at)? as usize;
    let map = decode_partition_map(payload, &mut at)?;
    Ok(PeerHello { node, map })
}

/// Encodes the acceptor's answer to a [`PeerHello`]: the highest link
/// sequence it has durably received from the dialing peer (0 = nothing),
/// which is where the dialer resumes its update stream.
pub fn encode_hello_ack(acked: u64) -> Vec<u8> {
    let mut out = Vec::new();
    encode_hello_ack_into(acked, &mut out);
    out
}

/// The append-into variant of [`encode_hello_ack`].
// lint: hot-path
pub fn encode_hello_ack_into(acked: u64, out: &mut Vec<u8>) {
    out.push(TAG_HELLO_ACK);
    write_varint(out, acked);
}
// lint: end-hot-path

/// Decodes a hello-ack frame payload into the acknowledged link sequence.
pub fn decode_hello_ack(payload: &[u8]) -> io::Result<u64> {
    let mut at = 1;
    if payload.first() != Some(&TAG_HELLO_ACK) {
        return Err(bad_data("expected hello ack"));
    }
    let acked = get_varint(payload, &mut at)?;
    if at != payload.len() {
        return Err(bad_data("trailing bytes in hello ack"));
    }
    Ok(acked)
}

/// Encodes a streamed acknowledgement: the receiver has durably received
/// every update of this link up to and including sequence `seq`.
pub fn encode_peer_ack(seq: u64) -> Vec<u8> {
    let mut out = Vec::new();
    encode_peer_ack_into(seq, &mut out);
    out
}

/// The append-into variant of [`encode_peer_ack`] — the ack writer thread
/// re-encodes into one leased buffer instead of allocating per ack.
// lint: hot-path
pub fn encode_peer_ack_into(seq: u64, out: &mut Vec<u8>) {
    out.push(TAG_PEER_ACK);
    write_varint(out, seq);
}
// lint: end-hot-path

/// Decodes a streamed acknowledgement frame payload.
pub fn decode_peer_ack(payload: &[u8]) -> io::Result<u64> {
    let mut at = 1;
    if payload.first() != Some(&TAG_PEER_ACK) {
        return Err(bad_data("expected peer ack"));
    }
    let seq = get_varint(payload, &mut at)?;
    if at != payload.len() {
        return Err(bad_data("trailing bytes in peer ack"));
    }
    Ok(seq)
}

/// Encodes a batch of updates of one partition into one peer frame payload
/// (the v2 single-partition framing, kept for compatibility decoding and
/// tests — v3 senders emit [`encode_multi_batch`] frames).
/// `pad` zero bytes ride along with each update, simulating larger
/// application values.
pub fn encode_batch<C: WireClock>(
    partition: PartitionId,
    updates: &[Update<C>],
    pad: usize,
) -> Vec<u8> {
    let mut out = vec![TAG_PEER_BATCH];
    write_varint(&mut out, u64::from(partition.0));
    write_varint(&mut out, updates.len() as u64);
    encode_updates(updates, pad, &mut out);
    out
}

/// Decodes a peer batch into its partition tag and updates; `make_clock`
/// maps issuer roles to template clocks (see [`Update::decode_wire`]).
pub fn decode_batch<C, F>(
    payload: &[u8],
    mut make_clock: F,
) -> io::Result<(PartitionId, Vec<Update<C>>)>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    let mut at = 0;
    if payload.first() != Some(&TAG_PEER_BATCH) {
        return Err(bad_data("expected update batch"));
    }
    at += 1;
    let partition =
        u32::try_from(get_varint(payload, &mut at)?).map_err(|_| bad_data("partition id"))?;
    let count = get_varint(payload, &mut at)? as usize;
    let updates = decode_updates(payload, &mut at, count, &mut make_clock)?;
    if at != payload.len() {
        return Err(bad_data("trailing bytes in batch"));
    }
    Ok((PartitionId(partition), updates))
}

// lint: hot-path
fn encode_updates<C: WireClock>(updates: &[Update<C>], pad: usize, out: &mut Vec<u8>) {
    for u in updates {
        u.encode_wire(out);
        write_varint(out, pad as u64);
        out.resize(out.len() + pad, 0);
    }
}

fn encode_seq_updates<C: WireClock>(updates: &[(u64, Update<C>)], pad: usize, out: &mut Vec<u8>) {
    for (seq, u) in updates {
        write_varint(out, *seq);
        // v6: the origin's wall-clock issue stamp (micros since epoch)
        // rides next to the sequence so recipients can derive visibility
        // latency locally. 0 = the update was not sampled for tracing.
        // `Update::encode_wire` deliberately omits it — the same codec
        // writes WAL receipts and snapshots, which must stay free of
        // wall-clock bytes.
        write_varint(out, u.issued_at.0);
        u.encode_wire(out);
        write_varint(out, pad as u64);
        out.resize(out.len() + pad, 0);
    }
}
// lint: end-hot-path

fn decode_seq_updates<C, F>(
    payload: &[u8],
    at: &mut usize,
    count: usize,
    make_clock: &mut F,
) -> io::Result<Vec<(u64, Update<C>)>>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    let mut updates = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let seq = get_varint(payload, at)?;
        let stamp = get_varint(payload, at)?;
        let mut u = Update::decode_wire(payload, at, &mut *make_clock)
            .ok_or_else(|| bad_data("malformed update"))?;
        u.issued_at = VirtualTime(stamp);
        let pad = get_varint(payload, at)? as usize;
        if payload.len() - *at < pad {
            return Err(bad_data("truncated pad"));
        }
        *at += pad;
        updates.push((seq, u));
    }
    Ok(updates)
}

fn decode_updates<C, F>(
    payload: &[u8],
    at: &mut usize,
    count: usize,
    make_clock: &mut F,
) -> io::Result<Vec<Update<C>>>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    let mut updates = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let u = Update::decode_wire(payload, at, &mut *make_clock)
            .ok_or_else(|| bad_data("malformed update"))?;
        let pad = get_varint(payload, at)? as usize;
        if payload.len() - *at < pad {
            return Err(bad_data("truncated pad"));
        }
        *at += pad;
        updates.push(u);
    }
    Ok(updates)
}

/// The sections of one peer flush frame: per partition present, its
/// updates in order, each tagged with the per-link sequence number driving
/// acknowledgement and resend (0 = unsequenced legacy traffic).
pub type FlushSections<C> = Vec<(PartitionId, Vec<(u64, Update<C>)>)>;

/// Encodes one whole peer flush — updates of *every* partition present — as
/// a single frame payload: a section count followed by `(partition,
/// [(link seq, update)])` sections. Empty sections are skipped (the
/// decoder rejects them), section order and per-partition update order are
/// preserved, and `pad` zero bytes ride along with each update as in
/// [`encode_batch`]. Since v4 every update carries the per-link sequence
/// number driving acknowledgement and resend.
///
/// This copy-assemble form is kept as the *reference implementation*: the
/// hot path encodes with [`encode_multi_batch_into`] straight into a
/// leased frame buffer, and a property test holds the two byte-for-byte
/// equal on arbitrary sections — the guarantee that v6 peers and existing
/// WAL/snapshot files interoperate with the in-place encoder unchanged.
pub fn encode_multi_batch<C: WireClock>(sections: &FlushSections<C>, pad: usize) -> Vec<u8> {
    let mut out = vec![TAG_MULTI_BATCH];
    let live = sections.iter().filter(|(_, updates)| !updates.is_empty());
    write_varint(&mut out, live.clone().count() as u64);
    for (partition, updates) in live {
        write_varint(&mut out, u64::from(partition.0));
        write_varint(&mut out, updates.len() as u64);
        encode_seq_updates(updates, pad, &mut out);
    }
    out
}

/// The in-place variant of [`encode_multi_batch`]: appends the identical
/// payload bytes to `out` (typically a leased frame buffer with the length
/// slot already reserved by [`append_frame`]) without assembling an owned
/// `Vec` first.
// lint: hot-path
pub fn encode_multi_batch_into<C: WireClock>(
    sections: &FlushSections<C>,
    pad: usize,
    out: &mut Vec<u8>,
) {
    encode_multi_batch_sealed_into(sections, pad, 0, out);
}
// lint: end-hot-path

/// The v8 flush encoder: [`encode_multi_batch_into`] plus the trailing
/// seal barrier. A zero barrier is *omitted* (not encoded as a zero
/// varint), keeping barrier-free frames byte-identical to v7 — the WAL
/// receipt codec and every pre-v8 byte-level test rely on that.
// lint: hot-path
pub fn encode_multi_batch_sealed_into<C: WireClock>(
    sections: &FlushSections<C>,
    pad: usize,
    barrier: u64,
    out: &mut Vec<u8>,
) {
    out.push(TAG_MULTI_BATCH);
    let live = sections.iter().filter(|(_, updates)| !updates.is_empty());
    // lint: allow(alloc) clones the filter iterator (two pointers), no buffer
    write_varint(out, live.clone().count() as u64);
    for (partition, updates) in live {
        write_varint(out, u64::from(partition.0));
        write_varint(out, updates.len() as u64);
        encode_seq_updates(updates, pad, out);
    }
    if barrier > 0 {
        write_varint(out, barrier);
    }
}
// lint: end-hot-path

/// Decodes a multi-partition flush frame into its `(partition,
/// [(link seq, update)])` sections, in wire order. Frames with no sections
/// or with an empty section are malformed — a well-formed sender never
/// produces them, so they indicate corruption. A v8 trailing seal barrier,
/// if present, is validated and dropped; callers that consume the barrier
/// use [`decode_sealed_batches`].
pub fn decode_multi_batch<C, F>(payload: &[u8], make_clock: F) -> io::Result<FlushSections<C>>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    decode_multi_batch_sealed(payload, make_clock).map(|(sections, _)| sections)
}

/// [`decode_multi_batch`] plus the optional trailing seal barrier
/// (0 when absent, i.e. a v7-shaped frame).
fn decode_multi_batch_sealed<C, F>(
    payload: &[u8],
    mut make_clock: F,
) -> io::Result<(FlushSections<C>, u64)>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    let mut at = 0;
    if payload.first() != Some(&TAG_MULTI_BATCH) {
        return Err(bad_data("expected multi-partition batch"));
    }
    at += 1;
    let count = get_varint(payload, &mut at)? as usize;
    if count == 0 {
        return Err(bad_data("multi-batch with no sections"));
    }
    if count > 1 << 20 {
        return Err(bad_data("absurd section count"));
    }
    let mut sections = Vec::with_capacity(count.min(1 << 10));
    for _ in 0..count {
        let partition =
            u32::try_from(get_varint(payload, &mut at)?).map_err(|_| bad_data("partition id"))?;
        let updates = get_varint(payload, &mut at)? as usize;
        if updates == 0 {
            return Err(bad_data("empty multi-batch section"));
        }
        let updates = decode_seq_updates(payload, &mut at, updates, &mut make_clock)?;
        sections.push((PartitionId(partition), updates));
    }
    let barrier = if at != payload.len() {
        get_varint(payload, &mut at)?
    } else {
        0
    };
    if at != payload.len() {
        return Err(bad_data("trailing bytes in multi-batch"));
    }
    Ok((sections, barrier))
}

/// Decodes any peer update frame — the v4 multi-partition framing or the
/// legacy v2 single-partition batch — into a uniform section list. The v2
/// arm exists for compatibility tooling and tests (its updates carry no
/// link sequence, reported as 0 = unsequenced); live v2 *peers* never get
/// this far, the versioned [`PeerHello`] refuses them first.
pub fn decode_peer_batches<C, F>(payload: &[u8], make_clock: F) -> io::Result<FlushSections<C>>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    match payload.first() {
        Some(&TAG_MULTI_BATCH) => decode_multi_batch(payload, make_clock),
        Some(&TAG_PEER_BATCH) => decode_batch(payload, make_clock).map(|(partition, updates)| {
            vec![(partition, updates.into_iter().map(|u| (0, u)).collect())]
        }),
        _ => Err(bad_data("unknown peer frame tag")),
    }
}

/// [`decode_peer_batches`] plus the v8 seal barrier: the origin's highest
/// link sequence already acknowledged by this receiver at encode time
/// (0 when absent — barrier-free v8 frames and all legacy framings). The
/// node's receive path consumes the barrier to fast-drop straggler
/// deliveries of already-sealed issues without a watermark re-check.
pub fn decode_sealed_batches<C, F>(
    payload: &[u8],
    make_clock: F,
) -> io::Result<(FlushSections<C>, u64)>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    match payload.first() {
        Some(&TAG_MULTI_BATCH) => decode_multi_batch_sealed(payload, make_clock),
        Some(&TAG_PEER_BATCH) => decode_batch(payload, make_clock).map(|(partition, updates)| {
            (
                vec![(partition, updates.into_iter().map(|u| (0, u)).collect())],
                0,
            )
        }),
        _ => Err(bad_data("unknown peer frame tag")),
    }
}

/// Encodes a consistent-cut marker peer frame (v7): the tag and the cut
/// token. Markers are unsequenced — they delimit the channel at the
/// position they are sent, outside the acknowledged update stream — and
/// are never resent after a reconnect (a lost marker makes the audit
/// inconclusive, not wrong).
pub fn encode_cut_marker(token: u64) -> Vec<u8> {
    let mut out = vec![TAG_CUT_MARKER];
    write_varint(&mut out, token);
    out
}

/// Decodes a consistent-cut marker frame into its token.
pub fn decode_cut_marker(payload: &[u8]) -> io::Result<u64> {
    if payload.first() != Some(&TAG_CUT_MARKER) {
        return Err(bad_data("not a cut marker frame"));
    }
    let mut at = 1;
    let token = get_varint(payload, &mut at)?;
    if at != payload.len() {
        return Err(bad_data("trailing bytes in cut marker"));
    }
    Ok(token)
}

/// Encodes a [`CutSnapshot`] (the `Cut` response body).
fn encode_cut_snapshot(snap: &CutSnapshot, out: &mut Vec<u8>) {
    write_varint(out, snap.node);
    write_varint(out, snap.token);
    write_varint(out, snap.partitions.len() as u64);
    for pc in &snap.partitions {
        write_varint(out, u64::from(pc.partition));
        write_varint(out, pc.role as u64);
        write_varint(out, pc.issued_high);
        write_varint(out, pc.applied.len() as u64);
        for &applied in &pc.applied {
            write_varint(out, applied);
        }
        write_varint(out, pc.pending);
    }
}

fn decode_cut_snapshot(payload: &[u8], at: &mut usize) -> io::Result<CutSnapshot> {
    let node = get_varint(payload, at)?;
    let token = get_varint(payload, at)?;
    let count = get_varint(payload, at)? as usize;
    if count > 1 << 20 {
        return Err(bad_data("absurd cut partition count"));
    }
    let mut partitions = Vec::with_capacity(count.min(1 << 10));
    for _ in 0..count {
        let partition =
            u32::try_from(get_varint(payload, at)?).map_err(|_| bad_data("partition id"))?;
        let role = get_varint(payload, at)? as usize;
        let issued_high = get_varint(payload, at)?;
        let roles = get_varint(payload, at)? as usize;
        if roles > 1 << 20 {
            return Err(bad_data("absurd cut role count"));
        }
        let mut applied = Vec::with_capacity(roles.min(1 << 10));
        for _ in 0..roles {
            applied.push(get_varint(payload, at)?);
        }
        let pending = get_varint(payload, at)?;
        partitions.push(PartitionCut {
            partition,
            role,
            issued_high,
            applied,
            pending,
        });
    }
    Ok(CutSnapshot {
        node,
        token,
        partitions,
    })
}

/// A client-API request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientRequest {
    /// `write(x, v)` in one partition, with `pad` extra payload bytes.
    Write {
        /// Target partition.
        partition: PartitionId,
        /// Target register within the partition.
        register: RegisterId,
        /// Value to write.
        value: u64,
        /// Simulated extra value bytes.
        pad: usize,
    },
    /// `read(x)` in one partition.
    Read {
        /// Target partition.
        partition: PartitionId,
        /// Register to read.
        register: RegisterId,
    },
    /// Counters snapshot.
    Status,
    /// The node's local event logs, grouped by partition.
    Trace,
    /// The node's sharding configuration (version + partition map), for
    /// clients that route by key.
    Config,
    /// The node's live metric snapshot: counters, gauges, and per-stage
    /// latency histograms (v6).
    Metrics,
    /// Consistent-cut audit (v7). With `start`, the node snapshots its
    /// frontiers for `token` (if it has not already seen it) and floods
    /// markers to its peers; either way the response carries the node's
    /// snapshot for `token` if it has one.
    Cut {
        /// The cut token identifying this audit round.
        token: u64,
        /// Initiate the cut here (false = just poll for the snapshot).
        start: bool,
    },
    /// Graceful node shutdown.
    Shutdown,
}

/// Encodes a client request payload.
pub fn encode_request(req: &ClientRequest) -> Vec<u8> {
    let mut out = Vec::new();
    encode_request_into(req, &mut out);
    out
}

/// The append-into variant of [`encode_request`] — [`crate::ServiceClient`]
/// re-encodes every request into one reusable buffer instead of allocating
/// per round trip.
// lint: hot-path
pub fn encode_request_into(req: &ClientRequest, out: &mut Vec<u8>) {
    match req {
        ClientRequest::Write {
            partition,
            register,
            value,
            pad,
        } => {
            out.push(TAG_WRITE);
            write_varint(out, u64::from(partition.0));
            write_varint(out, u64::from(register.0));
            write_varint(out, *value);
            write_varint(out, *pad as u64);
            out.resize(out.len() + pad, 0);
        }
        ClientRequest::Read {
            partition,
            register,
        } => {
            out.push(TAG_READ);
            write_varint(out, u64::from(partition.0));
            write_varint(out, u64::from(register.0));
        }
        ClientRequest::Status => out.push(TAG_STATUS),
        ClientRequest::Trace => out.push(TAG_TRACE),
        ClientRequest::Config => out.push(TAG_CONFIG),
        ClientRequest::Metrics => out.push(TAG_METRICS),
        ClientRequest::Cut { token, start } => {
            out.push(TAG_CUT);
            out.push(u8::from(*start));
            write_varint(out, *token);
        }
        ClientRequest::Shutdown => out.push(TAG_SHUTDOWN),
    }
}
// lint: end-hot-path

/// Decodes a client request payload.
pub fn decode_request(payload: &[u8]) -> io::Result<ClientRequest> {
    let mut at = 1;
    match payload.first() {
        Some(&TAG_WRITE) => {
            let partition = u32::try_from(get_varint(payload, &mut at)?)
                .map_err(|_| bad_data("partition id"))?;
            let register = u32::try_from(get_varint(payload, &mut at)?)
                .map_err(|_| bad_data("register id"))?;
            let value = get_varint(payload, &mut at)?;
            let pad = get_varint(payload, &mut at)? as usize;
            if payload.len() - at < pad {
                return Err(bad_data("truncated write pad"));
            }
            Ok(ClientRequest::Write {
                partition: PartitionId(partition),
                register: RegisterId(register),
                value,
                pad,
            })
        }
        Some(&TAG_READ) => {
            let partition = u32::try_from(get_varint(payload, &mut at)?)
                .map_err(|_| bad_data("partition id"))?;
            let register = u32::try_from(get_varint(payload, &mut at)?)
                .map_err(|_| bad_data("register id"))?;
            Ok(ClientRequest::Read {
                partition: PartitionId(partition),
                register: RegisterId(register),
            })
        }
        Some(&TAG_STATUS) => Ok(ClientRequest::Status),
        Some(&TAG_TRACE) => Ok(ClientRequest::Trace),
        Some(&TAG_CONFIG) => Ok(ClientRequest::Config),
        Some(&TAG_METRICS) => Ok(ClientRequest::Metrics),
        Some(&TAG_CUT) => {
            let start = *payload.get(1).ok_or_else(|| bad_data("cut start flag"))? == 1;
            at = 2;
            let token = get_varint(payload, &mut at)?;
            Ok(ClientRequest::Cut { token, start })
        }
        Some(&TAG_SHUTDOWN) => Ok(ClientRequest::Shutdown),
        _ => Err(bad_data("unknown client request")),
    }
}

/// Per-partition slice of a node's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionCounters {
    /// Updates issued by clients into this partition at this node.
    pub issued: u64,
    /// Remote updates applied in this partition at this node.
    pub applies: u64,
    /// Updates buffered in this partition's pending set.
    pub pending: u64,
}

/// A node's counter snapshot, returned by [`ClientRequest::Status`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStatus {
    /// The reporting node.
    pub node: u64,
    /// Updates issued by clients of this node (all partitions).
    pub issued: u64,
    /// Update copies handed to peer senders.
    pub messages_sent: u64,
    /// Update copies decoded from peers.
    pub messages_received: u64,
    /// Remote updates applied (all partitions).
    pub applies: u64,
    /// Updates currently buffered (predicate `J` not yet satisfied).
    pub pending: u64,
    /// Duplicate deliveries dropped.
    pub duplicates_dropped: u64,
    /// Updates dropped because a peer routed them to a partition this node
    /// does not host (nonzero only under a routing bug).
    pub dropped_misrouted: u64,
    /// Bytes written to peer sockets (frames included).
    pub bytes_out: u64,
    /// Bytes read from peer sockets (frames included).
    pub bytes_in: u64,
    /// Per-partition update runs shipped to peers (one run per partition
    /// present in a flush — the v2 "batch" unit, kept so `updates_per_batch`
    /// stays comparable across versions).
    pub batches_sent: u64,
    /// Peer update frames written. With v3 multi-partition framing every
    /// flush is one frame, so `frames_sent <= batches_sent`; the gap is the
    /// framing overhead v3 amortizes away.
    pub frames_sent: u64,
    /// Sender flush cycles, counted when a drained batch exists — before
    /// (and independently of) the frame write succeeding, so
    /// frames-per-flush stays an honest ratio of two separately
    /// instrumented events.
    pub flushes: u64,
    /// Update copies resent from the durable window after a reconnect
    /// (zero on a healthy link).
    pub resent: u64,
    /// WAL records appended since this process started (0 when running
    /// without a data dir).
    pub wal_appends: u64,
    /// Snapshots written since this process started.
    pub snapshots_written: u64,
    /// Current WAL size in bytes (0 without a data dir). Bounded by the
    /// snapshot cadence: every snapshot truncates the log.
    pub wal_bytes: u64,
    /// Payload size of the most recent snapshot in bytes. With
    /// checkpointed trace compaction this stays O(live state) — flat over
    /// the run length, which the load harness gates on.
    pub snapshot_bytes: u64,
    /// Payload size of the first snapshot this process wrote (the baseline
    /// for the flat-snapshot regression gate).
    pub first_snapshot_bytes: u64,
    /// Live (uncompacted) trace events across hosted partitions.
    pub trace_events: u64,
    /// Trace events sealed into checkpoint summaries and discarded.
    pub sealed_events: u64,
    /// Largest per-peer resend window observed since this process started.
    pub max_window: u64,
    /// Window entries evicted by the per-peer cap (nonzero only when a
    /// peer was stranded past `window_cap` unacknowledged updates).
    pub window_evicted: u64,
    /// Reactor worker wakeups (epoll_wait returns) since start (v8).
    pub reactor_wakeups: u64,
    /// Readiness events delivered across all wakeups (v8);
    /// `reactor_events / reactor_wakeups` is the batching ratio.
    pub reactor_events: u64,
    /// Interest re-arms after a partial (`WouldBlock`) flush (v8) — each
    /// is a write the event loop parked instead of blocking a thread on.
    pub reactor_rearms: u64,
    /// High-water mark of any single connection's outbound queue in bytes
    /// (v8); the backpressure bound caps this.
    pub reactor_outq_hiwat: u64,
    /// Straggler update deliveries fast-dropped by the seal barrier
    /// without a watermark re-check (v8).
    pub barrier_skips: u64,
    /// Counters broken out per partition, indexed by partition id.
    pub per_partition: Vec<PartitionCounters>,
}

impl NodeStatus {
    fn fields(&self) -> [u64; 28] {
        [
            self.node,
            self.issued,
            self.messages_sent,
            self.messages_received,
            self.applies,
            self.pending,
            self.duplicates_dropped,
            self.dropped_misrouted,
            self.bytes_out,
            self.bytes_in,
            self.batches_sent,
            self.frames_sent,
            self.flushes,
            self.resent,
            self.wal_appends,
            self.snapshots_written,
            self.wal_bytes,
            self.snapshot_bytes,
            self.first_snapshot_bytes,
            self.trace_events,
            self.sealed_events,
            self.max_window,
            self.window_evicted,
            self.reactor_wakeups,
            self.reactor_events,
            self.reactor_rearms,
            self.reactor_outq_hiwat,
            self.barrier_skips,
        ]
    }

    fn from_fields(f: [u64; 28]) -> Self {
        NodeStatus {
            node: f[0],
            issued: f[1],
            messages_sent: f[2],
            messages_received: f[3],
            applies: f[4],
            pending: f[5],
            duplicates_dropped: f[6],
            dropped_misrouted: f[7],
            bytes_out: f[8],
            bytes_in: f[9],
            batches_sent: f[10],
            frames_sent: f[11],
            flushes: f[12],
            resent: f[13],
            wal_appends: f[14],
            snapshots_written: f[15],
            wal_bytes: f[16],
            snapshot_bytes: f[17],
            first_snapshot_bytes: f[18],
            trace_events: f[19],
            sealed_events: f[20],
            max_window: f[21],
            window_evicted: f[22],
            reactor_wakeups: f[23],
            reactor_events: f[24],
            reactor_rearms: f[25],
            reactor_outq_hiwat: f[26],
            barrier_skips: f[27],
            per_partition: Vec::new(),
        }
    }
}

/// A client-API response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientResponse {
    /// Result of a write (`false`: the node does not host the register in
    /// that partition).
    WriteAck {
        /// Whether the write was accepted.
        ok: bool,
    },
    /// Result of a read (`ok = false`: not hosted here).
    ReadResp {
        /// Whether the node hosts the register in that partition.
        ok: bool,
        /// The value, if any write has reached this node.
        value: Option<u64>,
    },
    /// Counter snapshot.
    Status(NodeStatus),
    /// The node's local event logs, indexed by partition id: per
    /// partition, the sealed-prefix checkpoint summary plus the live
    /// suffix (v5 — a compacting node no longer retains full history).
    Trace(Vec<(TraceCheckpoint, Vec<TraceEvent>)>),
    /// The node's sharding configuration.
    Config {
        /// Wire protocol version the node speaks.
        version: u64,
        /// The partition map the node is deployed under.
        map: PartitionMap,
    },
    /// Live metric snapshot (v6): counters, gauges, and per-stage latency
    /// histograms, mergeable across nodes.
    Metrics(MetricsSnapshot),
    /// The node's cut snapshot for the requested token, if it has taken
    /// one (v7); `None` = the marker has not reached this node yet.
    Cut(Option<CutSnapshot>),
    /// Shutdown acknowledged.
    Bye,
}

/// Encodes a client response payload.
pub fn encode_response(resp: &ClientResponse) -> Vec<u8> {
    let mut out = Vec::new();
    encode_response_into(resp, &mut out);
    out
}

/// The append-into variant of [`encode_response`] — client handlers encode
/// each response straight into a leased frame buffer.
// lint: hot-path
pub fn encode_response_into(resp: &ClientResponse, out: &mut Vec<u8>) {
    match resp {
        ClientResponse::WriteAck { ok } => out.extend_from_slice(&[TAG_WRITE_ACK, u8::from(*ok)]),
        ClientResponse::ReadResp { ok, value } => {
            out.extend_from_slice(&[TAG_READ_RESP, u8::from(*ok), u8::from(value.is_some())]);
            write_varint(out, value.unwrap_or(0));
        }
        ClientResponse::Status(status) => {
            // The status field set changes across wire versions (v3 added
            // frames_sent/flushes/dropped_misrouted, v4 added
            // resent/wal_appends/snapshots_written), so the payload opens
            // with the version: a client built against another version
            // fails loudly instead of misparsing shifted varints.
            out.push(TAG_STATUS_RESP);
            write_varint(out, WIRE_VERSION);
            for v in status.fields() {
                write_varint(out, v);
            }
            write_varint(out, status.per_partition.len() as u64);
            for pc in &status.per_partition {
                write_varint(out, pc.issued);
                write_varint(out, pc.applies);
                write_varint(out, pc.pending);
            }
        }
        ClientResponse::Trace(partitions) => {
            out.push(TAG_TRACE_RESP);
            write_varint(out, partitions.len() as u64);
            for (checkpoint, events) in partitions {
                encode_trace_checkpoint(checkpoint, out);
                write_varint(out, events.len() as u64);
                for event in events {
                    match *event {
                        TraceEvent::Issue {
                            replica,
                            register,
                            update,
                        } => {
                            out.push(0);
                            write_varint(out, replica.index() as u64);
                            write_varint(out, u64::from(register.0));
                            write_varint(out, update);
                        }
                        TraceEvent::Apply { replica, update } => {
                            out.push(1);
                            write_varint(out, replica.index() as u64);
                            write_varint(out, update);
                        }
                    }
                }
            }
        }
        ClientResponse::Config { version, map } => {
            out.push(TAG_CONFIG_RESP);
            write_varint(out, *version);
            encode_partition_map(map, out);
        }
        ClientResponse::Metrics(snapshot) => {
            // Version-stamped like Status: metric names and histogram
            // bucketing are a per-version contract, so a cross-version
            // scrape fails loudly instead of merging incompatible data.
            out.push(TAG_METRICS_RESP);
            write_varint(out, WIRE_VERSION);
            snapshot.encode(out);
        }
        ClientResponse::Cut(snapshot) => {
            out.push(TAG_CUT_RESP);
            write_varint(out, WIRE_VERSION);
            out.push(u8::from(snapshot.is_some()));
            if let Some(snap) = snapshot {
                encode_cut_snapshot(snap, out);
            }
        }
        ClientResponse::Bye => out.push(TAG_BYE),
    }
}
// lint: end-hot-path

/// Decodes a client response payload.
pub fn decode_response(payload: &[u8]) -> io::Result<ClientResponse> {
    let mut at = 1;
    match payload.first() {
        Some(&TAG_WRITE_ACK) => Ok(ClientResponse::WriteAck {
            ok: payload.get(1) == Some(&1),
        }),
        Some(&TAG_READ_RESP) => {
            let ok = payload.get(1) == Some(&1);
            let present = payload.get(2) == Some(&1);
            at = 3;
            let value = get_varint(payload, &mut at)?;
            Ok(ClientResponse::ReadResp {
                ok,
                value: present.then_some(value),
            })
        }
        Some(&TAG_STATUS_RESP) => {
            let version = get_varint(payload, &mut at)?;
            if version != WIRE_VERSION {
                return Err(bad_data(&format!(
                    "status response version mismatch: node speaks v{version}, \
                     this client v{WIRE_VERSION}"
                )));
            }
            let mut fields = [0u64; 28];
            for f in &mut fields {
                *f = get_varint(payload, &mut at)?;
            }
            let mut status = NodeStatus::from_fields(fields);
            let parts = get_varint(payload, &mut at)? as usize;
            status.per_partition = Vec::with_capacity(parts.min(1 << 20));
            for _ in 0..parts {
                status.per_partition.push(PartitionCounters {
                    issued: get_varint(payload, &mut at)?,
                    applies: get_varint(payload, &mut at)?,
                    pending: get_varint(payload, &mut at)?,
                });
            }
            Ok(ClientResponse::Status(status))
        }
        Some(&TAG_TRACE_RESP) => {
            let parts = get_varint(payload, &mut at)? as usize;
            let mut partitions = Vec::with_capacity(parts.min(1 << 20));
            for _ in 0..parts {
                let checkpoint = decode_trace_checkpoint(payload, &mut at)?;
                let count = get_varint(payload, &mut at)? as usize;
                let mut events = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let kind = *payload.get(at).ok_or_else(|| bad_data("event kind"))?;
                    at += 1;
                    let replica = ReplicaId(get_varint(payload, &mut at)? as usize);
                    let event = match kind {
                        0 => {
                            let register = u32::try_from(get_varint(payload, &mut at)?)
                                .map_err(|_| bad_data("register id"))?;
                            let update = get_varint(payload, &mut at)?;
                            TraceEvent::Issue {
                                replica,
                                register: RegisterId(register),
                                update,
                            }
                        }
                        1 => TraceEvent::Apply {
                            replica,
                            update: get_varint(payload, &mut at)?,
                        },
                        _ => return Err(bad_data("unknown event kind")),
                    };
                    events.push(event);
                }
                partitions.push((checkpoint, events));
            }
            Ok(ClientResponse::Trace(partitions))
        }
        Some(&TAG_CONFIG_RESP) => {
            let version = get_varint(payload, &mut at)?;
            let map = decode_partition_map(payload, &mut at)?;
            Ok(ClientResponse::Config { version, map })
        }
        Some(&TAG_METRICS_RESP) => {
            let version = get_varint(payload, &mut at)?;
            if version != WIRE_VERSION {
                return Err(bad_data(&format!(
                    "metrics response version mismatch: node speaks v{version}, \
                     this client v{WIRE_VERSION}"
                )));
            }
            let snapshot = MetricsSnapshot::decode(payload, &mut at)?;
            if at != payload.len() {
                return Err(bad_data("trailing bytes in metrics response"));
            }
            Ok(ClientResponse::Metrics(snapshot))
        }
        Some(&TAG_CUT_RESP) => {
            let version = get_varint(payload, &mut at)?;
            if version != WIRE_VERSION {
                return Err(bad_data(&format!(
                    "cut response version mismatch: node speaks v{version}, \
                     this client v{WIRE_VERSION}"
                )));
            }
            let present = *payload.get(at).ok_or_else(|| bad_data("cut presence"))? == 1;
            at += 1;
            let snapshot = if present {
                let snap = decode_cut_snapshot(payload, &mut at)?;
                if at != payload.len() {
                    return Err(bad_data("trailing bytes in cut response"));
                }
                Some(snap)
            } else {
                None
            };
            Ok(ClientResponse::Cut(snapshot))
        }
        Some(&TAG_BYE) => Ok(ClientResponse::Bye),
        _ => Err(bad_data("unknown client response")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_checker::UpdateId;
    use prcc_clock::{EdgeProtocol, Protocol};
    use prcc_graph::topologies;
    use prcc_net::VirtualTime;

    #[test]
    fn frame_round_trip_and_eof() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(n, 9);
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_length_prefix_is_an_error_not_a_clean_eof() {
        // A peer dying 1-3 bytes into the length prefix must surface as an
        // error; only a close at a frame boundary (0 bytes) is clean.
        for cut in 1..4usize {
            let mut cursor = io::Cursor::new(7u32.to_le_bytes()[..cut].to_vec());
            let err = read_frame(&mut cursor).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
            assert!(
                err.to_string().contains("length prefix"),
                "unexpected error at {cut}: {err}"
            );
        }
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut empty).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        // A hostile/corrupt length prefix must be refused with a
        // descriptive error — by every reader variant, before any
        // allocation or pool lease is attempted.
        let huge = (u32::MAX).to_le_bytes();
        let err = read_frame(&mut io::Cursor::new(huge)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("exceeds MAX_FRAME_BYTES"),
            "undescriptive error: {err}"
        );
        let mut scratch = Vec::new();
        assert!(read_frame_into(&mut io::Cursor::new(huge), &mut scratch).is_err());
        let pool = BufPool::new(&prcc_telemetry::Registry::new());
        assert!(read_frame_pooled(&mut io::Cursor::new(huge), &pool).is_err());
        assert_eq!(pool.outstanding(), 0, "no lease taken for a refused prefix");
        // The largest acceptable prefix is exactly MAX_FRAME_BYTES; one
        // past it is refused (the boundary, with a short body so the
        // accept case fails on EOF, not the bound).
        let over = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        let err = read_frame(&mut io::Cursor::new(over)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let at = (MAX_FRAME_BYTES as u32).to_le_bytes();
        let err = read_frame(&mut io::Cursor::new(at)).unwrap_err();
        assert_eq!(
            err.kind(),
            io::ErrorKind::UnexpectedEof,
            "bound itself accepted"
        );
    }

    #[test]
    fn pooled_and_into_reads_match_the_allocating_reader() {
        // Property: for arbitrary frame sequences, read_frame_pooled and
        // read_frame_into return byte-identical payloads to read_frame,
        // frame by frame, including the clean-EOF boundary.
        let pool = BufPool::new(&prcc_telemetry::Registry::new());
        let mut wire = Vec::new();
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for k in 0..40usize {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let len = (seed % 5000) as usize * (k % 3); // mix of empty and sized
            let body: Vec<u8> = (0..len).map(|i| (seed as usize + i) as u8).collect();
            write_frame(&mut wire, &body).unwrap();
            payloads.push(body);
        }
        let mut a = io::Cursor::new(wire.clone());
        let mut b = io::Cursor::new(wire.clone());
        let mut c = io::Cursor::new(wire);
        let mut scratch = Vec::new();
        for expect in &payloads {
            let plain = read_frame(&mut a).unwrap().unwrap();
            let pooled = read_frame_pooled(&mut b, &pool).unwrap().unwrap();
            let n = read_frame_into(&mut c, &mut scratch).unwrap().unwrap();
            assert_eq!(&plain, expect);
            assert_eq!(&*pooled, expect, "pooled read must equal allocating read");
            assert_eq!(&scratch[..n], &expect[..]);
        }
        assert!(read_frame(&mut a).unwrap().is_none());
        assert!(read_frame_pooled(&mut b, &pool).unwrap().is_none());
        assert!(read_frame_into(&mut c, &mut scratch).unwrap().is_none());
        assert_eq!(pool.outstanding(), 0, "all leases returned");
    }

    #[test]
    fn append_frame_backpatches_the_length_slot() {
        // In-place framing must produce the same bytes as write_frame, and
        // stack correctly after existing content.
        let mut framed = b"prior".to_vec();
        let n = append_frame(&mut framed, |out| out.extend_from_slice(b"payload")).unwrap();
        assert_eq!(n, 11);
        let mut reference = b"prior".to_vec();
        write_frame(&mut reference, b"payload").unwrap();
        assert_eq!(framed, reference);
        // An empty payload frames as just the zero prefix.
        let mut empty = Vec::new();
        assert_eq!(append_frame(&mut empty, |_| {}).unwrap(), 4);
        assert_eq!(empty, vec![0, 0, 0, 0]);
    }

    #[test]
    fn share_graph_round_trip() {
        for g in [
            topologies::ring(5),
            topologies::figure5(),
            topologies::line(2),
        ] {
            let mut out = Vec::new();
            encode_share_graph(&g, &mut out);
            let mut at = 0;
            let back = decode_share_graph(&out, &mut at).unwrap();
            assert_eq!(at, out.len());
            assert_eq!(back, g);
        }
    }

    #[test]
    fn partition_map_round_trip() {
        for map in [
            PartitionMap::single(topologies::ring(4)),
            PartitionMap::rotated(topologies::ring(4), 8, 4).unwrap(),
            PartitionMap::rotated(topologies::line(3), 5, 7).unwrap(),
        ] {
            let mut out = Vec::new();
            encode_partition_map(&map, &mut out);
            let mut at = 0;
            let back = decode_partition_map(&out, &mut at).unwrap();
            assert_eq!(at, out.len());
            assert_eq!(back, map);
        }
    }

    #[test]
    fn hello_round_trip() {
        let hello = PeerHello {
            node: 3,
            map: PartitionMap::rotated(topologies::ring(4), 6, 4).unwrap(),
        };
        let back = decode_peer_hello(&encode_peer_hello(&hello)).unwrap();
        assert_eq!(back, hello);
    }

    #[test]
    fn wrong_version_hello_refused() {
        let hello = PeerHello {
            node: 0,
            map: PartitionMap::single(topologies::ring(4)),
        };
        let mut payload = encode_peer_hello(&hello);
        // The version varint sits right after the tag; WIRE_VERSION is a
        // single byte, so patch it to any older hello — including a v5
        // peer, which predates flush-section issue stamps and would
        // misparse every multi-batch frame.
        assert_eq!(payload[1], WIRE_VERSION as u8);
        for old in [1u8, 2, 3, 4, 5] {
            payload[1] = old;
            let err = decode_peer_hello(&payload).unwrap_err();
            assert!(
                err.to_string().contains("version mismatch"),
                "unexpected error for v{old}: {err}"
            );
        }
    }

    fn sample_updates(
        p: &EdgeProtocol,
        count: u64,
        tag: u64,
    ) -> Vec<Update<prcc_clock::EdgeClock>> {
        let mut updates = Vec::new();
        for k in 0..count {
            let i = ReplicaId(k as usize % 4);
            let mut clock = p.new_clock(i);
            p.advance(i, &mut clock, RegisterId(i.index() as u32));
            updates.push(Update {
                id: UpdateId((u64::from(i.index() as u32) << 40) | (tag << 20) | k),
                issuer: i,
                register: RegisterId(i.index() as u32),
                value: 1000 * (tag + 1) + k,
                clock,
                issued_at: VirtualTime::ZERO,
                received_at: VirtualTime::ZERO,
            });
        }
        updates
    }

    #[test]
    fn batch_round_trip_with_padding() {
        let g = topologies::ring(4);
        let p = EdgeProtocol::new(g);
        let updates = sample_updates(&p, 3, 0);
        for pad in [0usize, 128] {
            let payload = encode_batch(PartitionId(5), &updates, pad);
            let (part, back) = decode_batch(&payload, |i| Some(p.new_clock(i))).unwrap();
            assert_eq!(part, PartitionId(5));
            assert_eq!(back.len(), 3);
            for (a, b) in back.iter().zip(&updates) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.value, b.value);
                assert_eq!(a.clock, b.clock);
            }
            if pad > 0 {
                assert!(payload.len() >= 3 * pad);
            }
        }
    }

    /// A non-empty checkpoint summary for trace-response round trips.
    fn sealed_checkpoint() -> TraceCheckpoint {
        let mut checkpoint = TraceCheckpoint::new(2, 3);
        checkpoint.absorb(
            &[
                TraceEvent::Issue {
                    replica: ReplicaId(0),
                    register: RegisterId(1),
                    update: 7,
                },
                TraceEvent::Apply {
                    replica: ReplicaId(0),
                    update: (1 << 40) | 3,
                },
            ],
            |w| Some(ReplicaId((w >> 40) as usize % 2)),
        );
        checkpoint
    }

    /// Tags updates with consecutive link sequence numbers from `base`,
    /// and stamps every other one with a v6 issue stamp (odd ones stay 0 =
    /// unsampled) so round-trips cover both sampled and unsampled updates.
    fn with_seqs<C>(base: u64, updates: Vec<Update<C>>) -> Vec<(u64, Update<C>)> {
        updates
            .into_iter()
            .enumerate()
            .map(|(k, mut u)| {
                if k % 2 == 0 {
                    u.issued_at = VirtualTime(1_700_000_000_000_000 + base + k as u64);
                }
                (base + k as u64, u)
            })
            .collect()
    }

    #[test]
    fn multi_batch_round_trip_preserves_sections_and_seqs() {
        let g = topologies::ring(4);
        let p = EdgeProtocol::new(g);
        // Deliberately unsorted partition order: the wire must preserve it.
        let sections = vec![
            (PartitionId(6), with_seqs(10, sample_updates(&p, 3, 0))),
            (PartitionId(1), with_seqs(2, sample_updates(&p, 1, 1))),
            (PartitionId(4), with_seqs(90, sample_updates(&p, 5, 2))),
        ];
        for pad in [0usize, 64] {
            let payload = encode_multi_batch(&sections, pad);
            let back = decode_multi_batch(&payload, |i| Some(p.new_clock(i))).unwrap();
            assert_eq!(back.len(), 3);
            for ((bp, bu), (sp, su)) in back.iter().zip(&sections) {
                assert_eq!(bp, sp);
                assert_eq!(bu.len(), su.len());
                for ((aseq, a), (bseq, b)) in bu.iter().zip(su) {
                    assert_eq!(aseq, bseq, "link seq must survive the wire");
                    assert_eq!((a.id, a.value), (b.id, b.value));
                    assert_eq!(a.clock, b.clock);
                    assert_eq!(
                        a.issued_at, b.issued_at,
                        "v6 issue stamp must survive the wire"
                    );
                }
            }
            // The dispatcher takes both framings to the same section shape;
            // legacy v2 batches come back with seq 0 (unsequenced).
            let via_dispatch = decode_peer_batches(&payload, |i| Some(p.new_clock(i))).unwrap();
            assert_eq!(via_dispatch.len(), 3);
            let plain: Vec<_> = sections[0].1.iter().map(|(_, u)| u.clone()).collect();
            let v2 = encode_batch(PartitionId(6), &plain, pad);
            let legacy = decode_peer_batches(&v2, |i| Some(p.new_clock(i))).unwrap();
            assert_eq!(legacy.len(), 1);
            assert_eq!(legacy[0].0, PartitionId(6));
            assert_eq!(legacy[0].1.len(), 3);
            assert!(legacy[0].1.iter().all(|(seq, _)| *seq == 0));
            // Legacy v2 batches carry no issue stamps: unsampled on arrival.
            assert!(legacy[0]
                .1
                .iter()
                .all(|(_, u)| u.issued_at == VirtualTime::ZERO));
        }
    }

    #[test]
    fn in_place_multi_batch_is_byte_identical_to_the_reference_encoder() {
        // Property: on arbitrary sections (empty, skipped-empty, unsorted
        // partitions, mixed sampled/unsampled stamps, varied pads) the
        // in-place encoder appends exactly the bytes the copy-assemble
        // reference produces — the interop guarantee for v6 peers.
        let g = topologies::ring(4);
        let p = EdgeProtocol::new(g);
        let cases: Vec<FlushSections<prcc_clock::EdgeClock>> = vec![
            Vec::new(),
            vec![(PartitionId(0), Vec::new())],
            vec![(PartitionId(3), with_seqs(1, sample_updates(&p, 1, 0)))],
            vec![
                (PartitionId(6), with_seqs(10, sample_updates(&p, 3, 0))),
                (PartitionId(0), Vec::new()),
                (PartitionId(1), with_seqs(2, sample_updates(&p, 1, 1))),
                (PartitionId(4), with_seqs(90, sample_updates(&p, 7, 2))),
            ],
        ];
        for sections in &cases {
            for pad in [0usize, 1, 64, 1000] {
                let reference = encode_multi_batch(sections, pad);
                let mut in_place = b"preexisting".to_vec();
                encode_multi_batch_into(sections, pad, &mut in_place);
                assert_eq!(
                    &in_place[b"preexisting".len()..],
                    &reference[..],
                    "in-place encode diverged (sections={}, pad={pad})",
                    sections.len()
                );
            }
        }
    }

    #[test]
    fn in_place_client_and_ack_encoders_match_their_owned_forms() {
        // The owned encoders delegate to the _into forms, so equality is
        // structural — this pins the delegation (and the append-after-
        // existing-content property) against regressions.
        let mut out = vec![0xAB];
        encode_hello_ack_into(12345, &mut out);
        assert_eq!(&out[1..], &encode_hello_ack(12345)[..]);
        let mut out = vec![0xAB];
        encode_peer_ack_into(98765, &mut out);
        assert_eq!(&out[1..], &encode_peer_ack(98765)[..]);
        let req = ClientRequest::Write {
            partition: PartitionId(3),
            register: RegisterId(7),
            value: 99,
            pad: 32,
        };
        let mut out = vec![0xAB];
        encode_request_into(&req, &mut out);
        assert_eq!(&out[1..], &encode_request(&req)[..]);
        let resp = ClientResponse::ReadResp {
            ok: true,
            value: Some(17),
        };
        let mut out = vec![0xAB];
        encode_response_into(&resp, &mut out);
        assert_eq!(&out[1..], &encode_response(&resp)[..]);
    }

    #[test]
    fn hello_ack_and_peer_ack_round_trip() {
        for seq in [0u64, 1, 63, 64, 300, u64::MAX / 3] {
            assert_eq!(decode_hello_ack(&encode_hello_ack(seq)).unwrap(), seq);
            assert_eq!(decode_peer_ack(&encode_peer_ack(seq)).unwrap(), seq);
        }
        // Tags are not interchangeable, and truncations error.
        assert!(decode_hello_ack(&encode_peer_ack(5)).is_err());
        assert!(decode_peer_ack(&encode_hello_ack(5)).is_err());
        let payload = encode_hello_ack(1 << 40);
        for cut in 0..payload.len() {
            assert!(decode_hello_ack(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn multi_batch_rejects_empty_frames_and_sections() {
        let g = topologies::ring(4);
        let p = EdgeProtocol::new(g);
        // Empty input sections are skipped by the encoder...
        let sections = vec![
            (PartitionId(0), Vec::new()),
            (PartitionId(2), with_seqs(1, sample_updates(&p, 2, 0))),
            (PartitionId(3), Vec::new()),
        ];
        let payload = encode_multi_batch(&sections, 0);
        let back = decode_multi_batch(&payload, |i| Some(p.new_clock(i))).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].0, PartitionId(2));
        // ...an all-empty flush encodes to a zero-section frame, which the
        // decoder refuses...
        let empty = encode_multi_batch::<prcc_clock::EdgeClock>(&Vec::new(), 0);
        let err = decode_multi_batch(&empty, |i| Some(p.new_clock(i))).unwrap_err();
        assert!(err.to_string().contains("no sections"), "{err}");
        // ...and a hand-crafted zero-update section is refused too.
        let mut crafted = vec![TAG_MULTI_BATCH];
        write_varint(&mut crafted, 1); // one section
        write_varint(&mut crafted, 5); // partition 5
        write_varint(&mut crafted, 0); // zero updates
        let err = decode_multi_batch(&crafted, |i| Some(p.new_clock(i))).unwrap_err();
        assert!(
            err.to_string().contains("empty multi-batch section"),
            "{err}"
        );
    }

    #[test]
    fn request_and_response_round_trips() {
        let requests = [
            ClientRequest::Write {
                partition: PartitionId(3),
                register: RegisterId(7),
                value: 99,
                pad: 32,
            },
            ClientRequest::Read {
                partition: PartitionId(0),
                register: RegisterId(0),
            },
            ClientRequest::Status,
            ClientRequest::Trace,
            ClientRequest::Config,
            ClientRequest::Metrics,
            ClientRequest::Shutdown,
        ];
        for req in &requests {
            assert_eq!(&decode_request(&encode_request(req)).unwrap(), req);
        }
        let responses = [
            ClientResponse::WriteAck { ok: true },
            ClientResponse::ReadResp {
                ok: true,
                value: Some(17),
            },
            ClientResponse::ReadResp {
                ok: false,
                value: None,
            },
            ClientResponse::Status(NodeStatus {
                node: 2,
                issued: 10,
                messages_sent: 20,
                messages_received: 19,
                applies: 18,
                pending: 1,
                duplicates_dropped: 0,
                dropped_misrouted: 3,
                bytes_out: 4096,
                bytes_in: 4000,
                batches_sent: 7,
                frames_sent: 4,
                flushes: 4,
                resent: 2,
                wal_appends: 29,
                snapshots_written: 1,
                wal_bytes: 8192,
                snapshot_bytes: 900,
                first_snapshot_bytes: 850,
                trace_events: 120,
                sealed_events: 4000,
                max_window: 64,
                window_evicted: 0,
                reactor_wakeups: 510,
                reactor_events: 1200,
                reactor_rearms: 9,
                reactor_outq_hiwat: 65536,
                barrier_skips: 5,
                per_partition: vec![
                    PartitionCounters {
                        issued: 6,
                        applies: 12,
                        pending: 1,
                    },
                    PartitionCounters {
                        issued: 4,
                        applies: 6,
                        pending: 0,
                    },
                ],
            }),
            ClientResponse::Trace(vec![
                (
                    sealed_checkpoint(),
                    vec![
                        TraceEvent::Issue {
                            replica: ReplicaId(1),
                            register: RegisterId(4),
                            update: 55,
                        },
                        TraceEvent::Apply {
                            replica: ReplicaId(1),
                            update: 54,
                        },
                    ],
                ),
                (TraceCheckpoint::new(2, 3), vec![]),
                (
                    TraceCheckpoint::new(2, 3),
                    vec![TraceEvent::Apply {
                        replica: ReplicaId(0),
                        update: 99,
                    }],
                ),
            ]),
            ClientResponse::Config {
                version: WIRE_VERSION,
                map: PartitionMap::rotated(topologies::ring(3), 4, 3).unwrap(),
            },
            ClientResponse::Metrics(sample_metrics()),
            ClientResponse::Cut(None),
            ClientResponse::Cut(Some(CutSnapshot {
                node: 2,
                token: 0xfeed_beef,
                partitions: vec![
                    PartitionCut {
                        partition: 0,
                        role: 1,
                        issued_high: (2 << 40) | 17,
                        applied: vec![9, (2 << 40) | 17, 0],
                        pending: 3,
                    },
                    PartitionCut {
                        partition: 5,
                        role: 0,
                        issued_high: 0,
                        applied: vec![0, (1 << 40) | 4],
                        pending: 0,
                    },
                ],
            })),
            ClientResponse::Bye,
        ];
        for resp in &responses {
            assert_eq!(&decode_response(&encode_response(resp)).unwrap(), resp);
        }
    }

    #[test]
    fn cut_request_and_marker_round_trip() {
        for req in [
            ClientRequest::Cut {
                token: 7,
                start: true,
            },
            ClientRequest::Cut {
                token: u64::MAX,
                start: false,
            },
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
        for token in [0u64, 1, 0xdead_beef, u64::MAX] {
            let frame = encode_cut_marker(token);
            assert_eq!(frame[0], TAG_CUT_MARKER);
            assert_eq!(decode_cut_marker(&frame).unwrap(), token);
        }
        assert!(decode_cut_marker(&[TAG_PEER_ACK, 0]).is_err());
        let mut trailing = encode_cut_marker(9);
        trailing.push(0);
        assert!(decode_cut_marker(&trailing).is_err());
    }

    #[test]
    fn cut_response_rejects_version_skew() {
        let payload = encode_response(&ClientResponse::Cut(None));
        assert_eq!(payload[1], WIRE_VERSION as u8);
        let mut old = payload.clone();
        old[1] = (WIRE_VERSION - 1) as u8;
        let err = decode_response(&old).unwrap_err();
        assert!(err.to_string().contains("version mismatch"), "{err}");
    }

    /// A metrics snapshot with every section populated and a histogram
    /// spanning exact and log-bucketed ranges.
    fn sample_metrics() -> prcc_telemetry::MetricsSnapshot {
        let registry = prcc_telemetry::Registry::new();
        registry.counter("net_bytes_out").add(123_456);
        registry.counter("net_flushes").add(9);
        registry.gauge("core_pending").set(3);
        let h = registry.histogram("visibility_us");
        for v in [2u64, 14, 900, 88_000, 1 << 34] {
            h.record(v);
        }
        registry.snapshot()
    }

    #[test]
    fn metrics_responses_are_version_stamped() {
        // Like Status: a scrape from a node speaking another version must
        // fail loudly — metric names and bucket layout are per-version.
        let mut payload = encode_response(&ClientResponse::Metrics(sample_metrics()));
        assert_eq!(payload[1], WIRE_VERSION as u8);
        payload[1] = 5;
        let err = decode_response(&payload).unwrap_err();
        assert!(
            err.to_string()
                .contains("metrics response version mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn foreign_version_status_responses_refused() {
        // Status payloads are version-stamped: the field set grew in v3,
        // and a cross-version client must get a loud mismatch, not counters
        // parsed out of shifted varints.
        let mut payload = encode_response(&ClientResponse::Status(NodeStatus::default()));
        assert_eq!(payload[1], WIRE_VERSION as u8);
        payload[1] = 2;
        let err = decode_response(&payload).unwrap_err();
        assert!(
            err.to_string().contains("status response version mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn truncated_responses_error_instead_of_panicking() {
        // Regression: READ_RESP used to slice past the end of short
        // payloads. Every truncation of every response must return Err.
        let responses = [
            ClientResponse::ReadResp {
                ok: true,
                value: Some(17),
            },
            ClientResponse::Status(NodeStatus {
                per_partition: vec![PartitionCounters::default(); 2],
                ..NodeStatus::default()
            }),
            ClientResponse::Trace(vec![(
                sealed_checkpoint(),
                vec![TraceEvent::Apply {
                    replica: ReplicaId(1),
                    update: 54,
                }],
            )]),
            ClientResponse::Config {
                version: WIRE_VERSION,
                map: PartitionMap::single(topologies::line(2)),
            },
            ClientResponse::Metrics(sample_metrics()),
        ];
        for resp in &responses {
            let payload = encode_response(resp);
            for cut in 0..payload.len() {
                assert!(
                    decode_response(&payload[..cut]).is_err(),
                    "truncation at {cut} of {resp:?} must error"
                );
            }
        }
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[]).is_err());
    }
}
