//! `prcc-load` — drive configurable keyed load at a loopback TCP cluster
//! and report throughput, latency, wire bytes and the per-partition
//! post-hoc oracle verdicts.
//!
//! ```text
//! prcc-load --nodes 4 --ops 10000
//! prcc-load --nodes 4 --partitions 8 --ops 10000 --seed 7
//! prcc-load --nodes 6 --topology random --hotspot 0.3 --value-bytes 256
//! prcc-load --nodes 4 --partitions 8 --data-dir /tmp/prcc --crash-restart
//! ```
//!
//! With `--data-dir` every node runs its write-ahead log + snapshot layer;
//! `--crash-restart` additionally kills one node mid-drive (at
//! `--crash-at` progress) and restarts it from its data dir, with the
//! drivers riding through the outage by redialing — the post-hoc oracle
//! then verifies the *complete* trace, recovery included.
//!
//! Writes `BENCH_service.json` (schema in `prcc_service::report`) so later
//! changes can track the performance trajectory. The `--seed` flag threads
//! through topology generation and the keyed op generator, so a given
//! `(seed, flags)` pair replays the identical workload across PRs.

#![forbid(unsafe_code)]

use prcc_chaos::{ChaosConfig, ChaosNemesis, ChaosSchedule, FaultProfile};
use prcc_clock::EdgeProtocol;
use prcc_graph::PartitionMap;
use prcc_service::config::{build_topology, Args};
use prcc_service::report::{BenchReport, LatencySummary, PartitionBench, VerdictSummary};
use prcc_service::wire::TAG_CUT_MARKER;
use prcc_service::{LoopbackCluster, ServiceConfig};
use prcc_workloads::ops::{generate_keyed_ops, route_keyed_ops};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::process::exit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

struct DriverResult {
    latencies_us: Vec<u64>,
    reads: usize,
    failures: usize,
}

/// Removes an auto-created scratch data dir on every exit path of `run`,
/// error returns included.
struct ScratchDir(Option<std::path::PathBuf>);

impl Drop for ScratchDir {
    fn drop(&mut self) {
        if let Some(dir) = &self.0 {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::from_env();
    if args.has("--help") {
        println!(
            "prcc-load: drive keyed load at a loopback prcc cluster\n\n\
             \t--nodes N        cluster size (default 4)\n\
             \t--topology T     ring|line|star|clique|figure5|random (default ring)\n\
             \t--partitions P   shards of the register space (default 1)\n\
             \t--ops N          total operations (default 10000)\n\
             \t--seed S         workload/topology seed (default 1)\n\
             \t--hotspot F      fraction of writes hitting key 0 (default off)\n\
             \t--read-pct F     fraction of ops issued as reads (default 0.0)\n\
             \t--value-bytes B  extra payload bytes per update (default 0)\n\
             \t--rate R         target ops/sec across the cluster, 0 = unlimited (default 0)\n\
             \t--batch N        max updates per peer flush (default 64)\n\
             \t--flush-us U     batch flush interval in microseconds (default 200)\n\
             \t--base-port P    0 = ephemeral ports (default)\n\
             \t--out PATH       report path (default BENCH_service.json)\n\
             \t--data-dir PATH  enable durability: per-node WAL + snapshots under PATH\n\
             \t--snapshot-every N  WAL records between snapshots (default 4096)\n\
             \t--fsync          group-commit every WAL append (power-loss durability)\n\
             \t--fsync-every N  group-commit cadence: fdatasync every N appends (0 = off)\n\
             \t--compact-at N   live trace events per partition before the core seals\n\
             \t                 the acked prefix into its checkpoint (default 1024)\n\
             \t--max-snapshot-bytes N  fail if any node's last snapshot exceeds N bytes\n\
             \t                 (regression guard for O(live state) snapshots; 0 = off)\n\
             \t--max-snapshot-growth F fail if any node's last/first snapshot size\n\
             \t                 ratio reaches F (flat-snapshot guard; 0 = off)\n\
             \t--chaos-seed S   interpose a seeded nemesis proxy on every peer\n\
             \t                 link: deterministic delays, reorders, duplicates,\n\
             \t                 drops and severs, every decision a pure function\n\
             \t                 of (S, link, frame index); the realized decision\n\
             \t                 log is checked bit-for-bit against pure replay\n\
             \t--chaos-profile P  light|heavy fault rates (default light)\n\
             \t--chaos-partition-every N  per-link frames per rotating\n\
             \t                 split-brain period (default 0 = no partitions)\n\
             \t--chaos-partition-len N  leading frames of each period spent\n\
             \t                 partitioned (one seed-chosen node isolated)\n\
             \t--crash-restart  kill one node mid-drive and restart it from its\n\
             \t                 data dir (a temp dir is used if --data-dir is unset)\n\
             \t--crash-at F     progress fraction at which the crash fires (default 0.5)\n\
             \t--crash-node N   which node to crash (default 1)\n\
             \t--max-frames-per-flush F  fail if mean frames per sender flush\n\
             \t                 reaches F (regression guard for multi-partition\n\
             \t                 frame packing; 0 = off, default)\n\
             \t--max-wal-writes-per-op F fail if WAL write syscalls per op reach F\n\
             \t                 (regression guard for per-sweep group commit;\n\
             \t                 requires --data-dir; 0 = off, default)\n\
             \t--max-pool-miss-rate F  fail if the buffer-pool miss fraction\n\
             \t                 reaches F (regression guard for the zero-copy\n\
             \t                 hot path; 0 = off, default)\n\
             \t--clients N      total client connections across the cluster\n\
             \t                 (default: one per node); each node's script is\n\
             \t                 striped across its share of the connections\n\
             \t--lane-workers W multiplex the client connections onto W driver\n\
             \t                 threads (0 = one thread per connection, the\n\
             \t                 historic shape; large --clients runs want a\n\
             \t                 small pool here)\n\
             \t--max-threads N  fail if this process exceeds N threads\n\
             \t                 mid-drive — the cluster runs in-process, so a\n\
             \t                 return to thread-per-connection I/O anywhere\n\
             \t                 trips this (0 = off)\n\
             \t--max-fds N      fail if this process exceeds N open file\n\
             \t                 descriptors mid-drive (0 = off)\n\
             \t--sample-every N sample 1-in-N update lifecycles for the stage\n\
             \t                 histograms (1 = every update, default 16)\n\
             \t--metrics-mid-run  request a live metrics frame from node 0\n\
             \t                 mid-drive and fail unless it decodes and\n\
             \t                 carries the pending_stall_us histogram\n\
             \t--quiet          suppress the human-readable summary"
        );
        return Ok(());
    }
    let nodes = args.parse_or("--nodes", 4usize)?;
    let topology = args.value("--topology").unwrap_or("ring").to_string();
    let partitions = args.parse_or("--partitions", 1u32)?.max(1);
    let ops_total = args.parse_or("--ops", 10_000usize)?;
    let seed = args.parse_or("--seed", 1u64)?;
    let hotspot = match args.value("--hotspot") {
        None => None,
        Some(raw) => Some(
            raw.parse::<f64>()
                .map_err(|_| format!("invalid --hotspot '{raw}'"))?,
        ),
    };
    let read_pct = args.parse_or("--read-pct", 0.0f64)?;
    let value_bytes = args.parse_or("--value-bytes", 0usize)?;
    let rate = args.parse_or("--rate", 0f64)?;
    let base_port = args.parse_or("--base-port", 0u16)?;
    let out_path = args
        .value("--out")
        .unwrap_or("BENCH_service.json")
        .to_string();
    let max_frames_per_flush = args.parse_or("--max-frames-per-flush", 0f64)?;
    let max_wal_writes_per_op = args.parse_or("--max-wal-writes-per-op", 0f64)?;
    let max_pool_miss_rate = args.parse_or("--max-pool-miss-rate", 0f64)?;
    let clients = args.parse_or("--clients", 0usize)?;
    let lane_workers = args.parse_or("--lane-workers", 0usize)?;
    let max_threads = args.parse_or("--max-threads", 0u64)?;
    let max_fds = args.parse_or("--max-fds", 0u64)?;
    let max_snapshot_bytes = args.parse_or("--max-snapshot-bytes", 0u64)?;
    let max_snapshot_growth = args.parse_or("--max-snapshot-growth", 0f64)?;
    let fsync_every = if args.has("--fsync") && args.value("--fsync-every").is_none() {
        1
    } else {
        args.parse_or("--fsync-every", 0u64)?
    };
    let quiet = args.has("--quiet");
    let sample_every = args.parse_or("--sample-every", 16u64)?;
    let metrics_mid_run = args.has("--metrics-mid-run");
    let chaos_seed = match args.value("--chaos-seed") {
        None => None,
        Some(raw) => Some(
            raw.parse::<u64>()
                .map_err(|_| format!("invalid --chaos-seed '{raw}'"))?,
        ),
    };
    let chaos_profile = args.value("--chaos-profile").unwrap_or("light").to_string();
    let chaos_partition_every = args.parse_or("--chaos-partition-every", 0u64)?;
    let chaos_partition_len = args.parse_or("--chaos-partition-len", 0u64)?;
    let crash_restart = args.has("--crash-restart");
    let crash_at = args.parse_or("--crash-at", 0.5f64)?.clamp(0.0, 1.0);
    let crash_node = args.parse_or("--crash-node", 1usize)?;
    let data_dir = match args.value("--data-dir") {
        Some(path) => Some(std::path::PathBuf::from(path)),
        None if crash_restart => {
            // A crash test without durability would lose state by design;
            // give it a scratch dir so the scenario is meaningful.
            Some(std::env::temp_dir().join(format!("prcc-load-data-{}", std::process::id())))
        }
        None => None,
    };
    let _scratch = ScratchDir(
        (crash_restart && args.value("--data-dir").is_none())
            .then(|| data_dir.clone())
            .flatten(),
    );
    let cfg = ServiceConfig {
        batch_max: args.parse_or("--batch", 64usize)?.max(1),
        flush_interval: Duration::from_micros(args.parse_or("--flush-us", 200u64)?),
        pad_bytes: value_bytes,
        data_dir: data_dir.clone(),
        snapshot_every: args.parse_or("--snapshot-every", 4096u64)?,
        fsync_every,
        trace_compact_at: args.parse_or("--compact-at", 1024usize)?,
        sample_every,
        ..ServiceConfig::default()
    };
    let graph = build_topology(&topology, nodes, seed)?;
    let n = graph.num_replicas();
    if crash_restart && crash_node >= n {
        return Err(format!(
            "--crash-node {crash_node} out of range for {n} nodes"
        ));
    }
    let map = PartitionMap::rotated(graph.clone(), partitions, n)
        .map_err(|e| format!("partition map: {e}"))?;
    let protocol = Arc::new(EdgeProtocol::new(graph));
    // With --chaos-seed, every directed peer link is routed through a
    // seeded nemesis proxy; the nemesis launches lazily inside the rewire
    // closure, once the real peer listeners are bound.
    let mut nemesis: Option<ChaosNemesis> = None;
    let chaos_cfg = match chaos_seed {
        None => None,
        Some(seed) => {
            let profile = match chaos_profile.as_str() {
                "light" => FaultProfile::light(),
                "heavy" => FaultProfile::heavy(),
                other => return Err(format!("unknown --chaos-profile '{other}'")),
            };
            Some(ChaosConfig {
                seed,
                profile,
                partition_every: chaos_partition_every,
                partition_len: chaos_partition_len,
                protect_tags: vec![TAG_CUT_MARKER],
            })
        }
    };
    let mut cluster = match &chaos_cfg {
        None => LoopbackCluster::launch_partitioned(protocol, map.clone(), &cfg, base_port),
        Some(chaos) => {
            let cell: RefCell<Option<ChaosNemesis>> = RefCell::new(None);
            let launched = LoopbackCluster::launch_partitioned_via(
                protocol,
                map.clone(),
                &cfg,
                base_port,
                |node, real| {
                    let mut slot = cell.borrow_mut();
                    if slot.is_none() {
                        // A failed nemesis launch leaves the slot empty; the
                        // short address vector below makes the cluster
                        // launcher report it as an InvalidInput error.
                        if let Ok(n) = ChaosNemesis::launch(real.to_vec(), chaos.clone()) {
                            *slot = Some(n);
                        }
                    }
                    match slot.as_ref() {
                        Some(n) => n.peer_addrs_for(node),
                        None => Vec::new(),
                    }
                },
            );
            nemesis = cell.into_inner();
            launched
        }
    }
    .map_err(|e| format!("launch failed: {e}"))?;

    // One seeded keyed op stream, routed into per-node driver scripts — the
    // same generator and per-key holder affinity the simulator harness
    // (`run_partitioned_workload`) uses.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ops = generate_keyed_ops(&map, ops_total, hotspot, &mut rng);
    let scripts = route_keyed_ops(&map, &ops);

    // Per-thread pacing for --rate: each driver holds the cluster-wide
    // interval scaled by its share of the ops. The shared progress counter
    // triggers the crash injection at the requested point of the run.
    let drive_start = Instant::now();
    let progress = Arc::new(AtomicUsize::new(0));
    // --clients stripes each node's script across that many connections
    // cluster-wide (ceil-divided per node); the default keeps the historic
    // one-connection-per-node shape so seeded runs stay comparable.
    let per_node_clients = if clients == 0 { 1 } else { clients.div_ceil(n) };
    // Every lane is one live client connection carrying its stripe of a
    // node's script. Lanes are multiplexed onto --lane-workers driver
    // threads (default: one per lane, the historic shape) — a 2000-client
    // run needs a worker pool, not 2000 harness threads, to prove the
    // *node* holds 2000 sockets on a fixed pool too.
    struct Lane {
        addr: std::net::SocketAddr,
        client: prcc_service::ServiceClient,
        script: Vec<(prcc_graph::PartitionId, prcc_graph::RegisterId, u64)>,
        at: usize,
        rng: ChaCha8Rng,
    }
    let mut lanes = Vec::with_capacity(n * per_node_clients);
    for (node, script) in scripts.into_iter().enumerate() {
        let addr = cluster.addrs(node).1;
        for lane in 0..per_node_clients {
            let striped: Vec<_> = script
                .iter()
                .copied()
                .skip(lane)
                .step_by(per_node_clients)
                .collect();
            let client = cluster
                .client(node)
                .map_err(|e| format!("connect node {node}: {e}"))?;
            lanes.push(Lane {
                addr,
                client,
                script: striped,
                at: 0,
                rng: ChaCha8Rng::seed_from_u64(
                    seed ^ ((node as u64 + 1) << 32) ^ ((lane as u64) << 16),
                ),
            });
        }
    }
    let workers = if lane_workers == 0 {
        lanes.len()
    } else {
        lane_workers.min(lanes.len()).max(1)
    };
    // Deal lanes round-robin so each worker serves a cross-section of the
    // cluster rather than one node's whole block.
    let mut dealt: Vec<Vec<Lane>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, lane) in lanes.into_iter().enumerate() {
        dealt[i % workers].push(lane);
    }
    let mut drivers = Vec::with_capacity(workers);
    for mut my_lanes in dealt {
        let my_ops: usize = my_lanes.iter().map(|l| l.script.len()).sum();
        let share = my_ops as f64 / ops_total.max(1) as f64;
        let interval = if rate > 0.0 && my_ops > 0 {
            Some(Duration::from_secs_f64(1.0 / (rate * share)))
        } else {
            None
        };
        let progress = Arc::clone(&progress);
        drivers.push(thread::spawn(move || -> std::io::Result<DriverResult> {
            let mut result = DriverResult {
                latencies_us: Vec::with_capacity(my_ops),
                reads: 0,
                failures: 0,
            };
            let mut next_at = Instant::now();
            let mut remaining = my_ops;
            // One op per lane per pass: every connection makes progress
            // each round, and per-key order within a lane is preserved.
            while remaining > 0 {
                for lane in &mut my_lanes {
                    let Some(&(partition, register, value)) = lane.script.get(lane.at) else {
                        continue;
                    };
                    lane.at += 1;
                    remaining -= 1;
                    if let Some(interval) = interval {
                        let now = Instant::now();
                        if next_at > now {
                            thread::sleep(next_at - now);
                        }
                        next_at += interval;
                    }
                    let started = Instant::now();
                    let is_read = read_pct > 0.0 && lane.rng.gen_bool(read_pct);
                    if is_read {
                        result.reads += 1;
                    }
                    let attempt = |client: &mut prcc_service::ServiceClient| {
                        if is_read {
                            client.read_in(partition, register).map(|_| true)
                        } else {
                            client.write_padded(partition, register, value, value_bytes)
                        }
                    };
                    let ok = match attempt(&mut lane.client) {
                        Ok(ok) => ok,
                        Err(e) if crash_restart => {
                            // The node may be mid crash/restart: ride through
                            // the outage by redialing until the op lands. A
                            // write whose ack was lost in the crash may commit
                            // twice — two distinct updates, which is exactly
                            // what a real retrying client produces.
                            let deadline = Instant::now() + Duration::from_secs(30);
                            loop {
                                thread::sleep(Duration::from_millis(25));
                                if let Ok(mut fresh) =
                                    prcc_service::ServiceClient::connect(lane.addr)
                                {
                                    if let Ok(ok) = attempt(&mut fresh) {
                                        lane.client = fresh;
                                        break ok;
                                    }
                                }
                                if Instant::now() >= deadline {
                                    return Err(e);
                                }
                            }
                        }
                        Err(e) => return Err(e),
                    };
                    if !ok {
                        result.failures += 1;
                    }
                    result
                        .latencies_us
                        .push(started.elapsed().as_micros() as u64);
                    progress.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(result)
        }));
    }

    // Peak process shape, sampled with every lane connected and the
    // worker pool live: the cluster runs in-process, so any return to
    // thread-per-connection I/O scales this with --clients.
    let sampled_threads = process_threads();
    let sampled_fds = process_fds();

    // The mid-run metrics probe: once a quarter of the ops are in, scrape
    // node 0's live metrics over the client wire — the point is to prove
    // the v6 Metrics frame round-trips *while the hot path is hot*, not
    // from a quiesced cluster.
    let mid_probe = metrics_mid_run.then(|| {
        let addr = cluster.addrs(0).1;
        let progress = Arc::clone(&progress);
        let target = (ops_total / 4).max(1);
        thread::spawn(move || -> Result<(), String> {
            let stall = Instant::now() + Duration::from_secs(120);
            while progress.load(Ordering::Relaxed) < target && Instant::now() < stall {
                thread::sleep(Duration::from_millis(2));
            }
            let mut client = prcc_service::ServiceClient::connect(addr)
                .map_err(|e| format!("mid-run metrics dial: {e}"))?;
            let snap = client
                .metrics()
                .map_err(|e| format!("mid-run metrics request: {e}"))?;
            let stall_p99 = snap
                .hist_summary("pending_stall_us")
                .ok_or("mid-run metrics frame decoded but has no pending_stall_us histogram")?
                .p99_us;
            let _ = stall_p99; // presence is the assertion; the value is workload-dependent
            Ok(())
        })
    });

    // The fault injector: once the drive crosses the crash point, kill the
    // target node mid-stream and bring it back on the same data dir.
    let mut crash_restarts = 0u64;
    if crash_restart {
        let target = ((ops_total as f64) * crash_at).round() as usize;
        let stall = Instant::now() + Duration::from_secs(120);
        while progress.load(Ordering::Relaxed) < target && Instant::now() < stall {
            thread::sleep(Duration::from_millis(5));
        }
        cluster.crash_node(crash_node);
        thread::sleep(Duration::from_millis(150));
        cluster
            .restart_node(crash_node)
            .map_err(|e| format!("restarting node {crash_node}: {e}"))?;
        crash_restarts = 1;
    }

    let mut latencies = Vec::with_capacity(ops_total);
    let mut reads = 0usize;
    let mut failures = 0usize;
    for driver in drivers {
        let result = driver
            .join()
            .map_err(|_| "driver thread panicked".to_string())
            .and_then(|r| r.map_err(|e| format!("driver I/O error: {e}")))?;
        latencies.extend(result.latencies_us);
        reads += result.reads;
        failures += result.failures;
    }
    let drive_seconds = drive_start.elapsed().as_secs_f64();
    if let Some(probe) = mid_probe {
        probe
            .join()
            .map_err(|_| "metrics probe thread panicked".to_string())
            .and_then(|r| r)?;
    }
    if failures > 0 {
        return Err(format!("{failures} operations were rejected by their node"));
    }

    // Heal the nemesis before draining: frames swallowed by drops and
    // partition windows are only resent at the next reconnect, which heal
    // forces exactly once per live link. From here the proxies forward
    // transparently.
    if let Some(n) = &nemesis {
        n.heal();
    }

    // Quiescence, then per-partition verification on the collected traces.
    let drain_start = Instant::now();
    let drain_budget = Duration::from_secs(30) + Duration::from_millis(ops_total as u64 / 10);
    let drained = cluster
        .drain(drain_budget)
        .map_err(|e| format!("drain: {e}"))?;
    let drain_seconds = drain_start.elapsed().as_secs_f64();
    if !drained {
        return Err("cluster failed to reach quiescence (liveness bug?)".into());
    }
    let statuses = cluster.statuses().map_err(|e| format!("status: {e}"))?;
    let misrouted: u64 = statuses.iter().map(|s| s.dropped_misrouted).sum();
    if misrouted > 0 {
        return Err(format!(
            "{misrouted} updates were misrouted to non-hosting nodes and dropped"
        ));
    }
    // The eviction gate reads the metrics path, not NodeStatus: it proves
    // the registry's core_* gauges are wired end to end at the same time
    // as it guards delivery.
    let metrics = cluster.metrics().map_err(|e| format!("metrics: {e}"))?;
    let evicted = metrics
        .gauge("core_window_evicted")
        .ok_or("metrics snapshot is missing the core_window_evicted gauge")?;
    if evicted > 0 {
        // Evicted entries were given up on — the stitched verdict cannot
        // vouch for updates the cluster stopped trying to deliver, so the
        // run must not be reported as clean.
        return Err(format!(
            "{evicted} resend-window entries were evicted by the window cap \
             (a peer was stranded past --window-cap); the run gave up on \
             delivering them"
        ));
    }
    // The chaos replayability gate: the realized fault-decision log must
    // be bit-identical to the pure replay of the schedule, or a failing
    // run could not be reproduced from its seed.
    if let (Some(nem), Some(chaos)) = (&nemesis, &chaos_cfg) {
        for ((src, dst), realized) in nem.schedule().decision_log() {
            let replayed = ChaosSchedule::replay_link(chaos, n, src, dst, realized.len() as u64);
            if realized != replayed {
                return Err(format!(
                    "chaos link {src}->{dst}: realized decision log diverged from \
                     the pure replay of seed {} — the run is not reproducible",
                    chaos.seed
                ));
            }
        }
    }

    let partition_verdicts = cluster
        .verify_partitions()
        .map_err(|e| format!("trace collection: {e}"))?;

    let mut verdict = VerdictSummary {
        consistent: true,
        safety_violations: 0,
        liveness_violations: 0,
    };
    let mut per_partition = vec![PartitionBench::default(); partitions as usize];
    for (p, result) in partition_verdicts.iter().enumerate() {
        let v = result
            .as_ref()
            .map_err(|e| format!("partition {p} trace replay: {e}"))?;
        per_partition[p].consistent = v.is_consistent();
        verdict.consistent &= v.is_consistent();
        verdict.safety_violations += v.safety.len();
        verdict.liveness_violations += v.liveness.len();
    }

    let mut report = BenchReport {
        topology,
        nodes: n,
        partitions: partitions as usize,
        ops: latencies.len(),
        reads,
        seed,
        value_bytes,
        hotspot,
        drive_seconds,
        drain_seconds,
        throughput_ops_per_sec: latencies.len() as f64 / drive_seconds.max(1e-9),
        latency: LatencySummary::from_latencies(&mut latencies),
        wire_bytes_out: 0,
        wire_bytes_per_update: 0.0,
        messages_sent: 0,
        batches_sent: 0,
        frames_sent: 0,
        flushes: 0,
        updates_per_batch: 0.0,
        frames_per_flush: 0.0,
        durable: data_dir.is_some(),
        crash_restarts,
        resent: 0,
        wal_appends: 0,
        wal_writes: 0,
        pool_hits: 0,
        pool_misses: 0,
        pool_outstanding: 0,
        snapshots_written: 0,
        fsync_every,
        wal_bytes: 0,
        snapshot_bytes: 0,
        snapshot_growth: 0.0,
        trace_events: 0,
        sealed_events: 0,
        max_window: 0,
        window_evicted: 0,
        reactor_wakeups: 0,
        reactor_events: 0,
        reactor_rearms: 0,
        reactor_outq_hiwat: 0,
        barrier_skips: 0,
        process_threads: sampled_threads,
        process_fds: sampled_fds,
        sample_every,
        visibility: prcc_telemetry::HistSummary::default(),
        pending_stall: prcc_telemetry::HistSummary::default(),
        wal_append: prcc_telemetry::HistSummary::default(),
        send: prcc_telemetry::HistSummary::default(),
        verdict,
        per_partition,
    };
    report.absorb_statuses(&statuses);
    report.absorb_metrics(&metrics);

    std::fs::write(&out_path, report.to_json()).map_err(|e| format!("writing {out_path}: {e}"))?;
    cluster.shutdown().map_err(|e| format!("shutdown: {e}"))?;

    if !quiet {
        println!(
            "prcc-load: {} ops ({} reads) on {} nodes x {} partitions ('{}') in {:.2}s + {:.2}s drain",
            report.ops,
            report.reads,
            report.nodes,
            report.partitions,
            report.topology,
            drive_seconds,
            drain_seconds
        );
        println!(
            "  throughput {:.0} ops/s; latency mean {:.0}us p50 {}us p99 {}us",
            report.throughput_ops_per_sec,
            report.latency.mean_us,
            report.latency.p50_us,
            report.latency.p99_us
        );
        println!(
            "  stages (1-in-{} sampled): visibility p50 {}us p99 {}us ({} samples); \
             pending stall p99 {}us; wal append p99 {}us; send p99 {}us",
            report.sample_every,
            report.visibility.p50_us,
            report.visibility.p99_us,
            report.visibility.count,
            report.pending_stall.p99_us,
            report.wal_append.p99_us,
            report.send.p99_us
        );
        println!(
            "  wire: {} bytes out, {:.1} bytes/update, {:.2} updates/batch, \
             {:.2} frames/flush ({} frames for {} batches)",
            report.wire_bytes_out,
            report.wire_bytes_per_update,
            report.updates_per_batch,
            report.frames_per_flush,
            report.frames_sent,
            report.batches_sent
        );
        let pool_total = report.pool_hits + report.pool_misses;
        println!(
            "  pool: {} hits / {} misses ({:.1}% hit), {} leases outstanding",
            report.pool_hits,
            report.pool_misses,
            if pool_total == 0 {
                0.0
            } else {
                100.0 * report.pool_hits as f64 / pool_total as f64
            },
            report.pool_outstanding
        );
        if report.durable {
            println!(
                "  durability: {} WAL appends in {} writes ({:.2} appends/write), \
                 {} snapshots, {} updates resent, {} crash/restart cycles, fsync every {}",
                report.wal_appends,
                report.wal_writes,
                if report.wal_writes == 0 {
                    0.0
                } else {
                    report.wal_appends as f64 / report.wal_writes as f64
                },
                report.snapshots_written,
                report.resent,
                report.crash_restarts,
                report.fsync_every
            );
            println!(
                "  memory: {} WAL bytes, last snapshot {} bytes (growth x{:.2}), \
                 {} live + {} sealed trace events, max window {}",
                report.wal_bytes,
                report.snapshot_bytes,
                report.snapshot_growth,
                report.trace_events,
                report.sealed_events,
                report.max_window
            );
        }
        if let Some(nem) = &nemesis {
            let c = nem.schedule().fault_counts();
            println!(
                "  chaos: seed {}, {} decisions ({} delivered, {} delayed, {} reordered, \
                 {} duplicated, {} dropped, {} cut, {} cut mid-frame, {} partition-swallowed), \
                 decision log replays from the seed",
                nem.schedule().config().seed,
                c.delivered + c.faulted(),
                c.delivered,
                c.delayed,
                c.reordered,
                c.duplicated,
                c.dropped,
                c.cut,
                c.cut_mid,
                c.partition_dropped
            );
        }
        println!(
            "  oracle: {}",
            if report.verdict.consistent {
                format!(
                    "causally consistent ({} partitions verified independently)",
                    report.partitions
                )
            } else {
                format!(
                    "{} safety / {} liveness violations",
                    report.verdict.safety_violations, report.verdict.liveness_violations
                )
            }
        );
        println!("  report written to {out_path}");
    }
    if !report.verdict.consistent {
        return Err("oracle verdict: NOT causally consistent".into());
    }
    if max_frames_per_flush > 0.0 {
        // A gate that trusts a broken counter is no gate: updates moved, so
        // flushes and frames must both have been accounted.
        if report.messages_sent > 0 && (report.flushes == 0 || report.frames_sent == 0) {
            return Err(format!(
                "frame accounting broken: {} updates sent but {} flushes / {} frames counted",
                report.messages_sent, report.flushes, report.frames_sent
            ));
        }
        if report.frames_per_flush >= max_frames_per_flush {
            return Err(format!(
                "frame packing regressed: {:.2} frames per flush (limit {max_frames_per_flush}) — \
                 multi-partition flushes are being split into per-partition frames again",
                report.frames_per_flush
            ));
        }
    }
    if max_wal_writes_per_op > 0.0 {
        // Same principle as the frame gate: a records-moved run with zero
        // write syscalls counted means the accounting broke, not that the
        // path got infinitely fast.
        if report.wal_appends > 0 && report.wal_writes == 0 {
            return Err(format!(
                "WAL write accounting broken: {} appends but 0 write syscalls counted",
                report.wal_appends
            ));
        }
        if report.wal_writes > report.wal_appends {
            return Err(format!(
                "WAL write accounting broken: {} write syscalls for {} appends \
                 (group commit can only coalesce)",
                report.wal_writes, report.wal_appends
            ));
        }
        let per_op = report.wal_writes as f64 / report.ops.max(1) as f64;
        if per_op >= max_wal_writes_per_op {
            return Err(format!(
                "WAL group commit regressed: {per_op:.3} write syscalls per op \
                 (limit {max_wal_writes_per_op}) — sweeps are no longer \
                 coalescing their appends into one write",
            ));
        }
    }
    if max_pool_miss_rate > 0.0 {
        let pool_total = report.pool_hits + report.pool_misses;
        if pool_total == 0 {
            return Err("pool gate needs pool traffic: zero leases were counted — \
                 the hot path is no longer pooling its buffers"
                .into());
        }
        let miss_rate = report.pool_misses as f64 / pool_total as f64;
        if miss_rate >= max_pool_miss_rate {
            return Err(format!(
                "buffer pool regressed: miss rate {miss_rate:.3} \
                 (limit {max_pool_miss_rate}) over {pool_total} leases — \
                 the steady state is allocating again",
            ));
        }
    }
    if max_snapshot_bytes > 0 && report.snapshot_bytes > max_snapshot_bytes {
        return Err(format!(
            "snapshot size regressed: {} bytes (limit {max_snapshot_bytes}) — \
             snapshots are growing with history instead of live state",
            report.snapshot_bytes
        ));
    }
    if max_snapshot_growth > 0.0 {
        // snapshot_growth is only computed from nodes that wrote two or
        // more snapshots — the cluster-wide sum is not enough (four nodes
        // with one snapshot each would gate nothing).
        if report.snapshot_growth <= 0.0 {
            return Err(format!(
                "snapshot growth gate needs some node with at least two snapshots \
                 ({} written cluster-wide) — lower --snapshot-every or raise --ops",
                report.snapshots_written
            ));
        }
        // Snapshots embed the unacked resend windows, which wobble by a
        // few hundred bytes with ack timing — so the ratio gate carries a
        // small absolute allowance. The regression it exists to catch
        // (snapshots growing with history) is tens to hundreds of
        // kilobytes at smoke scale, far beyond it.
        const GROWTH_ALLOWANCE_BYTES: f64 = 4096.0;
        let regressed = statuses.iter().any(|s| {
            s.snapshots_written > 1
                && s.first_snapshot_bytes > 0
                && s.snapshot_bytes as f64
                    >= (max_snapshot_growth * s.first_snapshot_bytes as f64)
                        .max(s.first_snapshot_bytes as f64 + GROWTH_ALLOWANCE_BYTES)
        });
        if regressed {
            return Err(format!(
                "snapshot growth regressed: last/first ratio {:.2} (limit \
                 {max_snapshot_growth} plus a {GROWTH_ALLOWANCE_BYTES:.0}-byte \
                 noise allowance) — trace compaction is no longer keeping \
                 snapshots flat",
                report.snapshot_growth
            ));
        }
    }
    if max_threads > 0 {
        if report.process_threads == 0 {
            return Err("thread gate needs /proc/self/status; it was unreadable".into());
        }
        if report.process_threads > max_threads {
            return Err(format!(
                "thread count regressed: {} threads mid-drive (limit {max_threads}) — \
                 connection handling is spawning threads again instead of \
                 multiplexing onto the reactor pool",
                report.process_threads
            ));
        }
    }
    if max_fds > 0 {
        if report.process_fds == 0 {
            return Err("fd gate needs /proc/self/fd; it was unreadable".into());
        }
        if report.process_fds > max_fds {
            return Err(format!(
                "open file descriptors regressed: {} fds mid-drive (limit {max_fds})",
                report.process_fds
            ));
        }
    }
    Ok(())
}

/// Current thread count of this process (0 if /proc is unavailable).
fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Open file descriptors of this process (0 if /proc is unavailable).
fn process_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd")
        .map(|dir| dir.count() as u64)
        .unwrap_or(0)
}

fn main() {
    if let Err(message) = run() {
        eprintln!("prcc-load: {message}");
        exit(1);
    }
}
