//! `prcc-serve` — stand up a loopback TCP cluster and serve until every
//! node is shut down via the client API (`ServiceClient::shutdown`, e.g.
//! the `tcp_client` example), or `--duration` elapses.
//!
//! ```text
//! prcc-serve --nodes 4 --topology ring --base-port 7400
//! ```

#![forbid(unsafe_code)]

use prcc_clock::EdgeProtocol;
use prcc_graph::PartitionMap;
use prcc_service::config::{build_topology, Args};
use prcc_service::{LoopbackCluster, ServiceConfig};
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn run() -> Result<(), String> {
    let args = Args::from_env();
    if args.has("--help") {
        println!(
            "prcc-serve: stand up a loopback prcc cluster\n\n\
             \t--nodes N        cluster size (default 4)\n\
             \t--topology T     ring|line|star|clique|figure5|random (default ring)\n\
             \t--partitions P   shards of the register space (default 1)\n\
             \t--seed S         topology seed for 'random' (default 0)\n\
             \t--base-port P    first port; node i uses P+2i (peer) and P+2i+1 (client);\n\
             \t                 0 = ephemeral (default)\n\
             \t--batch N        max updates per peer flush (default 64)\n\
             \t--flush-us U     batch flush interval in microseconds (default 200)\n\
             \t--value-bytes B  extra payload bytes per update (default 0)\n\
             \t--data-dir PATH  enable durability: per-node WAL + snapshots under PATH\n\
             \t                 (nodes recover their state from it on restart)\n\
             \t--snapshot-every N  WAL records between snapshots (default 4096)\n\
             \t--fsync          group-commit every WAL append (power-loss durability)\n\
             \t--fsync-every N  group-commit cadence: fdatasync every N appends (0 = off)\n\
             \t--compact-at N   live trace events per partition before checkpointed\n\
             \t                 compaction seals the acked prefix (default 1024)\n\
             \t--sample-every N sample 1-in-N update lifecycles for the stage\n\
             \t                 histograms (1 = every update, default 16)\n\
             \t--metrics-every S  every S seconds, scrape all nodes over the\n\
             \t                 client wire, merge, and print the text metrics\n\
             \t                 exposition to stderr (0 = off, default); includes\n\
             \t                 the hot-path pool_hits/pool_misses/pool_outstanding\n\
             \t                 and wal_writes series\n\
             \t--duration S     self-terminate after S seconds (default: serve forever)\n\n\
             The process serves until a client sends Shutdown to every node."
        );
        return Ok(());
    }
    let nodes = args.parse_or("--nodes", 4usize)?;
    let duration = args.parse_or("--duration", 0u64)?;
    let topology = args.value("--topology").unwrap_or("ring").to_string();
    let partitions = args.parse_or("--partitions", 1u32)?.max(1);
    let seed = args.parse_or("--seed", 0u64)?;
    let base_port = args.parse_or("--base-port", 0u16)?;
    let cfg = ServiceConfig {
        batch_max: args.parse_or("--batch", 64usize)?.max(1),
        flush_interval: Duration::from_micros(args.parse_or("--flush-us", 200u64)?),
        pad_bytes: args.parse_or("--value-bytes", 0usize)?,
        data_dir: args.value("--data-dir").map(std::path::PathBuf::from),
        snapshot_every: args.parse_or("--snapshot-every", 4096u64)?,
        fsync_every: if args.has("--fsync") && args.value("--fsync-every").is_none() {
            1
        } else {
            args.parse_or("--fsync-every", 0u64)?
        },
        trace_compact_at: args.parse_or("--compact-at", 1024usize)?,
        sample_every: args.parse_or("--sample-every", 16u64)?,
        ..ServiceConfig::default()
    };
    let metrics_every = args.parse_or("--metrics-every", 0u64)?;

    let graph = build_topology(&topology, nodes, seed)?;
    let map = PartitionMap::rotated(graph.clone(), partitions, graph.num_replicas())
        .map_err(|e| format!("partition map: {e}"))?;
    let protocol = Arc::new(EdgeProtocol::new(graph.clone()));
    let mut cluster = LoopbackCluster::launch_partitioned(protocol, map, &cfg, base_port)
        .map_err(|e| format!("launch failed: {e}"))?;

    println!(
        "prcc-serve: {} nodes on topology '{topology}' ({} partitions x {} registers, {} keys)",
        cluster.len(),
        partitions,
        graph.num_registers(),
        cluster.map().num_keys()
    );
    for i in 0..cluster.len() {
        let (peer, client) = cluster.addrs(i);
        println!("  node {i}: peers at {peer}, clients at {client}");
    }
    if metrics_every > 0 {
        // Scrape over the public client wire — the same path any external
        // monitor would use — rather than reaching into the process. The
        // thread is detached: once the nodes shut down every dial fails and
        // the scraper just idles until process exit.
        let addrs: Vec<_> = (0..cluster.len()).map(|i| cluster.addrs(i).1).collect();
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_secs(metrics_every));
            let mut merged: Option<prcc_telemetry::MetricsSnapshot> = None;
            let mut scraped = 0usize;
            for addr in &addrs {
                let Ok(mut client) = prcc_service::ServiceClient::connect(*addr) else {
                    continue;
                };
                let Ok(snap) = client.metrics() else { continue };
                scraped += 1;
                match merged.as_mut() {
                    Some(m) => m.merge(&snap),
                    None => merged = Some(snap),
                }
            }
            if let Some(m) = merged {
                eprintln!(
                    "# prcc metrics ({scraped}/{} nodes)\n{}",
                    addrs.len(),
                    m.render_text()
                );
            }
        });
    }
    if duration > 0 {
        println!("serving for {duration}s.");
        std::thread::sleep(Duration::from_secs(duration));
        cluster
            .shutdown()
            .map_err(|e| format!("shutdown failed: {e}"))?;
    } else {
        println!("serving; send Shutdown via the client API to stop.");
        cluster.join();
    }
    println!("all nodes shut down.");
    Ok(())
}

fn main() {
    if let Err(message) = run() {
        eprintln!("prcc-serve: {message}");
        exit(2);
    }
}
