//! Re-export of the size-classed buffer pool, which moved to
//! [`prcc_reactor::bufpool`] with the event-loop I/O rewrite (the reactor
//! owns the frame buffers on both sides of every socket now, and the
//! service crate builds on the reactor). The `prcc_service::bufpool`
//! paths keep working for every existing caller and test.

pub use prcc_reactor::bufpool::{BufPool, Lease};
