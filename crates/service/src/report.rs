//! The `prcc-load` benchmark report and its JSON emission.
//!
//! JSON is written by hand — the hermetic workspace has no serde_json — but
//! the schema is stable and intended for cross-PR tracking in
//! `BENCH_service.json`.

use crate::wire::NodeStatus;
use std::fmt::Write as _;

/// Latency distribution in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a set of per-op latencies (sorted in place).
    pub fn from_latencies(latencies: &mut [u64]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_unstable();
        let total: u64 = latencies.iter().sum();
        let at = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
        LatencySummary {
            mean_us: total as f64 / latencies.len() as f64,
            p50_us: at(0.50),
            p99_us: at(0.99),
            max_us: *latencies.last().expect("non-empty"),
        }
    }
}

/// Everything `prcc-load` measures in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Topology family name.
    pub topology: String,
    /// Cluster size.
    pub nodes: usize,
    /// Ops issued (writes + reads).
    pub ops: usize,
    /// Reads among `ops`.
    pub reads: usize,
    /// Workload seed.
    pub seed: u64,
    /// Simulated value bytes per update.
    pub value_bytes: usize,
    /// Hotspot fraction, if any.
    pub hotspot: Option<f64>,
    /// Wall-clock seconds spent driving load (excludes drain).
    pub drive_seconds: f64,
    /// Wall-clock seconds until quiescence after the last op.
    pub drain_seconds: f64,
    /// Ops per second during the drive phase.
    pub throughput_ops_per_sec: f64,
    /// Client-observed op latency.
    pub latency: LatencySummary,
    /// Total bytes written to peer sockets across the cluster.
    pub wire_bytes_out: u64,
    /// Wire bytes per issued update.
    pub wire_bytes_per_update: f64,
    /// Update copies sent / received / applied across the cluster.
    pub messages_sent: u64,
    /// Peer frames written (batches).
    pub batches_sent: u64,
    /// Mean updates per batch.
    pub updates_per_batch: f64,
    /// Whether the post-hoc oracle replay found the run causally consistent.
    pub consistent: bool,
    /// Safety violations found by replay.
    pub safety_violations: usize,
    /// Liveness violations found by replay (at quiescence: should be 0).
    pub liveness_violations: usize,
}

impl BenchReport {
    /// Folds per-node statuses into the aggregate wire/message fields.
    pub fn absorb_statuses(&mut self, statuses: &[NodeStatus]) {
        let issued: u64 = statuses.iter().map(|s| s.issued).sum();
        self.messages_sent = statuses.iter().map(|s| s.messages_sent).sum();
        self.wire_bytes_out = statuses.iter().map(|s| s.bytes_out).sum();
        self.batches_sent = statuses.iter().map(|s| s.batches_sent).sum();
        self.wire_bytes_per_update = if issued == 0 {
            0.0
        } else {
            self.wire_bytes_out as f64 / issued as f64
        };
        self.updates_per_batch = if self.batches_sent == 0 {
            0.0
        } else {
            self.messages_sent as f64 / self.batches_sent as f64
        };
    }

    /// Renders the stable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"benchmark\": \"prcc-load\",");
        let _ = writeln!(out, "  \"topology\": \"{}\",", self.topology);
        let _ = writeln!(out, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(out, "  \"ops\": {},", self.ops);
        let _ = writeln!(out, "  \"reads\": {},", self.reads);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"value_bytes\": {},", self.value_bytes);
        let _ = writeln!(
            out,
            "  \"hotspot\": {},",
            self.hotspot
                .map_or_else(|| "null".to_string(), |f| format!("{f:.3}"))
        );
        let _ = writeln!(out, "  \"drive_seconds\": {:.6},", self.drive_seconds);
        let _ = writeln!(out, "  \"drain_seconds\": {:.6},", self.drain_seconds);
        let _ = writeln!(
            out,
            "  \"throughput_ops_per_sec\": {:.1},",
            self.throughput_ops_per_sec
        );
        let _ = writeln!(out, "  \"latency_mean_us\": {:.1},", self.latency.mean_us);
        let _ = writeln!(out, "  \"latency_p50_us\": {},", self.latency.p50_us);
        let _ = writeln!(out, "  \"latency_p99_us\": {},", self.latency.p99_us);
        let _ = writeln!(out, "  \"latency_max_us\": {},", self.latency.max_us);
        let _ = writeln!(out, "  \"wire_bytes_out\": {},", self.wire_bytes_out);
        let _ = writeln!(
            out,
            "  \"wire_bytes_per_update\": {:.1},",
            self.wire_bytes_per_update
        );
        let _ = writeln!(out, "  \"messages_sent\": {},", self.messages_sent);
        let _ = writeln!(out, "  \"batches_sent\": {},", self.batches_sent);
        let _ = writeln!(
            out,
            "  \"updates_per_batch\": {:.2},",
            self.updates_per_batch
        );
        let _ = writeln!(out, "  \"consistent\": {},", self.consistent);
        let _ = writeln!(out, "  \"safety_violations\": {},", self.safety_violations);
        let _ = writeln!(
            out,
            "  \"liveness_violations\": {}",
            self.liveness_violations
        );
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let mut latencies: Vec<u64> = (1..=100).collect();
        let summary = LatencySummary::from_latencies(&mut latencies);
        assert_eq!(summary.p50_us, 50);
        assert_eq!(summary.p99_us, 99);
        assert_eq!(summary.max_us, 100);
        assert!((summary.mean_us - 50.5).abs() < 1e-9);
        assert_eq!(
            LatencySummary::from_latencies(&mut []),
            LatencySummary::default()
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut report = BenchReport {
            topology: "ring".into(),
            nodes: 4,
            ops: 100,
            reads: 10,
            seed: 1,
            value_bytes: 64,
            hotspot: Some(0.25),
            drive_seconds: 1.5,
            drain_seconds: 0.1,
            throughput_ops_per_sec: 66.7,
            latency: LatencySummary::default(),
            wire_bytes_out: 0,
            wire_bytes_per_update: 0.0,
            messages_sent: 0,
            batches_sent: 0,
            updates_per_batch: 0.0,
            consistent: true,
            safety_violations: 0,
            liveness_violations: 0,
        };
        report.absorb_statuses(&[
            NodeStatus {
                issued: 50,
                messages_sent: 100,
                bytes_out: 5000,
                batches_sent: 20,
                ..NodeStatus::default()
            },
            NodeStatus {
                issued: 50,
                messages_sent: 100,
                bytes_out: 5000,
                batches_sent: 30,
                ..NodeStatus::default()
            },
        ]);
        assert_eq!(report.messages_sent, 200);
        assert!((report.wire_bytes_per_update - 100.0).abs() < 1e-9);
        assert!((report.updates_per_batch - 4.0).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"hotspot\": 0.250,"));
        assert!(json.contains("\"consistent\": true,"));
    }
}
