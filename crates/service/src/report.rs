//! The `prcc-load` benchmark report and its JSON emission.
//!
//! JSON is written by hand — the hermetic workspace has no serde_json — but
//! the schema is stable and intended for cross-PR tracking in
//! `BENCH_service.json`. The percentile and verdict summaries are the
//! shared structs of [`prcc_workloads::report`], so this schema cannot
//! drift from the simulator's.

use crate::wire::NodeStatus;
use prcc_telemetry::{HistSummary, MetricsSnapshot};
use std::fmt::Write as _;

pub use prcc_workloads::{LatencySummary, VerdictSummary};

/// Per-partition slice of a load run, aggregated across nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionBench {
    /// Updates issued into this partition.
    pub issued: u64,
    /// Remote updates applied in this partition across the cluster.
    pub applies: u64,
    /// Whether this partition's replay was causally consistent.
    pub consistent: bool,
}

/// Everything `prcc-load` measures in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Topology family name.
    pub topology: String,
    /// Cluster size (physical nodes).
    pub nodes: usize,
    /// Number of partitions sharding the register space.
    pub partitions: usize,
    /// Ops issued (writes + reads).
    pub ops: usize,
    /// Reads among `ops`.
    pub reads: usize,
    /// Workload seed.
    pub seed: u64,
    /// Simulated value bytes per update.
    pub value_bytes: usize,
    /// Hotspot fraction, if any.
    pub hotspot: Option<f64>,
    /// Wall-clock seconds spent driving load (excludes drain).
    pub drive_seconds: f64,
    /// Wall-clock seconds until quiescence after the last op.
    pub drain_seconds: f64,
    /// Ops per second during the drive phase.
    pub throughput_ops_per_sec: f64,
    /// Client-observed op latency.
    pub latency: LatencySummary,
    /// Total bytes written to peer sockets across the cluster.
    pub wire_bytes_out: u64,
    /// Wire bytes per issued update.
    pub wire_bytes_per_update: f64,
    /// Update copies sent / received / applied across the cluster.
    pub messages_sent: u64,
    /// Per-partition update runs shipped to peers (sections, the v2 "batch"
    /// unit — comparable across wire versions).
    pub batches_sent: u64,
    /// Peer update frames written; with v3 multi-partition framing, one per
    /// flush regardless of how many partitions the flush touched.
    pub frames_sent: u64,
    /// Sender flush cycles across the cluster.
    pub flushes: u64,
    /// Mean updates per batch.
    pub updates_per_batch: f64,
    /// Mean frames per flush — 1.0 under v3 packing; ~partitions-present
    /// under the old one-frame-per-partition framing this report guards
    /// against regressing to.
    pub frames_per_flush: f64,
    /// Whether the run persisted node state (a `--data-dir` was set).
    pub durable: bool,
    /// Crash/restart cycles injected during the drive phase
    /// (`--crash-restart`).
    pub crash_restarts: u64,
    /// Update copies resent from durable windows after reconnects.
    pub resent: u64,
    /// WAL records appended across the cluster (post-restart processes
    /// count from zero, like the socket counters).
    pub wal_appends: u64,
    /// WAL write syscalls across the cluster. Per-sweep group commit makes
    /// this < `wal_appends` under load; `wal_writes == wal_appends` means
    /// no coalescing happened.
    pub wal_writes: u64,
    /// Buffer-pool leases served from a shelf across the cluster.
    pub pool_hits: u64,
    /// Buffer-pool leases that had to allocate (cold shelf or oversized).
    pub pool_misses: u64,
    /// Pooled buffers out on lease at the end of the run, cluster-wide.
    pub pool_outstanding: u64,
    /// Snapshots written across the cluster.
    pub snapshots_written: u64,
    /// Group-commit cadence the run used (0 = no fsync).
    pub fsync_every: u64,
    /// Total WAL bytes on disk at the end of the run (bounded by the
    /// snapshot cadence — snapshots truncate the logs).
    pub wal_bytes: u64,
    /// Largest most-recent-snapshot payload across nodes, in bytes. With
    /// checkpointed trace compaction this is O(live state).
    pub snapshot_bytes: u64,
    /// Worst last-to-first snapshot size ratio across nodes (1.0 = flat;
    /// the pre-compaction codec grew linearly with ops). 0 when no node
    /// wrote two snapshots.
    pub snapshot_growth: f64,
    /// Live (uncompacted) trace events across the cluster at the end of
    /// the run.
    pub trace_events: u64,
    /// Trace events sealed into checkpoint summaries and discarded.
    pub sealed_events: u64,
    /// Largest per-peer resend window observed anywhere.
    pub max_window: u64,
    /// Resend-window entries evicted by the per-peer cap. Nonzero means
    /// the cluster *gave up* delivering some updates to a stranded peer —
    /// the load harness refuses to report such a run as clean.
    pub window_evicted: u64,
    /// Reactor worker wakeups (epoll_wait returns) across the cluster.
    pub reactor_wakeups: u64,
    /// Readiness events delivered across all wakeups;
    /// `reactor_events / reactor_wakeups` is the event-batching ratio.
    pub reactor_events: u64,
    /// Write-interest re-arms after partial (`WouldBlock`) flushes — each
    /// is a write the event loop parked instead of blocking a thread on.
    pub reactor_rearms: u64,
    /// Worst single-connection outbound-queue depth in bytes anywhere in
    /// the cluster (capped by the backpressure bound).
    pub reactor_outq_hiwat: u64,
    /// Straggler deliveries fast-dropped by the receiver-side seal
    /// barrier without a watermark re-check.
    pub barrier_skips: u64,
    /// Peak thread count of the load-harness process mid-drive (cluster
    /// nodes run in-process, so thread-per-connection regressions show
    /// up here); 0 when the harness did not sample it.
    pub process_threads: u64,
    /// Peak open-file-descriptor count of the load-harness process
    /// mid-drive; 0 when the harness did not sample it.
    pub process_fds: u64,
    /// Update-lifecycle sampling period the run used (0 = tracing off; the
    /// stage summaries below are then empty).
    pub sample_every: u64,
    /// Server-side issue→apply-at-recipient latency, merged across nodes
    /// (bucket-wise histogram merge, so the percentiles are over the union
    /// of samples — not averages of per-node percentiles).
    pub visibility: HistSummary,
    /// Server-side receive→apply stall: time sampled updates spent parked
    /// behind the deliverability predicate — the paper's false-dependency
    /// cost, measured.
    pub pending_stall: HistSummary,
    /// Origin-side WAL append latency for sampled writes.
    pub wal_append: HistSummary,
    /// Issue→first-socket-write latency for sampled updates.
    pub send: HistSummary,
    /// The folded oracle outcome over all partitions.
    pub verdict: VerdictSummary,
    /// Per-partition load and verdict breakdown.
    pub per_partition: Vec<PartitionBench>,
}

impl BenchReport {
    /// Folds per-node statuses into the aggregate wire/message fields and
    /// the per-partition load counters (partition verdicts are set by the
    /// caller from the per-partition replay).
    pub fn absorb_statuses(&mut self, statuses: &[NodeStatus]) {
        let issued: u64 = statuses.iter().map(|s| s.issued).sum();
        self.messages_sent = statuses.iter().map(|s| s.messages_sent).sum();
        self.wire_bytes_out = statuses.iter().map(|s| s.bytes_out).sum();
        self.batches_sent = statuses.iter().map(|s| s.batches_sent).sum();
        self.frames_sent = statuses.iter().map(|s| s.frames_sent).sum();
        self.flushes = statuses.iter().map(|s| s.flushes).sum();
        self.resent = statuses.iter().map(|s| s.resent).sum();
        self.wal_appends = statuses.iter().map(|s| s.wal_appends).sum();
        self.snapshots_written = statuses.iter().map(|s| s.snapshots_written).sum();
        self.wal_bytes = statuses.iter().map(|s| s.wal_bytes).sum();
        self.snapshot_bytes = statuses.iter().map(|s| s.snapshot_bytes).max().unwrap_or(0);
        self.snapshot_growth = statuses
            .iter()
            .filter(|s| s.first_snapshot_bytes > 0 && s.snapshots_written > 1)
            .map(|s| s.snapshot_bytes as f64 / s.first_snapshot_bytes as f64)
            .fold(0.0f64, f64::max);
        self.trace_events = statuses.iter().map(|s| s.trace_events).sum();
        self.sealed_events = statuses.iter().map(|s| s.sealed_events).sum();
        self.max_window = statuses.iter().map(|s| s.max_window).max().unwrap_or(0);
        self.window_evicted = statuses.iter().map(|s| s.window_evicted).sum();
        self.reactor_wakeups = statuses.iter().map(|s| s.reactor_wakeups).sum();
        self.reactor_events = statuses.iter().map(|s| s.reactor_events).sum();
        self.reactor_rearms = statuses.iter().map(|s| s.reactor_rearms).sum();
        self.reactor_outq_hiwat = statuses
            .iter()
            .map(|s| s.reactor_outq_hiwat)
            .max()
            .unwrap_or(0);
        self.barrier_skips = statuses.iter().map(|s| s.barrier_skips).sum();
        self.wire_bytes_per_update = if issued == 0 {
            0.0
        } else {
            self.wire_bytes_out as f64 / issued as f64
        };
        self.updates_per_batch = if self.batches_sent == 0 {
            0.0
        } else {
            self.messages_sent as f64 / self.batches_sent as f64
        };
        self.frames_per_flush = if self.flushes == 0 {
            0.0
        } else {
            self.frames_sent as f64 / self.flushes as f64
        };
        if self.per_partition.len() < self.partitions {
            self.per_partition
                .resize(self.partitions, PartitionBench::default());
        }
        for status in statuses {
            for (p, counters) in status.per_partition.iter().enumerate() {
                if let Some(slot) = self.per_partition.get_mut(p) {
                    slot.issued += counters.issued;
                    slot.applies += counters.applies;
                }
            }
        }
    }

    /// Folds the cluster-merged metrics snapshot into the server-side
    /// stage summaries. Missing histograms (tracing off, old node) leave
    /// the summaries at their zero default.
    pub fn absorb_metrics(&mut self, metrics: &MetricsSnapshot) {
        self.visibility = metrics.hist_summary("visibility_us").unwrap_or_default();
        self.pending_stall = metrics.hist_summary("pending_stall_us").unwrap_or_default();
        self.wal_append = metrics.hist_summary("wal_append_us").unwrap_or_default();
        self.send = metrics.hist_summary("send_us").unwrap_or_default();
        // The hot-path counters ride the metrics frame rather than the
        // fixed-shape v6 status frame (gauges sum across nodes on merge).
        self.wal_writes = metrics.gauge("wal_writes").unwrap_or(0);
        self.pool_hits = metrics.counter("pool_hits").unwrap_or(0);
        self.pool_misses = metrics.counter("pool_misses").unwrap_or(0);
        self.pool_outstanding = metrics.gauge("pool_outstanding").unwrap_or(0);
    }

    /// Renders the stable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"benchmark\": \"prcc-load\",");
        let _ = writeln!(out, "  \"topology\": \"{}\",", self.topology);
        let _ = writeln!(out, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(out, "  \"partitions\": {},", self.partitions);
        let _ = writeln!(out, "  \"ops\": {},", self.ops);
        let _ = writeln!(out, "  \"reads\": {},", self.reads);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"value_bytes\": {},", self.value_bytes);
        let _ = writeln!(
            out,
            "  \"hotspot\": {},",
            self.hotspot
                .map_or_else(|| "null".to_string(), |f| format!("{f:.3}"))
        );
        let _ = writeln!(out, "  \"drive_seconds\": {:.6},", self.drive_seconds);
        let _ = writeln!(out, "  \"drain_seconds\": {:.6},", self.drain_seconds);
        let _ = writeln!(
            out,
            "  \"throughput_ops_per_sec\": {:.1},",
            self.throughput_ops_per_sec
        );
        let _ = writeln!(out, "  \"latency_mean_us\": {:.1},", self.latency.mean_us);
        let _ = writeln!(out, "  \"latency_p50_us\": {},", self.latency.p50_us);
        let _ = writeln!(out, "  \"latency_p99_us\": {},", self.latency.p99_us);
        let _ = writeln!(out, "  \"latency_p999_us\": {},", self.latency.p999_us);
        let _ = writeln!(out, "  \"latency_max_us\": {},", self.latency.max_us);
        let _ = writeln!(out, "  \"sample_every\": {},", self.sample_every);
        let _ = writeln!(out, "  \"visibility_us\": {},", hist_json(&self.visibility));
        let _ = writeln!(
            out,
            "  \"pending_stall_us\": {},",
            hist_json(&self.pending_stall)
        );
        let _ = writeln!(out, "  \"wal_append_us\": {},", hist_json(&self.wal_append));
        let _ = writeln!(out, "  \"send_us\": {},", hist_json(&self.send));
        let _ = writeln!(out, "  \"wire_bytes_out\": {},", self.wire_bytes_out);
        let _ = writeln!(
            out,
            "  \"wire_bytes_per_update\": {:.1},",
            self.wire_bytes_per_update
        );
        let _ = writeln!(out, "  \"messages_sent\": {},", self.messages_sent);
        let _ = writeln!(out, "  \"batches_sent\": {},", self.batches_sent);
        let _ = writeln!(out, "  \"frames_sent\": {},", self.frames_sent);
        let _ = writeln!(out, "  \"flushes\": {},", self.flushes);
        let _ = writeln!(
            out,
            "  \"updates_per_batch\": {:.2},",
            self.updates_per_batch
        );
        let _ = writeln!(out, "  \"frames_per_flush\": {:.2},", self.frames_per_flush);
        let _ = writeln!(out, "  \"durable\": {},", self.durable);
        let _ = writeln!(out, "  \"crash_restarts\": {},", self.crash_restarts);
        let _ = writeln!(out, "  \"resent\": {},", self.resent);
        let _ = writeln!(out, "  \"wal_appends\": {},", self.wal_appends);
        let _ = writeln!(out, "  \"wal_writes\": {},", self.wal_writes);
        let _ = writeln!(out, "  \"pool_hits\": {},", self.pool_hits);
        let _ = writeln!(out, "  \"pool_misses\": {},", self.pool_misses);
        let _ = writeln!(out, "  \"pool_outstanding\": {},", self.pool_outstanding);
        let _ = writeln!(out, "  \"snapshots_written\": {},", self.snapshots_written);
        let _ = writeln!(out, "  \"fsync_every\": {},", self.fsync_every);
        let _ = writeln!(out, "  \"wal_bytes\": {},", self.wal_bytes);
        let _ = writeln!(out, "  \"snapshot_bytes\": {},", self.snapshot_bytes);
        let _ = writeln!(out, "  \"snapshot_growth\": {:.2},", self.snapshot_growth);
        let _ = writeln!(out, "  \"trace_events\": {},", self.trace_events);
        let _ = writeln!(out, "  \"sealed_events\": {},", self.sealed_events);
        let _ = writeln!(out, "  \"max_window\": {},", self.max_window);
        let _ = writeln!(out, "  \"window_evicted\": {},", self.window_evicted);
        let _ = writeln!(out, "  \"reactor_wakeups\": {},", self.reactor_wakeups);
        let _ = writeln!(out, "  \"reactor_events\": {},", self.reactor_events);
        let _ = writeln!(out, "  \"reactor_rearms\": {},", self.reactor_rearms);
        let _ = writeln!(
            out,
            "  \"reactor_outq_hiwat\": {},",
            self.reactor_outq_hiwat
        );
        let _ = writeln!(out, "  \"barrier_skips\": {},", self.barrier_skips);
        let _ = writeln!(out, "  \"process_threads\": {},", self.process_threads);
        let _ = writeln!(out, "  \"process_fds\": {},", self.process_fds);
        let _ = writeln!(out, "  \"consistent\": {},", self.verdict.consistent);
        let _ = writeln!(
            out,
            "  \"safety_violations\": {},",
            self.verdict.safety_violations
        );
        let _ = writeln!(
            out,
            "  \"liveness_violations\": {},",
            self.verdict.liveness_violations
        );
        let _ = writeln!(out, "  \"per_partition\": [");
        for (p, part) in self.per_partition.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"partition\": {p}, \"issued\": {}, \"applies\": {}, \
                 \"consistent\": {}}}{}",
                part.issued,
                part.applies,
                part.consistent,
                if p + 1 < self.per_partition.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// One stage summary as an inline JSON object (same shape for every stage,
/// so downstream tooling can index them uniformly).
fn hist_json(s: &HistSummary) -> String {
    format!(
        "{{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \"p90_us\": {}, \
         \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}}",
        s.count, s.mean_us, s.p50_us, s.p90_us, s.p99_us, s.p999_us, s.max_us
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::PartitionCounters;

    #[test]
    fn json_is_well_formed_enough() {
        let mut report = BenchReport {
            topology: "ring".into(),
            nodes: 4,
            partitions: 2,
            ops: 100,
            reads: 10,
            seed: 1,
            value_bytes: 64,
            hotspot: Some(0.25),
            drive_seconds: 1.5,
            drain_seconds: 0.1,
            throughput_ops_per_sec: 66.7,
            latency: LatencySummary::default(),
            wire_bytes_out: 0,
            wire_bytes_per_update: 0.0,
            messages_sent: 0,
            batches_sent: 0,
            frames_sent: 0,
            flushes: 0,
            updates_per_batch: 0.0,
            frames_per_flush: 0.0,
            durable: true,
            crash_restarts: 1,
            resent: 0,
            wal_appends: 0,
            wal_writes: 0,
            pool_hits: 0,
            pool_misses: 0,
            pool_outstanding: 0,
            snapshots_written: 0,
            fsync_every: 0,
            wal_bytes: 0,
            snapshot_bytes: 0,
            snapshot_growth: 0.0,
            trace_events: 0,
            sealed_events: 0,
            max_window: 0,
            window_evicted: 0,
            reactor_wakeups: 0,
            reactor_events: 0,
            reactor_rearms: 0,
            reactor_outq_hiwat: 0,
            barrier_skips: 0,
            process_threads: 0,
            process_fds: 0,
            sample_every: 16,
            visibility: HistSummary::default(),
            pending_stall: HistSummary::default(),
            wal_append: HistSummary::default(),
            send: HistSummary::default(),
            verdict: VerdictSummary {
                consistent: true,
                safety_violations: 0,
                liveness_violations: 0,
            },
            per_partition: Vec::new(),
        };
        report.absorb_statuses(&[
            NodeStatus {
                issued: 50,
                messages_sent: 100,
                bytes_out: 5000,
                batches_sent: 20,
                frames_sent: 8,
                flushes: 8,
                resent: 3,
                wal_appends: 70,
                snapshots_written: 2,
                wal_bytes: 4096,
                snapshot_bytes: 1000,
                first_snapshot_bytes: 800,
                trace_events: 40,
                sealed_events: 600,
                max_window: 9,
                per_partition: vec![
                    PartitionCounters {
                        issued: 30,
                        applies: 60,
                        pending: 0,
                    },
                    PartitionCounters {
                        issued: 20,
                        applies: 40,
                        pending: 0,
                    },
                ],
                ..NodeStatus::default()
            },
            NodeStatus {
                issued: 50,
                messages_sent: 100,
                bytes_out: 5000,
                batches_sent: 30,
                frames_sent: 12,
                flushes: 12,
                per_partition: vec![
                    PartitionCounters {
                        issued: 50,
                        applies: 10,
                        pending: 0,
                    },
                    PartitionCounters::default(),
                ],
                ..NodeStatus::default()
            },
        ]);
        assert_eq!(report.messages_sent, 200);
        assert!((report.wire_bytes_per_update - 100.0).abs() < 1e-9);
        assert!((report.updates_per_batch - 4.0).abs() < 1e-9);
        assert_eq!(report.frames_sent, 20);
        assert_eq!(report.flushes, 20);
        assert_eq!(report.resent, 3);
        assert_eq!(report.wal_appends, 70);
        assert_eq!(report.snapshots_written, 2);
        assert_eq!(report.wal_bytes, 4096);
        assert_eq!(report.snapshot_bytes, 1000);
        assert!((report.snapshot_growth - 1.25).abs() < 1e-9);
        assert_eq!(report.trace_events, 40);
        assert_eq!(report.sealed_events, 600);
        assert_eq!(report.max_window, 9);
        assert!((report.frames_per_flush - 1.0).abs() < 1e-9);
        assert_eq!(report.per_partition.len(), 2);
        assert_eq!(report.per_partition[0].issued, 80);
        assert_eq!(report.per_partition[1].applies, 40);
        // Server-side stage summaries come from the merged metrics frame.
        let mut hist = prcc_telemetry::Histogram::new();
        for v in [100u64, 200, 50_000] {
            hist.record(v);
        }
        report.absorb_metrics(&MetricsSnapshot {
            counters: vec![("pool_hits".into(), 900), ("pool_misses".into(), 100)],
            gauges: vec![("pool_outstanding".into(), 7), ("wal_writes".into(), 45)],
            hists: vec![
                ("pending_stall_us".into(), hist.clone()),
                ("visibility_us".into(), hist),
            ],
        });
        assert_eq!(report.visibility.count, 3);
        assert_eq!(report.pending_stall.count, 3);
        assert_eq!(report.wal_append, HistSummary::default());
        assert_eq!(report.wal_writes, 45);
        assert_eq!(report.pool_hits, 900);
        assert_eq!(report.pool_misses, 100);
        assert_eq!(report.pool_outstanding, 7);
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"latency_p999_us\": 0,"));
        assert!(json.contains("\"sample_every\": 16,"));
        assert!(json.contains("\"visibility_us\": {\"count\": 3,"));
        assert!(json.contains("\"pending_stall_us\": {\"count\": 3,"));
        assert!(json.contains("\"send_us\": {\"count\": 0,"));
        assert!(json.contains("\"frames_sent\": 20,"));
        assert!(json.contains("\"frames_per_flush\": 1.00,"));
        assert!(json.contains("\"durable\": true,"));
        assert!(json.contains("\"crash_restarts\": 1,"));
        assert!(json.contains("\"wal_appends\": 70,"));
        assert!(json.contains("\"wal_writes\": 45,"));
        assert!(json.contains("\"pool_hits\": 900,"));
        assert!(json.contains("\"pool_misses\": 100,"));
        assert!(json.contains("\"pool_outstanding\": 7,"));
        assert!(json.contains("\"hotspot\": 0.250,"));
        assert!(json.contains("\"consistent\": true,"));
        assert!(json.contains("\"partitions\": 2,"));
        assert!(json.contains("\"partition\": 1"));
    }
}
