//! Deterministic chaos over the deployed TCP service: a seeded nemesis
//! proxy on every directed peer link (delays, one-slot reorders,
//! duplicates, silent drops, severs at and inside frame boundaries,
//! rotating split-brain partitions), composed with crash/restart and
//! checkpointed trace compaction, audited **online** by marker-style
//! consistent cuts and **post hoc** by the stitched checkpointed oracle.
//!
//! Every fault decision the nemesis makes is drawn from a pure function
//! of `(seed, link, frame index)`, and every test here asserts the
//! realized decision log is bit-identical to the pure replay of its
//! schedule — a failing run is therefore reproducible from nothing but
//! its seed, and graduates into `regressions.rs` as a pinned seed.

mod common;

use common::{
    assert_all_partitions_consistent, assert_decision_log_replays, audit_until_closed,
    drain_or_dump, drive, launch_ring_via_nemesis, quick_cfg, scratch_dir, spawn_redial_drivers,
    wait_progress,
};
use prcc_chaos::{ChaosConfig, FaultProfile};
use prcc_service::wire::TAG_CUT_MARKER;
use prcc_service::ServiceConfig;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The suites' baseline chaos config: cut markers are protected (they
/// must keep their channel position for cuts to stay consistent, and
/// they do not consume schedule indices), partitions off unless a test
/// turns them on.
fn chaos_cfg(seed: u64, profile: FaultProfile) -> ChaosConfig {
    ChaosConfig {
        seed,
        profile,
        partition_every: 0,
        partition_len: 0,
        protect_tags: vec![TAG_CUT_MARKER],
    }
}

/// The tentpole composition: a 10k-op seeded workload over a durable
/// 4-node x 4-partition ring with every peer link faulted (drops,
/// reorders, duplicates, delays, severs, mid-frame cuts, rotating
/// split-brain windows), one node crash/restarted mid-drive, compaction
/// sealing history throughout — while online consistent-cut audits pass
/// mid-traffic and the post-hoc checkpointed oracle verifies the whole
/// run clean, with zero misrouted drops and zero window evictions.
#[test]
fn composed_chaos_run_verifies_clean_with_online_cut_audits() {
    let ops = 10_000usize;
    let dir = scratch_dir("chaos-composed");
    let cfg = ServiceConfig {
        data_dir: Some(dir.clone()),
        snapshot_every: 1024,
        trace_compact_at: 256,
        ack_every: 2,
        connect_timeout: Duration::from_secs(60),
        ..quick_cfg()
    };
    let mut chaos = chaos_cfg(0xC0FF_EE11, FaultProfile::light());
    chaos.partition_every = 800;
    chaos.partition_len = 80;
    let (mut cluster, nemesis) = launch_ring_via_nemesis(4, 4, &cfg, chaos.clone());

    let progress = Arc::new(AtomicUsize::new(0));
    let drivers = spawn_redial_drivers(&cluster, ops, 0xBEEF, &progress);

    // First online audit lands mid-traffic, well before the crash.
    wait_progress(&progress, ops / 3);
    let audits_pre = audit_until_closed(&cluster, 0xA001, 30);

    // Crash a node mid-stream (not node 0 — audits inject there) and
    // restart it from its WAL + snapshot while the nemesis keeps faulting
    // every link.
    cluster.crash_node(2);
    thread::sleep(Duration::from_millis(150));
    cluster.restart_node(2).expect("restart node 2");

    wait_progress(&progress, 2 * ops / 3);
    let audits_post = audit_until_closed(&cluster, 0xA101, 40);

    for driver in drivers {
        driver.join().expect("driver");
    }

    // Heal before draining: frames swallowed by drops and partition
    // windows are only resent at the next reconnect, which heal forces
    // exactly once per live link.
    nemesis.heal();
    drain_or_dump(&cluster, "composed chaos run");
    assert_all_partitions_consistent(&cluster, "composed chaos run");

    // Nothing was given up on: the same delivery gates as the CI smoke.
    let evicted = cluster
        .metrics()
        .expect("metrics")
        .gauge("core_window_evicted")
        .expect("core_window_evicted gauge");
    assert_eq!(evicted, 0, "updates evicted from resend windows");

    // The run actually composed every fault class...
    let counts = nemesis.schedule().fault_counts();
    assert!(
        counts.dropped > 0 && counts.duplicated > 0 && counts.reordered > 0,
        "fault mix too thin: {counts:?}"
    );
    assert!(
        counts.cut + counts.cut_mid > 0,
        "no severs drawn: {counts:?}"
    );
    assert!(
        counts.partition_dropped > 0,
        "no split-brain window hit a frame: {counts:?}"
    );
    // ...and its decision log replays bit-for-bit from the seed.
    assert_decision_log_replays(&nemesis, cluster.len());
    eprintln!(
        "composed chaos: {} faulted decisions, first closed cut after {audits_pre} audit(s) \
         pre-crash and {audits_post} post-restart; {counts:?}",
        counts.faulted()
    );

    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: three peers under a sever-happy schedule *plus* deliberate
/// crash/restart flaps of two different nodes. Every flap triggers a
/// redial storm on all links at once; the seeded jitter on the dial
/// backoff decorrelates them, and the cluster still converges to a
/// verified state once healed.
#[test]
fn three_peer_flap_storm_converges() {
    let ops = 3_000usize;
    let dir = scratch_dir("chaos-flap");
    let cfg = ServiceConfig {
        data_dir: Some(dir.clone()),
        snapshot_every: 1024,
        connect_timeout: Duration::from_secs(60),
        ..quick_cfg()
    };
    let profile = FaultProfile {
        cut_pm: 25,
        cut_mid_pm: 15,
        ..FaultProfile::light()
    };
    let (mut cluster, nemesis) = launch_ring_via_nemesis(2, 3, &cfg, chaos_cfg(0xF1A9, profile));

    let progress = Arc::new(AtomicUsize::new(0));
    let drivers = spawn_redial_drivers(&cluster, ops, 0x570B, &progress);
    for (i, victim) in [1usize, 2, 1, 2].into_iter().enumerate() {
        wait_progress(&progress, (i + 1) * ops / 6);
        cluster.crash_node(victim);
        thread::sleep(Duration::from_millis(100));
        cluster.restart_node(victim).expect("restart flapped node");
    }
    for driver in drivers {
        driver.join().expect("driver");
    }

    nemesis.heal();
    drain_or_dump(&cluster, "flap storm");
    assert_all_partitions_consistent(&cluster, "flap storm");
    let counts = nemesis.schedule().fault_counts();
    assert!(
        counts.cut + counts.cut_mid > 0,
        "the storm never severed a link: {counts:?}"
    );
    assert_decision_log_replays(&nemesis, cluster.len());
    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two back-to-back live runs under the same seed: wall-clock timing
/// differs, so the realized logs may have different *lengths* — but each
/// must be an exact prefix of the one pure schedule the seed defines,
/// decision for decision. This is the property that lets a failing run
/// be replayed from its seed alone.
#[test]
fn fixed_seed_decision_log_is_a_pure_function_of_the_seed() {
    for round in 0..2 {
        let cfg = ServiceConfig {
            connect_timeout: Duration::from_secs(60),
            ..quick_cfg()
        };
        let (cluster, nemesis) =
            launch_ring_via_nemesis(2, 3, &cfg, chaos_cfg(0x5EED, FaultProfile::light()));
        drive(&cluster, 600, 1);
        nemesis.heal();
        drain_or_dump(&cluster, "seeded determinism run");
        assert_all_partitions_consistent(&cluster, "seeded determinism run");
        assert_decision_log_replays(&nemesis, cluster.len());
        let counts = nemesis.schedule().fault_counts();
        assert!(
            counts.delivered > 0,
            "round {round}: no frames crossed the nemesis"
        );
        cluster.shutdown().expect("shutdown");
    }
}

/// An online audit against a quiet, fault-free cluster closes on the
/// first token — the baseline the chaotic audits are measured against —
/// and repeated audits with distinct tokens all close independently.
#[test]
fn cut_audits_close_on_a_healthy_cluster() {
    let cfg = quick_cfg();
    let (cluster, nemesis) =
        launch_ring_via_nemesis(2, 3, &cfg, chaos_cfg(0x0FF, FaultProfile::off()));
    drive(&cluster, 300, 3);
    for token in [1u64, 2, 900] {
        let verdict = cluster
            .cut_audit(token, Duration::from_secs(10))
            .expect("cut audit io");
        assert!(verdict.is_closed(), "token {token}: {verdict:?}");
    }
    nemesis.heal();
    drain_or_dump(&cluster, "healthy audit run");
    assert_all_partitions_consistent(&cluster, "healthy audit run");
    cluster.shutdown().expect("shutdown");
}
