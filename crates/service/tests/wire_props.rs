//! Property tests: the wire protocol round-trips clocks, updates and
//! topology configurations over random share graphs.

use prcc_checker::UpdateId;
use prcc_clock::{CompressedProtocol, EdgeProtocol, Protocol, VectorProtocol, WireClock};
use prcc_core::Update;
use prcc_graph::{topologies, RegisterId, ReplicaId, ShareGraph};
use prcc_net::VirtualTime;
use prcc_service::wire::{
    decode_batch, decode_peer_hello, decode_share_graph, encode_batch, encode_peer_hello,
    encode_share_graph, PeerHello,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn arb_share_graph() -> impl Strategy<Value = ShareGraph> {
    (2usize..7, 1usize..8, 2usize..4, 0u64..1000).prop_map(|(n, regs, holders, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        topologies::random_connected(n, regs, holders, &mut rng)
    })
}

/// Runs `advances` random advances on a clock of replica `i`, producing a
/// non-trivial counter pattern.
fn churn_clock<P: Protocol>(p: &P, i: ReplicaId, advances: usize, seed: u64) -> P::Clock {
    let g = p.share_graph();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
    let mut clock = p.new_clock(i);
    if regs.is_empty() {
        return clock;
    }
    for _ in 0..advances {
        let x = regs[rng.gen_range(0..regs.len())];
        p.advance(i, &mut clock, x);
    }
    clock
}

fn batch_round_trip<P: Protocol>(p: &P, g: &ShareGraph, seed: u64, pad: usize)
where
    P::Clock: WireClock,
{
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut updates = Vec::new();
    for k in g.replicas() {
        let regs: Vec<RegisterId> = g.registers_of(k).iter().collect();
        if regs.is_empty() {
            continue;
        }
        let x = regs[rng.gen_range(0..regs.len())];
        updates.push(Update {
            id: UpdateId(((k.index() as u64) << 40) | rng.gen_range(0u64..1 << 20)),
            issuer: k,
            register: x,
            value: rng.gen_range(0u64..u64::MAX / 2),
            clock: churn_clock(p, k, 1 + (seed as usize % 9), seed ^ 0x51),
            issued_at: VirtualTime::ZERO,
            received_at: VirtualTime::ZERO,
        });
    }
    let payload = encode_batch(&updates, pad);
    let decoded = decode_batch(&payload, |i| {
        (i.index() < g.num_replicas()).then(|| p.new_clock(i))
    })
    .expect("well-formed batch");
    assert_eq!(decoded.len(), updates.len());
    for (a, b) in decoded.iter().zip(&updates) {
        assert_eq!(
            (a.id, a.issuer, a.register, a.value),
            (b.id, b.issuer, b.register, b.value)
        );
        assert_eq!(a.clock, b.clock);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Share-graph topology configurations survive the wire byte-exactly.
    #[test]
    fn share_graph_round_trips(g in arb_share_graph()) {
        let mut buf = Vec::new();
        encode_share_graph(&g, &mut buf);
        let mut at = 0;
        let back = decode_share_graph(&buf, &mut at).expect("decode");
        prop_assert_eq!(at, buf.len());
        prop_assert_eq!(back, g);
    }

    /// Peer handshakes round-trip for every node of a random graph.
    #[test]
    fn peer_hello_round_trips(g in arb_share_graph()) {
        for node in g.replicas() {
            let hello = PeerHello { node, graph: g.clone() };
            let back = decode_peer_hello(&encode_peer_hello(&hello)).expect("decode");
            prop_assert_eq!(back, hello);
        }
    }

    /// Update batches round-trip for all three clock representations, with
    /// and without value padding.
    #[test]
    fn batches_round_trip_all_protocols(
        g in arb_share_graph(),
        seed in 0u64..500,
        pad in 0usize..96,
    ) {
        batch_round_trip(&EdgeProtocol::new(g.clone()), &g, seed, pad);
        batch_round_trip(&CompressedProtocol::new(g.clone()), &g, seed, pad);
        batch_round_trip(&VectorProtocol::new(g.clone()), &g, seed, pad);
    }

    /// Truncating an encoded batch anywhere never yields a successful parse
    /// of the full batch (framing keeps byte counts exact).
    #[test]
    fn truncated_batches_rejected(g in arb_share_graph(), seed in 0u64..100) {
        let p = EdgeProtocol::new(g.clone());
        let mut updates = Vec::new();
        for k in g.replicas().take(2) {
            let regs: Vec<RegisterId> = g.registers_of(k).iter().collect();
            prop_assume!(!regs.is_empty());
            updates.push(Update {
                id: UpdateId((k.index() as u64) << 40),
                issuer: k,
                register: regs[0],
                value: seed,
                clock: churn_clock(&p, k, 3, seed),
                issued_at: VirtualTime::ZERO,
                received_at: VirtualTime::ZERO,
            });
        }
        let payload = encode_batch(&updates, 8);
        for cut in 1..payload.len() {
            prop_assert!(
                decode_batch::<_, _>(&payload[..cut], |i| Some(p.new_clock(i))).is_err(),
                "truncation at {} parsed", cut
            );
        }
    }
}
