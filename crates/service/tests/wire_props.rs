//! Property tests: the wire protocol round-trips clocks, updates, topology
//! and sharding configurations over random share graphs, and preserves
//! partition tags on every frame.

use prcc_checker::UpdateId;
use prcc_clock::{CompressedProtocol, EdgeProtocol, Protocol, VectorProtocol, WireClock};
use prcc_core::Update;
use prcc_graph::{topologies, PartitionId, PartitionMap, RegisterId, ReplicaId, ShareGraph};
use prcc_net::VirtualTime;
use prcc_service::wire::{
    decode_batch, decode_multi_batch, decode_partition_map, decode_peer_batches, decode_peer_hello,
    decode_share_graph, encode_batch, encode_multi_batch, encode_partition_map, encode_peer_hello,
    encode_share_graph, PeerHello,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn arb_share_graph() -> impl Strategy<Value = ShareGraph> {
    (2usize..7, 1usize..8, 2usize..4, 0u64..1000).prop_map(|(n, regs, holders, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        topologies::random_connected(n, regs, holders, &mut rng)
    })
}

fn arb_partition_map() -> impl Strategy<Value = PartitionMap> {
    (arb_share_graph(), 1u32..9, 0usize..4).prop_map(|(g, partitions, extra_nodes)| {
        let nodes = g.num_replicas() + extra_nodes;
        PartitionMap::rotated(g, partitions, nodes).expect("valid rotation")
    })
}

/// Runs `advances` random advances on a clock of replica `i`, producing a
/// non-trivial counter pattern.
fn churn_clock<P: Protocol>(p: &P, i: ReplicaId, advances: usize, seed: u64) -> P::Clock {
    let g = p.share_graph();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
    let mut clock = p.new_clock(i);
    if regs.is_empty() {
        return clock;
    }
    for _ in 0..advances {
        let x = regs[rng.gen_range(0..regs.len())];
        p.advance(i, &mut clock, x);
    }
    clock
}

/// One random update per replica with a non-empty register set.
fn build_updates<P: Protocol>(p: &P, g: &ShareGraph, seed: u64) -> Vec<Update<P::Clock>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut updates = Vec::new();
    for k in g.replicas() {
        let regs: Vec<RegisterId> = g.registers_of(k).iter().collect();
        if regs.is_empty() {
            continue;
        }
        let x = regs[rng.gen_range(0..regs.len())];
        updates.push(Update {
            id: UpdateId(((k.index() as u64) << 40) | rng.gen_range(0u64..1 << 20)),
            issuer: k,
            register: x,
            value: rng.gen_range(0u64..u64::MAX / 2),
            clock: churn_clock(p, k, 1 + (seed as usize % 9), seed ^ 0x51),
            issued_at: VirtualTime::ZERO,
            received_at: VirtualTime::ZERO,
        });
    }
    updates
}

fn batch_round_trip<P: Protocol>(
    p: &P,
    g: &ShareGraph,
    partition: PartitionId,
    seed: u64,
    pad: usize,
) where
    P::Clock: WireClock,
{
    let updates = build_updates(p, g, seed);
    let payload = encode_batch(partition, &updates, pad);
    let (tag, decoded) = decode_batch(&payload, |i| {
        (i.index() < g.num_replicas()).then(|| p.new_clock(i))
    })
    .expect("well-formed batch");
    assert_eq!(tag, partition, "partition tag must survive the wire");
    assert_eq!(decoded.len(), updates.len());
    for (a, b) in decoded.iter().zip(&updates) {
        assert_eq!(
            (a.id, a.issuer, a.register, a.value),
            (b.id, b.issuer, b.register, b.value)
        );
        assert_eq!(a.clock, b.clock);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Share-graph topology configurations survive the wire byte-exactly.
    #[test]
    fn share_graph_round_trips(g in arb_share_graph()) {
        let mut buf = Vec::new();
        encode_share_graph(&g, &mut buf);
        let mut at = 0;
        let back = decode_share_graph(&buf, &mut at).expect("decode");
        prop_assert_eq!(at, buf.len());
        prop_assert_eq!(back, g);
    }

    /// Partition maps — graph, node count and hosting table — survive the
    /// wire byte-exactly, including maps with idle nodes.
    #[test]
    fn partition_map_round_trips(map in arb_partition_map()) {
        let mut buf = Vec::new();
        encode_partition_map(&map, &mut buf);
        let mut at = 0;
        let back = decode_partition_map(&buf, &mut at).expect("decode");
        prop_assert_eq!(at, buf.len());
        prop_assert_eq!(back, map);
    }

    /// Peer handshakes round-trip for every node of a random sharding.
    #[test]
    fn peer_hello_round_trips(map in arb_partition_map()) {
        for node in 0..map.num_nodes() {
            let hello = PeerHello { node, map: map.clone() };
            let back = decode_peer_hello(&encode_peer_hello(&hello)).expect("decode");
            prop_assert_eq!(back, hello);
        }
    }

    /// Update batches round-trip for all three clock representations and
    /// any partition tag, with and without value padding.
    #[test]
    fn batches_round_trip_all_protocols(
        g in arb_share_graph(),
        partition in 0u32..1000,
        seed in 0u64..500,
        pad in 0usize..96,
    ) {
        let partition = PartitionId(partition);
        batch_round_trip(&EdgeProtocol::new(g.clone()), &g, partition, seed, pad);
        batch_round_trip(&CompressedProtocol::new(g.clone()), &g, partition, seed, pad);
        batch_round_trip(&VectorProtocol::new(g.clone()), &g, partition, seed, pad);
    }

    /// Truncating an encoded batch anywhere never yields a successful parse
    /// of the full batch (framing keeps byte counts exact).
    #[test]
    fn truncated_batches_rejected(g in arb_share_graph(), seed in 0u64..100) {
        let p = EdgeProtocol::new(g.clone());
        let mut updates = Vec::new();
        for k in g.replicas().take(2) {
            let regs: Vec<RegisterId> = g.registers_of(k).iter().collect();
            prop_assume!(!regs.is_empty());
            updates.push(Update {
                id: UpdateId((k.index() as u64) << 40),
                issuer: k,
                register: regs[0],
                value: seed,
                clock: churn_clock(&p, k, 3, seed),
                issued_at: VirtualTime::ZERO,
                received_at: VirtualTime::ZERO,
            });
        }
        let payload = encode_batch(PartitionId(3), &updates, 8);
        for cut in 1..payload.len() {
            prop_assert!(
                decode_batch::<_, _>(&payload[..cut], |i| Some(p.new_clock(i))).is_err(),
                "truncation at {} parsed", cut
            );
        }
    }

    /// A whole flush — sections for several partitions — survives the wire
    /// as one frame: section order, partition tags, per-update link seqs,
    /// update contents and per-section update order all intact, for every
    /// clock representation.
    #[test]
    fn multi_batches_round_trip(
        g in arb_share_graph(),
        parts in proptest::collection::vec(0u32..1000, 1..6),
        seed in 0u64..500,
        pad in 0usize..64,
        seq_base in 0u64..1 << 50,
    ) {
        let p = EdgeProtocol::new(g.clone());
        let sections: Vec<(PartitionId, Vec<(u64, Update<_>)>)> = parts
            .iter()
            .enumerate()
            .map(|(i, &part)| {
                let updates = build_updates(&p, &g, seed ^ (i as u64) << 16)
                    .into_iter()
                    .enumerate()
                    .map(|(k, u)| (seq_base + ((i as u64) << 20) + k as u64, u))
                    .collect();
                (PartitionId(part), updates)
            })
            .collect();
        prop_assume!(sections.iter().all(|(_, u)| !u.is_empty()));
        let payload = encode_multi_batch(&sections, pad);
        let back = decode_multi_batch(&payload, |i| {
            (i.index() < g.num_replicas()).then(|| p.new_clock(i))
        }).expect("well-formed multi-batch");
        prop_assert_eq!(back.len(), sections.len());
        for ((bp, bu), (sp, su)) in back.iter().zip(&sections) {
            prop_assert_eq!(bp, sp, "section partition tag must survive in order");
            prop_assert_eq!(bu.len(), su.len());
            for ((aseq, a), (bseq, b)) in bu.iter().zip(su) {
                prop_assert_eq!(aseq, bseq, "link seq must survive the wire");
                prop_assert_eq!(
                    (a.id, a.issuer, a.register, a.value),
                    (b.id, b.issuer, b.register, b.value)
                );
                prop_assert_eq!(&a.clock, &b.clock);
            }
        }
        // The reader-side dispatcher accepts both framings.
        let dispatched = decode_peer_batches(&payload, |i| {
            (i.index() < g.num_replicas()).then(|| p.new_clock(i))
        }).expect("dispatch");
        prop_assert_eq!(dispatched.len(), sections.len());
    }

    /// Empty sections never reach the wire: the encoder drops them, and a
    /// flush of only-empty sections produces a frame the decoder refuses.
    #[test]
    fn multi_batch_empty_sections_dropped_or_rejected(
        g in arb_share_graph(),
        parts in proptest::collection::vec((0u32..1000, any::<bool>()), 1..6),
        seed in 0u64..200,
    ) {
        let p = EdgeProtocol::new(g.clone());
        let sections: Vec<(PartitionId, Vec<(u64, Update<_>)>)> = parts
            .iter()
            .map(|&(part, live)| {
                let updates = if live {
                    build_updates(&p, &g, seed)
                        .into_iter()
                        .enumerate()
                        .map(|(k, u)| (1 + k as u64, u))
                        .collect()
                } else {
                    Vec::new()
                };
                (PartitionId(part), updates)
            })
            .collect();
        let live: Vec<&(PartitionId, Vec<(u64, Update<_>)>)> =
            sections.iter().filter(|(_, u)| !u.is_empty()).collect();
        let payload = encode_multi_batch(&sections, 0);
        let result = decode_multi_batch(&payload, |i| {
            (i.index() < g.num_replicas()).then(|| p.new_clock(i))
        });
        if live.is_empty() {
            let err = result.expect_err("zero-section frame must be refused");
            prop_assert!(err.to_string().contains("no sections"), "{}", err);
        } else {
            let back = result.expect("decode");
            prop_assert_eq!(back.len(), live.len());
            for ((bp, bu), (sp, su)) in back.iter().zip(&live) {
                prop_assert_eq!(bp, sp);
                prop_assert_eq!(bu.len(), su.len());
            }
        }
    }

    /// Truncating an encoded multi-batch anywhere never parses.
    #[test]
    fn truncated_multi_batches_rejected(g in arb_share_graph(), seed in 0u64..100) {
        let p = EdgeProtocol::new(g.clone());
        let updates: Vec<(u64, Update<_>)> = build_updates(&p, &g, seed)
            .into_iter()
            .enumerate()
            .map(|(k, u)| (1 + k as u64, u))
            .collect();
        prop_assume!(!updates.is_empty());
        let sections = vec![
            (PartitionId(9), updates.clone()),
            (PartitionId(2), updates),
        ];
        let payload = encode_multi_batch(&sections, 4);
        for cut in 0..payload.len() {
            prop_assert!(
                decode_multi_batch::<_, _>(&payload[..cut], |i| Some(p.new_clock(i))).is_err(),
                "truncation at {} parsed", cut
            );
        }
    }

    /// The concrete upgrade scenario: a peer still speaking an older wire
    /// version (v2 partition tagging, v3 unacknowledged frame packing, v5
    /// stamp-free updates, v6 windowed acks) is refused by a current node
    /// at the handshake with an error naming both versions —
    /// mixed-version clusters fail loudly, not silently.
    #[test]
    fn stale_version_hellos_refused_by_current(map in arb_partition_map()) {
        let mut payload = encode_peer_hello(&PeerHello { node: 0, map });
        prop_assert_eq!(u64::from(payload[1]), prcc_service::WIRE_VERSION);
        let current = prcc_service::WIRE_VERSION;
        for old in [2u8, 3, 4, 5, 6] {
            payload[1] = old; // an old peer's hello differs exactly here
            let err = decode_peer_hello(&payload).unwrap_err();
            prop_assert!(
                err.to_string().contains(&format!("peer speaks v{old}")),
                "{}", err
            );
            prop_assert!(
                err.to_string().contains(&format!("this node v{current}")),
                "{}", err
            );
        }
    }

    /// A hello whose version varint is patched to any other value is
    /// refused with a version-mismatch error — the refusal behavior
    /// misconfigured deployments rely on.
    #[test]
    fn foreign_version_hellos_refused(map in arb_partition_map(), version in 0u8..64) {
        prop_assume!(u64::from(version) != prcc_service::WIRE_VERSION);
        let mut payload = encode_peer_hello(&PeerHello { node: 0, map });
        // WIRE_VERSION < 128 encodes as one varint byte right after the tag,
        // and so does any `version in 0..64`.
        payload[1] = version;
        let err = decode_peer_hello(&payload).unwrap_err();
        prop_assert!(
            err.to_string().contains("version mismatch"),
            "unexpected refusal: {}", err
        );
    }
}
