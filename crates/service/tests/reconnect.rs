//! Peer-link resilience under the v4 acknowledged-link protocol.
//!
//! Each test stands up ONE real node and plays its peer by hand: a plain
//! `TcpListener` accepts the sender's connection, answers the handshake
//! with a chosen hello-ack (the acknowledged resume offset), reads update
//! frames, then drops the socket to kill the link. The node must redial
//! (with backoff), re-handshake, and resend its unacked window from
//! whatever offset the fake peer acknowledges:
//!
//! * acked offset > 0 → already-acknowledged updates are *not* resent;
//! * acked offset 0 → everything comes again, including updates that were
//!   delivered on (or buffered into) the dying connection — closing the
//!   PR 3 gap where frames written into a dead socket were silently lost.

mod common;

use common::{accept_handshake, read_hello};
use prcc_clock::{EdgeProtocol, Protocol};
use prcc_graph::{topologies, PartitionMap, RegisterId};
use prcc_service::node::{spawn_node, NodeSeed, ServiceConfig};
use prcc_service::wire::{decode_peer_batches, encode_hello_ack, read_frame, write_frame};
use prcc_service::ServiceClient;
use std::collections::BTreeSet;
use std::net::TcpListener;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// `(seq, value)` pairs of every update in one decoded flush frame.
fn frame_updates(payload: &[u8], protocol: &EdgeProtocol) -> Vec<(u64, u64)> {
    decode_peer_batches(payload, |i| Some(protocol.new_clock(i)))
        .expect("well-formed flush frame")
        .into_iter()
        .flat_map(|(_, updates)| updates.into_iter().map(|(seq, u)| (seq, u.value)))
        .collect()
}

struct OneNodeRig {
    node: prcc_service::NodeHandle,
    client: ServiceClient,
    fake_peer: TcpListener,
    protocol: Arc<EdgeProtocol>,
    map: PartitionMap,
}

/// Spawns node 0 of a 2-node line; the test holds node 1's peer listener.
fn rig() -> OneNodeRig {
    let graph = topologies::line(2);
    let map = PartitionMap::single(graph.clone());
    let protocol = Arc::new(EdgeProtocol::new(graph));
    let peer0 = TcpListener::bind("127.0.0.1:0").expect("bind peer0");
    let client0 = TcpListener::bind("127.0.0.1:0").expect("bind client0");
    let fake_peer = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
    let peer_addrs = vec![
        peer0.local_addr().expect("addr"),
        fake_peer.local_addr().expect("addr"),
    ];
    let cfg = ServiceConfig {
        batch_max: 8,
        flush_interval: Duration::from_micros(100),
        connect_timeout: Duration::from_secs(10),
        ..ServiceConfig::default()
    };
    let node = spawn_node(
        Arc::clone(&protocol),
        map.clone(),
        NodeSeed {
            node: 0,
            peer_listener: peer0,
            client_listener: client0,
            peer_addrs,
        },
        cfg,
    )
    .expect("spawn node 0");
    let client = ServiceClient::connect(node.client_addr).expect("client");
    OneNodeRig {
        node,
        client,
        fake_peer,
        protocol,
        map,
    }
}

/// A sender whose connection dies must reconnect, re-handshake, and resume
/// *after* the peer's acknowledged offset: updates the peer acknowledged
/// in its hello-ack are not retransmitted, everything later is.
#[test]
fn sender_reconnects_and_resumes_after_acked_offset() {
    let mut rig = rig();

    // Phase 1: take the handshake (acking nothing yet) and one update
    // frame, remember its link seq, then kill the link.
    let (mut conn, _) = rig.fake_peer.accept().expect("first accept");
    let hello = accept_handshake(&mut conn, 0);
    assert_eq!(hello.node, 0);
    assert_eq!(hello.map, rig.map);
    assert!(rig.client.write(RegisterId(0), 1).expect("write 1"));
    let payload = read_frame(&mut conn)
        .expect("frame io")
        .expect("update frame");
    let first = frame_updates(&payload, &rig.protocol);
    assert_eq!(first, vec![(1, 1)], "first update must carry link seq 1");
    drop(conn);

    // Phase 2: the listener survives, so the sender must redial (its
    // ack-reader sees the dead socket even without new traffic). This
    // time acknowledge seq 1 in the handshake: the resend must start
    // after it. Collect everything on a side thread while the main
    // thread keeps writing.
    let (observed_tx, observed_rx) = mpsc::channel();
    let reader_protocol = Arc::clone(&rig.protocol);
    let fake_peer = rig.fake_peer;
    thread::spawn(move || {
        let (mut conn, _) = fake_peer.accept().expect("reconnect accept");
        let hello = read_hello(&mut conn);
        write_frame(&mut conn, &encode_hello_ack(1)).expect("write hello ack");
        let payload = read_frame(&mut conn)
            .expect("frame io")
            .expect("post-reconnect update frame");
        let updates = frame_updates(&payload, &reader_protocol);
        let _ = observed_tx.send((hello, updates));
        // Keep draining so later flushes don't error the sender again.
        while let Ok(Some(_)) = read_frame(&mut conn) {}
    });

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut next_value = 2u64;
    let observed = loop {
        assert!(
            Instant::now() < deadline,
            "sender never reconnected after link loss"
        );
        assert!(rig.client.write(RegisterId(0), next_value).expect("write"));
        next_value += 1;
        match observed_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(observed) => break observed,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => panic!("observer died"),
        }
    };
    let (hello, updates) = observed;
    assert_eq!(hello.node, 0, "reconnect must re-handshake");
    assert_eq!(
        hello.map, rig.map,
        "re-handshake must carry the partition map"
    );
    assert!(!updates.is_empty(), "no updates flowed after the reconnect");
    // Seq 1 was acknowledged in the hello-ack, so it must NOT come again;
    // everything else (unacked) does.
    assert!(
        updates.iter().all(|&(seq, value)| seq > 1 && value > 1),
        "acknowledged update was retransmitted: {updates:?}"
    );

    rig.client.shutdown().expect("shutdown");
    rig.node.join();
}

/// The nemesis's mid-frame cut in miniature, receiver side: a live
/// MultiBatch frame truncated at EVERY byte offset is a decode error —
/// the reader never applies a partial frame — and after the cut the
/// redialing link resends its whole window from the acked offset, so the
/// severed frame's updates are not lost.
#[test]
fn mid_frame_cut_never_decodes_partially_and_the_window_resends() {
    let mut rig = rig();

    let (mut conn, _) = rig.fake_peer.accept().expect("first accept");
    accept_handshake(&mut conn, 0);
    for value in 1..=4u64 {
        assert!(rig.client.write(RegisterId(0), value).expect("write"));
    }
    let payload = read_frame(&mut conn)
        .expect("frame io")
        .expect("update frame");
    for cut in 0..payload.len() {
        assert!(
            decode_peer_batches(&payload[..cut], |i| Some(rig.protocol.new_clock(i))).is_err(),
            "a {cut}-byte prefix of a {}-byte frame decoded",
            payload.len()
        );
    }
    // Sever the connection (mid-stream from the sender's view: later
    // frames may be half-flushed into the dead socket); acknowledge
    // nothing on the redial.
    drop(conn);

    let (mut conn, _) = rig.fake_peer.accept().expect("reconnect accept");
    accept_handshake(&mut conn, 0);
    let mut seen = BTreeSet::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while seen.len() < 4 {
        assert!(
            Instant::now() < deadline,
            "window not resent after the mid-frame cut: got {seen:?}"
        );
        let payload = read_frame(&mut conn)
            .expect("frame io")
            .expect("resent frame");
        for (_, value) in frame_updates(&payload, &rig.protocol) {
            seen.insert(value);
        }
    }
    assert_eq!(
        seen.into_iter().collect::<Vec<_>>(),
        vec![1, 2, 3, 4],
        "every update from the severed connection must be redelivered"
    );

    rig.client.shutdown().expect("shutdown");
    rig.node.join();
}

/// The PR 3 gap, closed: updates whose frames were buffered into a dying
/// socket (delivered or not — the sender cannot tell) are retransmitted
/// from the durable window after the reconnect. With nothing ever
/// acknowledged, the fake peer must eventually see EVERY update on the
/// second connection alone.
#[test]
fn no_update_loss_when_link_dies_mid_flush() {
    let mut rig = rig();

    // Phase 1: handshake, then a burst of writes; read only the FIRST
    // frame and kill the socket while later frames are (potentially) still
    // being flushed into it — those are exactly the frames the old
    // retry-one-frame logic lost.
    let (mut conn, _) = rig.fake_peer.accept().expect("first accept");
    accept_handshake(&mut conn, 0);
    for value in 1..=5u64 {
        assert!(rig.client.write(RegisterId(0), value).expect("write"));
    }
    let payload = read_frame(&mut conn)
        .expect("frame io")
        .expect("first update frame");
    let delivered = frame_updates(&payload, &rig.protocol);
    assert!(!delivered.is_empty());
    drop(conn);

    // More writes while the link is down: they join the unacked window.
    for value in 6..=8u64 {
        assert!(rig.client.write(RegisterId(0), value).expect("write"));
    }

    // Phase 2: accept the redial, acknowledge NOTHING — the resend must
    // cover the entire window, first-connection deliveries included.
    let (mut conn, _) = rig.fake_peer.accept().expect("reconnect accept");
    accept_handshake(&mut conn, 0);
    let mut seen_values = BTreeSet::new();
    let mut seen_seqs = BTreeSet::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while seen_values.len() < 8 {
        assert!(
            Instant::now() < deadline,
            "updates lost across the mid-flush link death: got {seen_values:?}"
        );
        let payload = read_frame(&mut conn)
            .expect("frame io")
            .expect("update frame");
        for (seq, value) in frame_updates(&payload, &rig.protocol) {
            seen_seqs.insert(seq);
            seen_values.insert(value);
        }
    }
    assert_eq!(
        seen_values.into_iter().collect::<Vec<_>>(),
        (1..=8).collect::<Vec<_>>(),
        "every written value must arrive on the post-loss connection"
    );
    assert_eq!(
        seen_seqs.into_iter().collect::<Vec<_>>(),
        (1..=8).collect::<Vec<_>>(),
        "link seqs must be contiguous from the acknowledged offset"
    );

    rig.client.shutdown().expect("shutdown");
    rig.node.join();
}
