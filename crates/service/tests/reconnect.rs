//! Peer-link resilience: a sender whose outbound connection dies after the
//! handshake must reconnect (with backoff), re-send its `PeerHello`, and
//! resume shipping update frames — instead of silently stranding every
//! future update for that peer.
//!
//! The test stands up ONE real node and plays its peer by hand: a plain
//! `TcpListener` accepts the sender's connection, decodes the handshake and
//! a first update frame, then drops the socket to kill the link. The node
//! keeps taking client writes; the listener must then see a second
//! connection opening with a fresh handshake followed by update frames.

use prcc_clock::{EdgeProtocol, Protocol};
use prcc_graph::{topologies, PartitionMap, RegisterId};
use prcc_service::node::{spawn_node, NodeSeed, ServiceConfig};
use prcc_service::wire::{decode_peer_batches, decode_peer_hello, read_frame, PeerHello};
use prcc_service::ServiceClient;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn read_hello(conn: &mut TcpStream) -> PeerHello {
    let frame = read_frame(conn).expect("hello io").expect("hello frame");
    decode_peer_hello(&frame).expect("well-formed hello")
}

#[test]
fn sender_reconnects_and_resumes_after_link_loss() {
    let graph = topologies::line(2);
    let map = PartitionMap::single(graph.clone());
    let protocol = Arc::new(EdgeProtocol::new(graph));

    // Node 0 is real; "node 1" is this test holding its peer listener.
    let peer0 = TcpListener::bind("127.0.0.1:0").expect("bind peer0");
    let client0 = TcpListener::bind("127.0.0.1:0").expect("bind client0");
    let fake_peer1 = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
    let peer_addrs = vec![
        peer0.local_addr().expect("addr"),
        fake_peer1.local_addr().expect("addr"),
    ];
    let cfg = ServiceConfig {
        batch_max: 8,
        flush_interval: Duration::from_micros(100),
        connect_timeout: Duration::from_secs(10),
        ..ServiceConfig::default()
    };
    let mut node = spawn_node(
        Arc::clone(&protocol),
        map.clone(),
        NodeSeed {
            node: 0,
            peer_listener: peer0,
            client_listener: client0,
            peer_addrs,
        },
        cfg,
    )
    .expect("spawn node 0");
    let mut client = ServiceClient::connect(node.client_addr).expect("client");

    // Phase 1: the sender dials immediately; take its handshake and one
    // update frame, then kill the link.
    let (mut conn, _) = fake_peer1.accept().expect("first accept");
    let hello = read_hello(&mut conn);
    assert_eq!(hello.node, 0);
    assert_eq!(hello.map, map);
    assert!(client.write(RegisterId(0), 1).expect("write 1"));
    let payload = read_frame(&mut conn)
        .expect("frame io")
        .expect("update frame");
    let sections = decode_peer_batches(&payload, |i| Some(protocol.new_clock(i)))
        .expect("well-formed flush frame");
    assert_eq!(sections.len(), 1);
    assert_eq!(sections[0].1[0].value, 1);
    drop(conn);

    // Phase 2: the listener survives, so the sender must redial. Collect
    // the re-handshake and the first post-reconnect flush on a side thread
    // while the main thread keeps writing (the dead socket only surfaces an
    // error on a later send, so a single write is not enough to trigger
    // reconnection).
    let (observed_tx, observed_rx) = mpsc::channel();
    let reader_protocol = Arc::clone(&protocol);
    thread::spawn(move || {
        let (mut conn, _) = fake_peer1.accept().expect("reconnect accept");
        let hello = read_hello(&mut conn);
        let payload = read_frame(&mut conn)
            .expect("frame io")
            .expect("post-reconnect update frame");
        let sections = decode_peer_batches(&payload, |i| Some(reader_protocol.new_clock(i)))
            .expect("well-formed flush frame");
        let values: Vec<u64> = sections
            .iter()
            .flat_map(|(_, updates)| updates.iter().map(|u| u.value))
            .collect();
        let _ = observed_tx.send((hello, values));
        // Keep draining so later flushes don't error the sender again.
        while let Ok(Some(_)) = read_frame(&mut conn) {}
    });

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut next_value = 2u64;
    let observed = loop {
        assert!(
            Instant::now() < deadline,
            "sender never reconnected after link loss"
        );
        assert!(client.write(RegisterId(0), next_value).expect("write"));
        next_value += 1;
        match observed_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(observed) => break observed,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => panic!("observer died"),
        }
    };
    let (hello, values) = observed;
    assert_eq!(hello.node, 0, "reconnect must re-handshake");
    assert_eq!(hello.map, map, "re-handshake must carry the partition map");
    assert!(!values.is_empty(), "no updates flowed after the reconnect");
    // The frame whose send hit the dead socket is retried on the fresh
    // connection, so the first post-reconnect flush carries updates issued
    // *before* the sender noticed the loss — values strictly greater than
    // the one delivered on the first connection.
    assert!(
        values.iter().all(|&v| v > 1),
        "stale or duplicated updates after reconnect: {values:?}"
    );

    client.shutdown().expect("shutdown");
    node.join();
}
