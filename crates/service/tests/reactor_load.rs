//! Event-loop I/O suite: the reactor rewrite's service-level contract.
//!
//! Three properties the unit suites cannot see from inside one crate:
//! an accept storm of simultaneous dials all get served, the process
//! thread count stays flat as client connections pile up (the whole
//! point of the rewrite), and a slow reader overflows its *own* bounded
//! outbound queue — torn down loudly, counted, and without collateral
//! damage to fresh clients or cluster consistency.

mod common;

use common::{drain_and_verify, drive, launch_ring, quick_cfg};
use prcc_service::ServiceConfig;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

/// Current thread count of this test process (the loopback cluster's
/// nodes live in-process, so reactor threads show up here).
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

#[test]
fn idle_connections_do_not_grow_the_thread_count() {
    let cluster = launch_ring(2, 3, &quick_cfg());
    let baseline = process_threads();

    // 128 live, idle connections across the cluster: under the old
    // thread-per-connection model this grew the process by 128 handler
    // threads; the reactor must absorb them into its fixed pool.
    let mut clients = Vec::new();
    for i in 0..128 {
        let mut client = cluster.client(i % cluster.len()).expect("connect");
        assert!(client.status().expect("status").node as usize == i % cluster.len());
        clients.push(client);
    }
    assert_eq!(
        process_threads(),
        baseline,
        "client connections must not spawn threads"
    );

    drop(clients);
    cluster.shutdown().expect("shutdown");
}

#[test]
fn accept_storm_serves_every_dial() {
    let cluster = launch_ring(2, 3, &quick_cfg());
    let (_, client_addr) = cluster.addrs(0);

    // 256 dials released at once against one node's listener: every
    // connection must be accepted and get a real answer (the listener
    // drains its accept backlog in a loop, not one-per-event).
    let storm = 256;
    let gate = Arc::new(Barrier::new(storm));
    let mut dialers = Vec::new();
    for _ in 0..storm {
        let gate = Arc::clone(&gate);
        dialers.push(thread::spawn(move || {
            gate.wait();
            let mut client = prcc_service::ServiceClient::connect(client_addr)?;
            client.status().map(|s| s.node)
        }));
    }
    for dialer in dialers {
        let node = dialer.join().expect("dialer panicked").expect("served");
        assert_eq!(node, 0);
    }

    drive(&cluster, 400, 0xacce97);
    drain_and_verify(&cluster, "post-storm workload");
    cluster.shutdown().expect("shutdown");
}

#[test]
fn slow_reader_overflows_loudly_without_collateral() {
    // A queue bound small enough that a client who never reads its
    // responses overflows quickly, but roomy enough for the (tiny,
    // ack-paced) peer-link frames of an idle cluster.
    let cfg = ServiceConfig {
        outbound_queue_bytes: 8 << 10,
        ..quick_cfg()
    };
    let cluster = launch_ring(1, 3, &cfg);
    let (_, client_addr) = cluster.addrs(0);

    // Hand-rolled pipelining: fire Status requests and never read. The
    // node keeps answering into its bounded per-connection queue; once
    // the kernel buffers clog, the queue trips the bound and the reactor
    // must drop *this* connection.
    let mut glutton = TcpStream::connect(client_addr).expect("connect");
    glutton
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let request = prcc_service::wire::encode_request(&prcc_service::wire::ClientRequest::Status);
    let mut framed = (request.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&request);
    for _ in 0..200_000 {
        if glutton.write_all(&framed).is_err() {
            break; // already torn down mid-burst
        }
    }

    // Drain whatever was in flight; the stream must end (EOF or reset),
    // not keep producing forever.
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    let died = loop {
        match glutton.read(&mut sink) {
            Ok(0) => break true,
            Ok(n) => {
                drained += n;
                // 200k statuses would be tens of MB; a bounded queue can
                // not have delivered anywhere near that.
                assert!(drained < 32 << 20, "queue bound did not engage");
            }
            Err(_) => break true,
        }
    };
    assert!(died, "slow reader's connection must be torn down");

    // Loud: the teardown is counted.
    let overflows: u64 = cluster
        .metrics_per_node()
        .expect("metrics")
        .iter()
        .flat_map(|m| m.counters.iter())
        .filter(|(name, _)| name == "reactor_overflows")
        .map(|(_, v)| *v)
        .sum();
    assert!(
        overflows >= 1,
        "overflow teardown must increment the counter"
    );

    // Contained: fresh clients and the rest of the cluster are unharmed.
    let mut fresh = cluster.client(0).expect("fresh connect");
    assert_eq!(fresh.status().expect("fresh status").node, 0);
    drive(&cluster, 200, 0x51089);
    drain_and_verify(&cluster, "post-overflow workload");
    cluster.shutdown().expect("shutdown");
}
