//! Property: [`SeqWatermark`] duplicate suppression is *exactly*
//! idempotent under the nemesis's duplicate + reorder + drop operator, on
//! arbitrary seeded fault schedules.
//!
//! The nemesis proxy transforms an in-order frame stream exactly like
//! `prcc_chaos::forward` does: `Duplicate` emits a frame twice back to
//! back, `Reorder` holds one frame and releases it after the next
//! forwarded frame (never holding two), `Drop` swallows the frame until
//! the reconnect-driven window resend redelivers it. The receiving
//! replica dedups deliveries with a [`SeqWatermark`]; the property pins
//! that its fresh/duplicate verdicts coincide with an exact
//! every-id-ever-seen set on every such schedule — apply-at-most-once
//! under at-least-once, reordering, duplicating delivery.

use prcc_core::SeqWatermark;
use prcc_net::chaos::{FaultOp, FaultProfile, LinkFaultStream};
use proptest::prelude::*;
use std::collections::HashSet;

/// Applies the nemesis's per-frame operator to the in-order stream
/// `1..=n`, exactly as the proxy's forward loop does.
fn nemesis_deliveries(n: u64, seed: u64, profile: FaultProfile) -> Vec<u64> {
    let mut stream = LinkFaultStream::new(seed, 0, 1, profile);
    let mut out = Vec::new();
    let mut held: Option<u64> = None;
    for seq in 1..=n {
        let (_, op) = stream.next_op();
        match op {
            FaultOp::Reorder if held.is_none() => {
                held = Some(seq);
                continue;
            }
            FaultOp::Duplicate => {
                out.push(seq);
                out.push(seq);
            }
            FaultOp::Drop => continue,
            // Delay and sever ops don't exist in the profiles used here;
            // Deliver (and a Reorder arriving while one frame is already
            // held) forwards the frame.
            _ => out.push(seq),
        }
        if let Some(h) = held.take() {
            out.push(h);
        }
    }
    if let Some(h) = held.take() {
        out.push(h);
    }
    out
}

proptest! {
    /// Watermark verdicts ≡ exact dedup-set verdicts on any
    /// nemesis-transformed schedule; the post-reconnect window resend is
    /// suppressed except for the seqs the nemesis dropped; a second
    /// identical pass of the whole schedule changes nothing at all.
    #[test]
    fn watermark_is_idempotent_under_the_nemesis_operator(
        seed in 0u64..1 << 48,
        n in 1u64..400,
        reorder_pm in 0u32..300,
        duplicate_pm in 0u32..300,
        drop_pm in 0u32..200,
    ) {
        let profile = FaultProfile {
            reorder_pm,
            duplicate_pm,
            drop_pm,
            ..FaultProfile::off()
        };
        let deliveries = nemesis_deliveries(n, seed, profile);
        let mut watermark = SeqWatermark::new();
        let mut exact: HashSet<u64> = HashSet::new();
        for &s in &deliveries {
            prop_assert_eq!(watermark.observe(s), exact.insert(s));
        }
        // Reconnect resend: everything above the acked (contiguous)
        // watermark comes again in order. Redeliveries of seqs already
        // seen out of order are suppressed; dropped seqs are fresh
        // exactly once.
        let acked = watermark.high();
        for s in (acked + 1)..=n {
            prop_assert_eq!(watermark.observe(s), exact.insert(s));
        }
        // The channel is now complete and fully folded: no residue, the
        // acknowledgement line at n.
        prop_assert_eq!(watermark.high(), n);
        prop_assert_eq!(watermark.residue_len(), 0);
        prop_assert_eq!(exact.len() as u64, n);
        // Exact idempotence: replaying the entire faulted schedule (and
        // the resend) against the converged watermark is a pure no-op.
        let frozen = watermark.clone();
        for &s in &deliveries {
            prop_assert!(!watermark.observe(s));
        }
        for s in 1..=n {
            prop_assert!(!watermark.observe(s));
        }
        prop_assert_eq!(&watermark, &frozen);
    }

    /// The operator itself is deterministic: the same (seed, profile)
    /// yields the same delivery schedule — the property above is
    /// therefore replayable from its proptest case seed.
    #[test]
    fn nemesis_operator_is_deterministic(seed in 0u64..1 << 48, n in 1u64..200) {
        let profile = FaultProfile {
            reorder_pm: 150,
            duplicate_pm: 150,
            drop_pm: 100,
            ..FaultProfile::off()
        };
        prop_assert_eq!(
            nemesis_deliveries(n, seed, profile),
            nemesis_deliveries(n, seed, profile)
        );
    }
}
