//! Integration tests: real TCP loopback clusters on ephemeral ports.

mod common;

use common::{quick_cfg, DRAIN};
use prcc_clock::EdgeProtocol;
use prcc_graph::{topologies, RegisterId};
use prcc_service::{LoopbackCluster, ServiceConfig};
use prcc_workloads::ops::{generate_ops, partition_by_replica};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Boots a 5-node ring over loopback TCP, drives a seeded workload through
/// per-node clients in parallel, drains to quiescence and replays the
/// collected traces through the oracle.
#[test]
fn ring5_seeded_workload_is_causally_consistent() {
    let graph = topologies::ring(5);
    let protocol = Arc::new(EdgeProtocol::new(graph.clone()));
    let cluster = LoopbackCluster::launch(protocol, &quick_cfg(), 0).expect("launch");

    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let ops = generate_ops(&graph, 400, None, &mut rng);
    let scripts = partition_by_replica(&graph, &ops);
    let mut drivers = Vec::new();
    for (node, script) in scripts.into_iter().enumerate() {
        let mut client = cluster.client(node).expect("client");
        drivers.push(thread::spawn(move || {
            for (_, register, value) in script {
                assert!(client.write(register, value).expect("write io"));
            }
        }));
    }
    for driver in drivers {
        driver.join().expect("driver");
    }

    assert!(cluster.drain(DRAIN).expect("drain io"), "no quiescence");
    let statuses = cluster.statuses().expect("statuses");
    assert_eq!(statuses.iter().map(|s| s.issued).sum::<u64>(), 400);
    assert!(statuses.iter().map(|s| s.applies).sum::<u64>() > 0);
    assert!(statuses.iter().map(|s| s.bytes_out).sum::<u64>() > 0);
    assert!(statuses.iter().all(|s| s.pending == 0));

    let verdict = cluster.verify().expect("traces").expect("replayable");
    assert!(verdict.is_consistent(), "verdict: {verdict:?}");
    cluster.shutdown().expect("shutdown");
}

/// A hotspot workload on a 4-node clique: heavy contention on register 0,
/// still causally consistent, and a causally-dominating settling write
/// converges on every holder.
///
/// Plain final values may legitimately *differ* across replicas: the
/// algorithm guarantees causal order, not convergence, so two concurrent
/// tail writes can land in opposite orders at different holders. The
/// convergence assertion therefore uses a settling write issued at
/// quiescence — its timestamp dominates every earlier update, so every
/// replica must apply it last.
#[test]
fn clique4_hotspot_converges() {
    let graph = topologies::clique_full(4, 2);
    let protocol = Arc::new(EdgeProtocol::new(graph.clone()));
    let cluster = LoopbackCluster::launch(protocol, &quick_cfg(), 0).expect("launch");

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let ops = generate_ops(&graph, 200, Some(0.6), &mut rng);
    let scripts = partition_by_replica(&graph, &ops);
    let mut drivers = Vec::new();
    for (node, script) in scripts.into_iter().enumerate() {
        let mut client = cluster.client(node).expect("client");
        drivers.push(thread::spawn(move || {
            for (_, register, value) in script {
                assert!(client.write(register, value).expect("write io"));
            }
        }));
    }
    for driver in drivers {
        driver.join().expect("driver");
    }
    assert!(cluster.drain(DRAIN).expect("drain io"));

    // The settling write: issued after node 0 has applied everything, so
    // it causally follows the whole hotspot history everywhere.
    let settled = 999_999u64;
    assert!(cluster
        .client(0)
        .expect("client")
        .write(RegisterId(0), settled)
        .expect("write io"));
    assert!(cluster.drain(DRAIN).expect("drain io"));

    let verdict = cluster.verify().expect("traces").expect("replayable");
    assert!(verdict.is_consistent(), "verdict: {verdict:?}");

    // All four nodes store register 0; the settling write wins everywhere.
    let values: Vec<Option<u64>> = (0..4)
        .map(|i| cluster.client(i).unwrap().read(RegisterId(0)).unwrap())
        .collect();
    assert!(
        values.iter().all(|v| *v == Some(settled)),
        "diverged: {values:?}"
    );
    cluster.shutdown().expect("shutdown");
}

/// Reads through the client API observe locally applied writes, and writes
/// to unstored registers are rejected without wedging the node.
#[test]
fn client_api_read_write_semantics() {
    let graph = topologies::line(3);
    let protocol = Arc::new(EdgeProtocol::new(graph.clone()));
    let cluster = LoopbackCluster::launch(protocol, &quick_cfg(), 0).expect("launch");

    let mut c0 = cluster.client(0).expect("client 0");
    let mut c1 = cluster.client(1).expect("client 1");
    // Register 0 is shared by replicas 0 and 1; replica 0 does not store
    // register 1.
    assert!(c0.write(RegisterId(0), 77).expect("write"));
    assert!(!c0.write(RegisterId(1), 1).expect("write"), "not stored");
    assert!(cluster.drain(DRAIN).expect("drain io"));
    assert_eq!(c0.read(RegisterId(0)).expect("read"), Some(77));
    assert_eq!(c1.read(RegisterId(0)).expect("read"), Some(77));
    // Replica 2 does not store register 0: read reports no value.
    let mut c2 = cluster.client(2).expect("client 2");
    assert_eq!(c2.read(RegisterId(0)).expect("read"), None);

    let verdict = cluster.verify().expect("traces").expect("replayable");
    assert!(verdict.is_consistent());
    cluster.shutdown().expect("shutdown");
}

/// The causal chain of the quickstart example, but across real sockets:
/// replica 0 writes `account`, replica 1 observes it and writes `audit`,
/// and replica 2 — which never stores `account` — still sees `audit` only
/// after its causal dependency was propagated. The trace replay proves the
/// ordering.
#[test]
fn causal_chain_across_three_nodes() {
    let account = RegisterId(0);
    let audit = RegisterId(1);
    let graph = prcc_graph::ShareGraphBuilder::new()
        .replica([account])
        .replica([account, audit])
        .replica([audit])
        .build()
        .expect("valid graph");
    let protocol = Arc::new(EdgeProtocol::new(graph.clone()));
    let cluster = LoopbackCluster::launch(protocol, &quick_cfg(), 0).expect("launch");

    let mut c0 = cluster.client(0).expect("client 0");
    let mut c1 = cluster.client(1).expect("client 1");
    let mut c2 = cluster.client(2).expect("client 2");

    assert!(c0.write(account, 100).expect("write account"));
    // Wait until replica 1 has applied the account update, then chain.
    let deadline = std::time::Instant::now() + DRAIN;
    loop {
        if c1.read(account).expect("read") == Some(100) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "propagation stalled");
        thread::sleep(Duration::from_millis(2));
    }
    assert!(c1.write(audit, 1).expect("write audit"));
    assert!(cluster.drain(DRAIN).expect("drain io"));
    assert_eq!(c2.read(audit).expect("read audit"), Some(1));

    let verdict = cluster.verify().expect("traces").expect("replayable");
    assert!(verdict.is_consistent(), "verdict: {verdict:?}");
    cluster.shutdown().expect("shutdown");
}

/// Status counters line up with the workload across the cluster.
#[test]
fn statuses_account_for_traffic() {
    let graph = topologies::ring(3);
    let protocol = Arc::new(EdgeProtocol::new(graph.clone()));
    let cluster = LoopbackCluster::launch(protocol, &quick_cfg(), 0).expect("launch");
    let mut client = cluster.client(0).expect("client");
    for v in 0..50u64 {
        assert!(client.write(RegisterId(0), v).expect("write"));
    }
    assert!(cluster.drain(DRAIN).expect("drain io"));
    let statuses = cluster.statuses().expect("statuses");
    // Ring: register 0 is shared by replicas 0 and 1 only → one copy per
    // write on the wire.
    assert_eq!(statuses[0].issued, 50);
    assert_eq!(statuses[0].messages_sent, 50);
    assert_eq!(statuses[1].messages_received, 50);
    assert_eq!(statuses[1].applies, 50);
    assert!(statuses[0].batches_sent <= 50);
    assert!(statuses[0].bytes_out > 0);
    // Protocol template check caught nothing; the peer knows node 0's graph.
    assert_eq!(statuses[2].messages_received, 0);
    cluster.shutdown().expect("shutdown");
}

/// Batching coalesces: a tight burst of writes must produce fewer peer
/// frames than updates.
#[test]
fn batching_reduces_frames() {
    let graph = topologies::line(2);
    let protocol = Arc::new(EdgeProtocol::new(graph));
    let cfg = ServiceConfig {
        batch_max: 64,
        flush_interval: Duration::from_millis(20),
        ..ServiceConfig::default()
    };
    let cluster = LoopbackCluster::launch(protocol, &cfg, 0).expect("launch");
    let mut client = cluster.client(0).expect("client");
    for v in 0..200u64 {
        assert!(client.write(RegisterId(0), v).expect("write"));
    }
    assert!(cluster.drain(DRAIN).expect("drain io"));
    let statuses = cluster.statuses().expect("statuses");
    assert_eq!(statuses[0].messages_sent, 200);
    assert!(
        statuses[0].batches_sent < 200,
        "no batching happened: {} batches for 200 updates",
        statuses[0].batches_sent
    );
    // v3 framing: one frame per flush; unsharded, sections == flushes too.
    assert!(statuses[0].frames_sent > 0);
    assert_eq!(statuses[0].frames_sent, statuses[0].flushes);
    assert_eq!(statuses[0].frames_sent, statuses[0].batches_sent);
    let verdict = cluster.verify().expect("traces").expect("replayable");
    assert!(verdict.is_consistent());
    cluster.shutdown().expect("shutdown");
}

/// End-to-end lifecycle telemetry: with every update sampled, a driven
/// full clique must expose non-empty stage histograms — visibility
/// latency and first-send measured across real sockets — and the
/// per-node snapshots must merge into a cluster view whose counters add
/// up. A 3-clique on one register makes the expected sample counts exact:
/// every node holds the register, so every write is applied remotely
/// exactly twice.
#[test]
fn live_metrics_expose_stage_histograms() {
    let graph = topologies::clique_full(3, 1);
    let protocol = Arc::new(EdgeProtocol::new(graph));
    let cfg = ServiceConfig {
        batch_max: 16,
        flush_interval: Duration::from_micros(100),
        sample_every: 1,
        ..ServiceConfig::default()
    };
    let cluster = LoopbackCluster::launch(protocol, &cfg, 0).expect("launch");
    let mut client = cluster.client(0).expect("client");
    for v in 0..100u64 {
        assert!(client.write(RegisterId(0), v).expect("write"));
    }
    assert!(cluster.drain(DRAIN).expect("drain io"));

    // Per-node: the origin stamped every write, so its send_us histogram
    // filled; each recipient measured wire + visibility latency.
    let per_node = cluster.metrics_per_node().expect("metrics");
    assert!(per_node[0].counter("net_batches_sent").unwrap_or(0) > 0);
    // One sample per (update, peer link) first transmission — the handful
    // of updates queued before a link finishes its handshake ride the
    // untimed resume path instead, so this is a floor, not an identity.
    let send = per_node[0].hist_summary("send_us").expect("send_us");
    assert!(
        send.count >= 100 && send.count <= 200,
        "origin timed {} first sends for 100 writes x 2 peers",
        send.count
    );
    for (node, snap) in per_node.iter().enumerate().skip(1) {
        let vis = snap.hist_summary("visibility_us").expect("visibility_us");
        assert_eq!(vis.count, 100, "node {node} must time every sampled apply");
        assert!(
            snap.hist_summary("wire_us").expect("wire_us").count > 0,
            "node {node} never timed a received frame"
        );
        // Stall + visibility are measured at the same applies; a stall
        // longer than the whole visibility window would be nonsense.
        let stall = snap.hist_summary("pending_stall_us").expect("stall");
        assert_eq!(stall.count, vis.count);
        assert!(stall.max_us <= vis.max_us.max(1));
    }

    // Merged: counters sum across nodes, and the cluster-wide visibility
    // histogram holds one sample per (update, remote recipient) pair.
    let merged = cluster.metrics().expect("merged metrics");
    assert_eq!(merged.gauge("core_issued"), Some(100));
    assert_eq!(
        merged
            .hist_summary("visibility_us")
            .expect("visibility")
            .count,
        200,
        "2 remote recipients x 100 sampled updates"
    );
    assert_eq!(merged.gauge("core_window_evicted"), Some(0));
    cluster.shutdown().expect("shutdown");
}
