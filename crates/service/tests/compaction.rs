//! Bounded-memory end-to-end tests: checkpointed trace compaction over
//! real TCP clusters.
//!
//! These suites drive enough traffic that the nodes actually seal trace
//! prefixes mid-run (a low `trace_compact_at`), then hold the compacted
//! cluster to the same standards as an uncompacted one:
//!
//! * the stitched (checkpoint + live suffix) oracle verdict is consistent,
//!   and matches the verdict of the identical seeded workload run without
//!   compaction;
//! * snapshots stay O(live state): the last snapshot of a long run is no
//!   larger than ~2x the first, while the WAL keeps truncating;
//! * crash/restart reproduces the compacted state exactly — checkpoint
//!   summaries included — because seals travel through the same
//!   append-before-apply WAL path as every other state mutation.

mod common;

use common::{drain_and_verify, drive, launch_ring as launch, scratch_dir, DRAIN};
use prcc_service::ServiceConfig;
use std::time::Duration;

/// Mid-run compaction seals most of the history, the live logs stay small,
/// and the stitched verdict matches a full-history run of the identical
/// seeded workload.
#[test]
fn compacted_cluster_verifies_like_a_full_history_one() {
    let ops = 3000usize;
    // Reference run: compaction off (large threshold, no data dir), full
    // logs replayed by the oracle.
    let full_cfg = ServiceConfig {
        batch_max: 16,
        flush_interval: Duration::from_micros(100),
        trace_compact_at: usize::MAX,
        ..ServiceConfig::default()
    };
    let full = launch(4, 4, &full_cfg);
    drive(&full, ops, 91);
    drain_and_verify(&full, "full-history run");
    let full_statuses = full.statuses().expect("statuses");
    assert_eq!(
        full_statuses.iter().map(|s| s.sealed_events).sum::<u64>(),
        0,
        "reference run must not compact"
    );
    full.shutdown().expect("shutdown");

    // Compacting run: aggressive threshold, same seeded workload.
    let compact_cfg = ServiceConfig {
        batch_max: 16,
        flush_interval: Duration::from_micros(100),
        trace_compact_at: 64,
        ack_every: 2,
        ..ServiceConfig::default()
    };
    let compacted = launch(4, 4, &compact_cfg);
    drive(&compacted, ops, 91);
    drain_and_verify(&compacted, "compacted run");
    let statuses = compacted.statuses().expect("statuses");
    let sealed: u64 = statuses.iter().map(|s| s.sealed_events).sum();
    let live: u64 = statuses.iter().map(|s| s.trace_events).sum();
    assert!(sealed > 0, "the compacting run never sealed anything");
    // Conservation: both runs recorded the same event total.
    let full_total: u64 = full_statuses
        .iter()
        .map(|s| s.trace_events + s.sealed_events)
        .sum();
    assert_eq!(sealed + live, full_total, "events lost or invented");
    // The point of the exercise: live state is a small fraction of the
    // history the full-history run had to retain.
    assert!(
        live * 4 < full_total,
        "compaction barely helped: {live} live of {full_total} total"
    );
    compacted.shutdown().expect("shutdown");
}

/// Long-running durable cluster: snapshots stay flat (last ≤ ~2x first)
/// while the WAL keeps truncating, and the run still verifies.
#[test]
fn snapshots_stay_flat_while_the_wal_truncates() {
    let dir = scratch_dir("flat");
    let cfg = ServiceConfig {
        batch_max: 16,
        flush_interval: Duration::from_micros(100),
        data_dir: Some(dir.clone()),
        snapshot_every: 200,
        trace_compact_at: 128,
        ack_every: 2,
        ..ServiceConfig::default()
    };
    let cluster = launch(4, 4, &cfg);
    drive(&cluster, 4000, 17);
    drain_and_verify(&cluster, "long durable run");
    for status in cluster.statuses().expect("statuses") {
        assert!(
            status.snapshots_written >= 2,
            "node {} wrote only {} snapshots",
            status.node,
            status.snapshots_written
        );
        assert!(status.first_snapshot_bytes > 0);
        // 2x relative plus a small absolute allowance: snapshots embed the
        // unacked windows, whose size wobbles by a few hundred bytes with
        // ack timing under load — O(ops) growth (the regression this
        // guards against) would be tens of kilobytes here.
        let bound = (2 * status.first_snapshot_bytes).max(status.first_snapshot_bytes + 2048);
        assert!(
            status.snapshot_bytes <= bound,
            "node {}: snapshots grew from {} to {} bytes — no longer O(live state)",
            status.node,
            status.first_snapshot_bytes,
            status.snapshot_bytes
        );
        // The WAL keeps truncating: whatever is left is less than one full
        // snapshot interval of records (it was reset at the last snapshot).
        assert!(status.wal_appends > 0);
        assert!(
            status.sealed_events > 0,
            "node {} never sealed",
            status.node
        );
    }
    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash/restart with mid-run compaction: the recovered checkpoint + live
/// suffix matches the pre-crash state exactly (seals are WAL'd through
/// append-before-apply), and the cluster keeps verifying afterwards.
#[test]
fn compacted_state_survives_crash_restart() {
    let dir = scratch_dir("crash");
    let cfg = ServiceConfig {
        batch_max: 16,
        flush_interval: Duration::from_micros(100),
        data_dir: Some(dir.clone()),
        snapshot_every: 300,
        trace_compact_at: 96,
        ack_every: 2,
        ..ServiceConfig::default()
    };
    let mut cluster = launch(4, 4, &cfg);
    let victim = 2usize;

    drive(&cluster, 1500, 43);
    assert!(cluster.drain(DRAIN).expect("drain io"), "no quiescence");

    let before = cluster
        .client(victim)
        .expect("client")
        .trace()
        .expect("trace");
    let sealed_before: u64 = before.iter().map(|(c, _)| c.events).sum();
    assert!(
        sealed_before > 0,
        "the victim never compacted — test is vacuous"
    );

    cluster.crash_node(victim);
    cluster.restart_node(victim).expect("restart");

    let after = cluster
        .client(victim)
        .expect("client")
        .trace()
        .expect("trace");
    assert_eq!(
        after, before,
        "recovered checkpoint + live suffix differs from the pre-crash state"
    );

    // The cluster keeps working and the stitched history still verifies.
    drive(&cluster, 500, 44);
    drain_and_verify(&cluster, "post-restart");
    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Group commit (fsync) enabled end to end: the run completes, verifies,
/// and reports the WAL/snapshot activity — the behavioral half of the
/// power-loss story (the loss window itself needs a power cut to observe).
#[test]
fn fsync_group_commit_runs_clean() {
    let dir = scratch_dir("fsync");
    let cfg = ServiceConfig {
        batch_max: 16,
        flush_interval: Duration::from_micros(100),
        data_dir: Some(dir.clone()),
        snapshot_every: 256,
        fsync_every: 8,
        ..ServiceConfig::default()
    };
    let cluster = launch(2, 3, &cfg);
    drive(&cluster, 600, 5);
    drain_and_verify(&cluster, "fsync run");
    for status in cluster.statuses().expect("statuses") {
        assert!(status.wal_appends > 0);
    }
    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
