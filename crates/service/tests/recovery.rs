//! Crash/restart fault injection over real TCP clusters with the
//! durability layer enabled.
//!
//! Every test gives the cluster a data dir, kills a node WITHOUT graceful
//! shutdown ([`LoopbackCluster::crash_node`] severs its sockets
//! mid-stream), restarts it on the same listeners + data dir, and then
//! holds the recovered cluster to the same standard as a healthy one:
//!
//! * the restarted node's event log, counters and store match its
//!   pre-crash state exactly (WAL replay is deterministic);
//! * the *complete* merged trace — pre-crash, crash window, post-restart —
//!   still passes the per-partition causal-consistency oracle with zero
//!   misrouted and zero lost updates;
//! * two runs of the same seeded workload crashed at the same op index
//!   leave byte-identical snapshot + WAL files behind (the determinism
//!   the whole recovery design rests on).

mod common;

use common::{drive, durable_cfg, launch_ring as launch, scratch_dir};
use prcc_clock::EdgeProtocol;
use prcc_graph::{topologies, RegisterId};
use prcc_service::{LoopbackCluster, ServiceConfig};
use prcc_workloads::ops::{generate_keyed_ops, route_keyed_ops};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use common::drain_or_dump;

fn assert_all_partitions_consistent(cluster: &LoopbackCluster) {
    common::assert_all_partitions_consistent(cluster, "recovery");
}

/// Crash at quiescence, restart, and compare the recovered node against
/// its pre-crash self event by event: same trace, same counters, same
/// store contents — then keep the cluster working and verify the full
/// history. Run for the unsharded and the 8-partition deployment.
#[test]
fn restarted_node_matches_its_pre_crash_state() {
    for (partitions, tag) in [(1u32, "match-1p"), (8u32, "match-8p")] {
        let dir = scratch_dir(tag);
        let cfg = durable_cfg(dir.clone(), 64);
        let mut cluster = launch(partitions, 4, &cfg);
        let victim = 1usize;

        drive(&cluster, 400, 7);
        drain_or_dump(&cluster, "quiescence");

        // Capture the victim's observable state at quiescence.
        let before_trace = cluster
            .client(victim)
            .expect("client")
            .trace()
            .expect("trace");
        let before_status = &cluster.statuses().expect("statuses")[victim];
        // Unique receives (minus dedup drops): survivors may retransmit
        // their unacked window tails right after the restart, and those
        // duplicates must not make the comparison flaky.
        let before = (
            before_status.issued,
            before_status.applies,
            before_status.messages_sent,
            before_status.messages_received - before_status.duplicates_dropped,
        );
        let mut before_reads = Vec::new();
        {
            let map = cluster.map().clone();
            let mut client = cluster.client(victim).expect("client");
            for (p, _) in map.hosted_by(victim) {
                for x in 0..map.graph().num_registers() as u32 {
                    before_reads.push(client.read_in(p, RegisterId(x)).expect("read io"));
                }
            }
        }

        cluster.crash_node(victim);
        cluster.restart_node(victim).expect("restart");

        // (a) The recovered state matches the pre-crash event log exactly.
        let after_trace = cluster
            .client(victim)
            .expect("client")
            .trace()
            .expect("trace");
        assert_eq!(
            after_trace, before_trace,
            "partitions={partitions}: recovered trace differs from the pre-crash log"
        );
        let after_status = &cluster.statuses().expect("statuses")[victim];
        let after = (
            after_status.issued,
            after_status.applies,
            after_status.messages_sent,
            after_status.messages_received - after_status.duplicates_dropped,
        );
        assert_eq!(after, before, "partitions={partitions}: counters drifted");
        assert!(
            after_status.pending == before_status.pending,
            "pending buffer drifted"
        );
        let mut after_reads = Vec::new();
        {
            let map = cluster.map().clone();
            let mut client = cluster.client(victim).expect("client");
            for (p, _) in map.hosted_by(victim) {
                for x in 0..map.graph().num_registers() as u32 {
                    after_reads.push(client.read_in(p, RegisterId(x)).expect("read io"));
                }
            }
        }
        assert_eq!(after_reads, before_reads, "store contents drifted");

        // (b)+(c) The cluster keeps working and the COMPLETE merged trace
        // verifies with zero misrouted drops.
        drive(&cluster, 200, 8);
        drain_or_dump(&cluster, "post-restart quiescence");
        assert_all_partitions_consistent(&cluster);
        cluster.shutdown().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The hard case: crash a node MID-RUN, with updates in flight in both
/// directions, then restart it while the drivers keep pushing. Peer
/// windows must resend everything unacknowledged, the recovered node must
/// replay its WAL, and the complete history must still verify — zero
/// lost updates shows up as zero liveness violations at quiescence.
#[test]
fn mid_flight_crash_recovers_without_losing_updates() {
    for (partitions, tag) in [(1u32, "flight-1p"), (8u32, "flight-8p")] {
        let dir = scratch_dir(tag);
        let cfg = durable_cfg(dir.clone(), 128);
        let mut cluster = launch(partitions, 4, &cfg);
        let victim = 2usize;

        // First wave: traffic the crash will interrupt mid-digestion.
        drive(&cluster, 300, 21);
        cluster.crash_node(victim);
        // Second wave while the victim is down: its peers buffer unacked
        // updates for it in their windows.
        let survivors_ops = {
            let map = cluster.map().clone();
            let mut rng = ChaCha8Rng::seed_from_u64(22);
            let keyed = generate_keyed_ops(&map, 200, None, &mut rng);
            route_keyed_ops(&map, &keyed)
        };
        let mut drivers = Vec::new();
        for (node, script) in survivors_ops.into_iter().enumerate() {
            if node == victim {
                continue; // Its clients would just see a dead socket.
            }
            let mut client = cluster.client(node).expect("client");
            drivers.push(thread::spawn(move || {
                for (partition, register, value) in script {
                    assert!(client
                        .write_in(partition, register, value)
                        .expect("write io"));
                }
            }));
        }
        for driver in drivers {
            driver.join().expect("driver");
        }

        cluster.restart_node(victim).expect("restart");
        // Third wave: the recovered node takes writes again.
        drive(&cluster, 200, 23);

        drain_or_dump(&cluster, "quiescence after recovery");
        let statuses = cluster.statuses().expect("statuses");
        assert!(
            statuses[victim].wal_appends > 0,
            "the restarted node never appended to its WAL"
        );
        // (b)+(c): complete-trace verification — liveness violations would
        // flag any update the crash actually lost.
        assert_all_partitions_consistent(&cluster);
        cluster.shutdown().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Determinism, extended from the PR 2 seeded-workload tests into the
/// durability layer: two independent clusters driven with the same
/// `--seed` workload and crashed at the same op index leave byte-identical
/// `snapshot.bin` + `wal.bin` behind — and the files actually restart the
/// node. Streamed acks are disabled (`ack_every: 0`) so resend windows
/// are a pure function of the op stream rather than of ack timing.
#[test]
fn same_seed_same_crash_point_means_byte_identical_snapshots() {
    let crash_at_op = 150usize;
    type Traces = Vec<(
        prcc_checker::TraceCheckpoint,
        Vec<prcc_checker::trace::TraceEvent>,
    )>;
    let run = |tag: &str| -> (PathBuf, Vec<u8>, Vec<u8>, Traces) {
        let dir = scratch_dir(tag);
        let cfg = ServiceConfig {
            batch_max: 16,
            flush_interval: Duration::from_micros(100),
            data_dir: Some(dir.clone()),
            snapshot_every: 64,
            ack_every: 0,
            ..ServiceConfig::default()
        };
        let mut cluster = launch(4, 4, &cfg);
        // Drive ONLY node 0, sequentially, with the seeded keyed script it
        // would get from the shared generator: node 0's durable state is
        // then a pure function of (seed, crash_at_op).
        let map = cluster.map().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let keyed = generate_keyed_ops(&map, 600, None, &mut rng);
        let script = route_keyed_ops(&map, &keyed).swap_remove(0);
        assert!(
            script.len() > crash_at_op,
            "seed must route enough ops to node 0"
        );
        let mut client = cluster.client(0).expect("client");
        for (partition, register, value) in script.into_iter().take(crash_at_op) {
            assert!(client
                .write_in(partition, register, value)
                .expect("write io"));
        }
        cluster.crash_node(0);

        let node_dir = dir.join("node-0");
        let snapshot = std::fs::read(node_dir.join("snapshot.bin")).expect("snapshot exists");
        let wal = std::fs::read(node_dir.join("wal.bin")).expect("wal exists");

        // The files are not just stable — they must actually restart the
        // node with its full pre-crash event log.
        cluster.restart_node(0).expect("restart");
        let trace = cluster.client(0).expect("client").trace().expect("trace");
        // Tear the rest of the cluster down; survivors never crashed.
        cluster.shutdown().expect("shutdown");
        (dir, snapshot, wal, trace)
    };

    let (dir_a, snap_a, wal_a, trace_a) = run("det-a");
    let (dir_b, snap_b, wal_b, trace_b) = run("det-b");
    assert_eq!(
        snap_a, snap_b,
        "snapshots diverged across identical seeded runs"
    );
    assert_eq!(wal_a, wal_b, "WALs diverged across identical seeded runs");
    assert!(!snap_a.is_empty());
    // Every pre-crash issue is accounted for: sealed into a checkpoint
    // summary or still live in the suffix.
    let issues: u64 = trace_a
        .iter()
        .map(|(checkpoint, live)| {
            checkpoint.issues
                + live
                    .iter()
                    .filter(|e| matches!(e, prcc_checker::trace::TraceEvent::Issue { .. }))
                    .count() as u64
        })
        .sum();
    assert_eq!(
        issues, crash_at_op as u64,
        "recovered log must hold every pre-crash issue"
    );
    assert_eq!(trace_a, trace_b, "recovered traces diverged");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// The crash's black box: killing a node mid-traffic leaves a
/// `flight.log` next to its WAL whose final `wal_append` events line up
/// exactly with the last records actually recovered from `wal.bin` — the
/// recorder is telling the truth about what the node was doing in its
/// final moments, not a plausible approximation of it.
#[test]
fn crash_dump_flight_recorder_matches_final_wal_records() {
    let dir = scratch_dir("flight-dump");
    // A snapshot interval past the op count: the WAL then retains every
    // record since boot and the comparison is exact, not truncation-aware.
    let cfg = durable_cfg(dir.clone(), 1 << 20);
    let mut cluster = launch(4, 4, &cfg);
    let victim = 1usize;

    drive(&cluster, 300, 41);
    drain_or_dump(&cluster, "quiescence");
    cluster.crash_node(victim);

    // The dump is written by the core thread on its way out; crash_node
    // severs sockets before the thread exits, so wait for the file.
    let node_dir = dir.join(format!("node-{victim}"));
    let flight_path = node_dir.join("flight.log");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !flight_path.exists() && std::time::Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    let dump = std::fs::read_to_string(&flight_path).expect("flight.log written on crash");
    assert!(
        dump.starts_with("flight recorder:"),
        "unexpected dump header:\n{dump}"
    );
    assert!(
        dump.lines().last().is_some_and(|l| l.ends_with(" crash")),
        "the injected crash must be the dump's final event:\n{dump}"
    );

    // The indices the WAL actually retained (each record payload leads
    // with its varint index)...
    let wal_bytes = std::fs::read(node_dir.join("wal.bin")).expect("wal exists");
    let scan = prcc_storage::scan_wal(&wal_bytes).expect("valid wal");
    let wal_indices: Vec<u64> = scan
        .records
        .iter()
        .map(|payload| prcc_clock::encoding::read_varint_at(payload, &mut 0).expect("record index"))
        .collect();
    assert!(!wal_indices.is_empty(), "victim never appended to its WAL");

    // ...versus the indices the recorder saw being appended.
    let dumped: Vec<u64> = dump
        .lines()
        .filter_map(|line| {
            let (_, rest) = line.split_once(' ')?;
            let fields = rest.strip_prefix("wal_append ")?;
            fields
                .split_whitespace()
                .find_map(|f| f.strip_prefix("index="))?
                .parse()
                .ok()
        })
        .collect();
    assert!(!dumped.is_empty(), "no wal_append events in dump:\n{dump}");

    // The ring may have evicted old events and the oldest WAL records
    // predate any bounded recorder — but the tails must agree exactly:
    // same final append, and the recorder's recent appends are precisely
    // the corresponding suffix of the recovered log.
    assert_eq!(
        dumped.last(),
        wal_indices.last(),
        "last recorded append disagrees with the last durable record"
    );
    let tail = &wal_indices[wal_indices.len().saturating_sub(dumped.len())..];
    assert_eq!(
        &dumped[dumped.len() - tail.len()..],
        tail,
        "recorded append indices diverge from the recovered WAL"
    );

    // The dump is a black box, not state: the node still restarts from the
    // same directory and the complete history still verifies.
    cluster.restart_node(victim).expect("restart");
    drive(&cluster, 100, 42);
    drain_or_dump(&cluster, "post-restart quiescence");
    assert_all_partitions_consistent(&cluster);
    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cross-restart integrity: every snapshot leaves a digest record in the
/// fresh WAL binding the snapshot's sealed-trace checkpoints (event count
/// and chained FNV digest per hosted partition). A restart from the honest
/// files boots; the same files with ONE flipped digest bit in
/// `snapshot.bin` must refuse to boot with a diagnosable error rather
/// than silently serving from a tampered (or bit-rotted) store.
#[test]
fn tampered_snapshot_digest_refuses_to_boot() {
    let dir = scratch_dir("tamper");
    let cfg = ServiceConfig {
        batch_max: 16,
        flush_interval: Duration::from_micros(100),
        data_dir: Some(dir.clone()),
        snapshot_every: 64,
        // Compact aggressively so the sealed checkpoints the digest record
        // covers are non-trivial, not all-zero placeholders.
        trace_compact_at: 32,
        ..ServiceConfig::default()
    };
    let mut cluster = launch(4, 4, &cfg);
    let victim = 1usize;

    drive(&cluster, 400, 51);
    drain_or_dump(&cluster, "quiescence");
    cluster.crash_node(victim);

    // The honest files must boot — the digest check is a tamper detector,
    // not a tax on every legitimate restart.
    cluster
        .restart_node(victim)
        .expect("untampered files must boot");
    cluster.crash_node(victim);

    // The WAL must actually carry a digest record for the tamper below to
    // be checkable against; otherwise this test would pass vacuously.
    let node_dir = dir.join(format!("node-{victim}"));
    let protocol = EdgeProtocol::new(topologies::ring(4));
    let roles = cluster.map().graph().num_replicas();
    let make_clock = |k: prcc_graph::ReplicaId| {
        use prcc_clock::Protocol;
        (k.index() < roles).then(|| protocol.new_clock(k))
    };
    let wal_bytes = std::fs::read(node_dir.join("wal.bin")).expect("wal exists");
    let scan = prcc_storage::scan_wal(&wal_bytes).expect("valid wal");
    let has_digest = scan.records.iter().any(|payload| {
        matches!(
            prcc_storage::decode_record::<prcc_clock::EdgeClock, _>(payload, make_clock),
            Ok((_, prcc_storage::WalRecord::Digest { .. }))
        )
    });
    assert!(
        has_digest,
        "snapshotting run left no digest record in the WAL"
    );

    // Flip one digest bit on a hosted partition and re-encode.
    let snapshot_path = node_dir.join("snapshot.bin");
    let pristine = std::fs::read(&snapshot_path).expect("snapshot exists");
    let (version, payload) = prcc_storage::read_snapshot(&snapshot_path)
        .expect("readable snapshot")
        .expect("snapshot present");
    let mut snap = prcc_storage::decode_snapshot::<prcc_clock::EdgeClock, _>(
        version, &payload, roles, make_clock,
    )
    .expect("decodable snapshot");
    let slot = snap
        .partitions
        .iter_mut()
        .flatten()
        .next()
        .expect("victim hosts a partition");
    slot.checkpoint.digest ^= 1;
    prcc_storage::write_snapshot(&snapshot_path, &prcc_storage::encode_snapshot(&snap), true)
        .expect("rewrite snapshot");

    let err = cluster
        .restart_node(victim)
        .expect_err("tampered snapshot must refuse to boot");
    assert!(
        err.to_string().contains("digest"),
        "refusal must name the digest mismatch: {err}"
    );

    // Restoring the pristine bytes brings the node back — the refusal was
    // about the data, not collateral state.
    std::fs::write(&snapshot_path, pristine).expect("restore snapshot");
    cluster
        .restart_node(victim)
        .expect("restored files must boot");
    drive(&cluster, 100, 52);
    drain_or_dump(&cluster, "post-restore quiescence");
    assert_all_partitions_consistent(&cluster);
    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash-at-boot edge: a node that crashed before ever taking traffic
/// restarts from an empty data dir without complaint, and a second crash
/// immediately after restart (double fault) still recovers.
#[test]
fn empty_and_double_crash_recovery() {
    let dir = scratch_dir("double");
    let cfg = durable_cfg(dir.clone(), 32);
    let mut cluster = launch(2, 4, &cfg);

    // Crash node 3 before any traffic: nothing durable yet.
    cluster.crash_node(3);
    cluster.restart_node(3).expect("restart from empty state");

    drive(&cluster, 200, 31);
    drain_or_dump(&cluster, "quiescence");

    // Double fault: crash, restart, crash again immediately, restart.
    cluster.crash_node(3);
    cluster.restart_node(3).expect("first restart");
    cluster.crash_node(3);
    cluster.restart_node(3).expect("second restart");

    drive(&cluster, 100, 32);
    drain_or_dump(&cluster, "quiescence");
    assert_all_partitions_consistent(&cluster);
    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
