//! Helpers shared by the service integration suites (loopback,
//! partitioned, recovery, reconnect, compaction, chaos): cluster
//! configuration and launch, seeded keyed-workload driving, drain /
//! verify assertions, and the fake-peer handshake used by the link-level
//! tests.
//!
//! Integration tests compile one binary per file, so not every suite uses
//! every helper — hence the file-wide `dead_code` allowance.
#![allow(dead_code)]

use prcc_chaos::{ChaosConfig, ChaosNemesis, ChaosSchedule};
use prcc_clock::EdgeProtocol;
use prcc_graph::{topologies, PartitionMap};
use prcc_service::wire::{decode_peer_hello, encode_hello_ack, read_frame, write_frame, PeerHello};
use prcc_service::{LoopbackCluster, ServiceClient, ServiceConfig};
use prcc_workloads::ops::{generate_keyed_ops, route_keyed_ops};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How long a suite waits for cluster quiescence before declaring a stall.
pub const DRAIN: Duration = Duration::from_secs(30);

/// The suites' standard low-latency batching configuration.
pub fn quick_cfg() -> ServiceConfig {
    ServiceConfig {
        batch_max: 16,
        flush_interval: Duration::from_micros(100),
        ..ServiceConfig::default()
    }
}

/// [`quick_cfg`] plus the durability layer: a data dir and a snapshot
/// cadence (crash/restart suites need both).
pub fn durable_cfg(data_dir: PathBuf, snapshot_every: u64) -> ServiceConfig {
    ServiceConfig {
        data_dir: Some(data_dir),
        snapshot_every,
        ..quick_cfg()
    }
}

/// A fresh scratch dir under the system temp dir, unique per test `tag`
/// and process.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prcc-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

/// Launches `partitions` rotated instances of a `nodes`-replica ring over
/// `nodes` loopback nodes — the suites' standard sharded deployment.
pub fn launch_ring(partitions: u32, nodes: usize, cfg: &ServiceConfig) -> LoopbackCluster {
    let graph = topologies::ring(nodes);
    let map = PartitionMap::rotated(graph.clone(), partitions, nodes).expect("valid map");
    let protocol = Arc::new(EdgeProtocol::new(graph));
    LoopbackCluster::launch_partitioned(protocol, map, cfg, 0).expect("launch")
}

/// Drives `ops` seeded keyed writes through per-node clients in parallel.
pub fn drive(cluster: &LoopbackCluster, ops: usize, seed: u64) {
    let map = cluster.map().clone();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let keyed = generate_keyed_ops(&map, ops, None, &mut rng);
    let scripts = route_keyed_ops(&map, &keyed);
    let mut drivers = Vec::new();
    for (node, script) in scripts.into_iter().enumerate() {
        let mut client = cluster.client(node).expect("client");
        drivers.push(thread::spawn(move || {
            for (partition, register, value) in script {
                assert!(client
                    .write_in(partition, register, value)
                    .expect("write io"));
            }
        }));
    }
    for driver in drivers {
        driver.join().expect("driver");
    }
}

/// Drains to quiescence, dumping every node's counters on a timeout so a
/// stall is diagnosable from the test log.
pub fn drain_or_dump(cluster: &LoopbackCluster, what: &str) {
    if cluster.drain(DRAIN).expect("drain io") {
        return;
    }
    eprintln!("=== drain timeout: {what} ===");
    for status in cluster.statuses().expect("statuses") {
        eprintln!("{status:?}");
    }
    panic!("no quiescence: {what}");
}

/// Asserts zero misrouted drops and a consistent per-partition oracle
/// verdict across the whole cluster.
pub fn assert_all_partitions_consistent(cluster: &LoopbackCluster, what: &str) {
    assert_eq!(cluster.misrouted_drops().expect("statuses"), 0, "{what}");
    let verdicts = cluster.verify_partitions().expect("traces");
    for (p, verdict) in verdicts.iter().enumerate() {
        let v = verdict.as_ref().expect("replayable");
        assert!(v.is_consistent(), "{what}: partition {p}: {v:?}");
    }
}

/// [`drain_or_dump`] followed by [`assert_all_partitions_consistent`].
pub fn drain_and_verify(cluster: &LoopbackCluster, what: &str) {
    drain_or_dump(cluster, what);
    assert_all_partitions_consistent(cluster, what);
}

/// [`launch_ring`] with every directed peer link routed through a seeded
/// [`ChaosNemesis`]: the nemesis is launched lazily inside the rewire
/// closure, once the real peer listeners are bound, and handed back
/// alongside the cluster for heal/inspection.
pub fn launch_ring_via_nemesis(
    partitions: u32,
    nodes: usize,
    cfg: &ServiceConfig,
    chaos: ChaosConfig,
) -> (LoopbackCluster, ChaosNemesis) {
    let graph = topologies::ring(nodes);
    let map = PartitionMap::rotated(graph.clone(), partitions, nodes).expect("valid map");
    let protocol = Arc::new(EdgeProtocol::new(graph));
    let cell: RefCell<Option<ChaosNemesis>> = RefCell::new(None);
    let cluster = LoopbackCluster::launch_partitioned_via(protocol, map, cfg, 0, |node, real| {
        cell.borrow_mut()
            .get_or_insert_with(|| {
                ChaosNemesis::launch(real.to_vec(), chaos.clone()).expect("launch nemesis")
            })
            .peer_addrs_for(node)
    })
    .expect("launch cluster");
    let nemesis = cell.into_inner().expect("rewire never ran");
    (cluster, nemesis)
}

/// Per-node driver threads for fault-injected runs: each op is retried
/// with a redial until it lands (a node mid crash/restart refuses
/// connections; a retried write whose ack died with the node issues a
/// fresh update — exactly what a real retrying client produces). Bumps
/// `progress` once per landed op so the test can interleave faults at
/// known points of the drive.
pub fn spawn_redial_drivers(
    cluster: &LoopbackCluster,
    ops: usize,
    seed: u64,
    progress: &Arc<AtomicUsize>,
) -> Vec<thread::JoinHandle<()>> {
    let map = cluster.map().clone();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let keyed = generate_keyed_ops(&map, ops, None, &mut rng);
    let scripts = route_keyed_ops(&map, &keyed);
    scripts
        .into_iter()
        .enumerate()
        .map(|(node, script)| {
            let addr = cluster.addrs(node).1;
            let mut client = cluster.client(node).expect("client");
            let progress = Arc::clone(progress);
            thread::spawn(move || {
                for (partition, register, value) in script {
                    let deadline = Instant::now() + Duration::from_secs(60);
                    loop {
                        match client.write_in(partition, register, value) {
                            Ok(ok) => {
                                assert!(ok, "write refused by node {node}");
                                break;
                            }
                            Err(e) => {
                                assert!(
                                    Instant::now() < deadline,
                                    "node {node} unreachable for 60s: {e}"
                                );
                                thread::sleep(Duration::from_millis(20));
                                if let Ok(fresh) = ServiceClient::connect(addr) {
                                    client = fresh;
                                }
                            }
                        }
                    }
                    progress.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect()
}

/// Blocks until at least `target` ops have landed cluster-wide.
pub fn wait_progress(progress: &AtomicUsize, target: usize) {
    let stall = Instant::now() + Duration::from_secs(120);
    while progress.load(Ordering::Relaxed) < target {
        assert!(
            Instant::now() < stall,
            "drivers stalled before reaching {target} ops"
        );
        thread::sleep(Duration::from_millis(2));
    }
}

/// Runs online consistent-cut audits with fresh tokens until one is
/// conclusively closed, panicking on a closure violation. Lost markers
/// (severed links, crashed nodes) yield `Incomplete` verdicts — those are
/// retried, never trusted. Returns how many audits it took.
pub fn audit_until_closed(cluster: &LoopbackCluster, token_base: u64, attempts: u64) -> u64 {
    for i in 0..attempts {
        let verdict = cluster
            .cut_audit(token_base + i, Duration::from_secs(10))
            .expect("cut audit io");
        if verdict.is_closed() {
            return i + 1;
        }
        assert!(
            verdict.is_incomplete(),
            "consistent-cut closure violated: {verdict:?}"
        );
    }
    panic!("no conclusive cut in {attempts} audits");
}

/// Asserts the nemesis's realized fault-decision log is bit-identical to
/// the pure replay of its schedule — the replayability contract every
/// seed-pinned regression depends on.
pub fn assert_decision_log_replays(nemesis: &ChaosNemesis, nodes: usize) {
    let cfg = nemesis.schedule().config().clone();
    for ((src, dst), realized) in nemesis.schedule().decision_log() {
        let replayed = ChaosSchedule::replay_link(&cfg, nodes, src, dst, realized.len() as u64);
        assert_eq!(
            realized, replayed,
            "link {src}->{dst}: realized decision log diverged from pure replay"
        );
    }
}

/// Reads and decodes a dialing sender's hello frame (fake-peer side).
pub fn read_hello(conn: &mut TcpStream) -> PeerHello {
    let frame = read_frame(conn).expect("hello io").expect("hello frame");
    decode_peer_hello(&frame).expect("well-formed hello")
}

/// Completes the acceptor side of the versioned handshake: read the
/// hello, answer with the given acknowledged resume offset.
pub fn accept_handshake(conn: &mut TcpStream, acked: u64) -> PeerHello {
    let hello = read_hello(conn);
    write_frame(conn, &encode_hello_ack(acked)).expect("write hello ack");
    hello
}
