//! Seed-pinned chaos regressions.
//!
//! Every fault decision the nemesis draws is a pure function of
//! `(seed, link, frame index)`, so a failing chaos run is preserved here
//! as its `(seed, profile, scenario)` triple — rerunning the test replays
//! the exact adversarial schedule. Two kinds of pin live in this file:
//!
//! * **Digest pins** freeze the decision streams themselves. Any change
//!   to the stream RNG, the profile thresholds, the per-link seed
//!   derivation, or the partition rotation would silently invalidate
//!   every recorded seed in this file and every seed a developer has ever
//!   written down from a failing run — the digests make that a loud test
//!   failure instead.
//! * **Scenario pins** are full cluster runs under fixed seeds chosen to
//!   concentrate one fault class (a drop storm, a mid-frame cut shower).
//!   When a future chaos run fails, its seed and scenario get appended
//!   here in the same shape.

mod common;

use common::{
    assert_all_partitions_consistent, assert_decision_log_replays, drain_or_dump,
    launch_ring_via_nemesis, quick_cfg, scratch_dir, spawn_redial_drivers, wait_progress,
};
use prcc_chaos::{ChaosConfig, ChaosSchedule, FaultOp, FaultProfile, LinkDecision};
use prcc_net::chaos::mix64;
use prcc_service::wire::TAG_CUT_MARKER;
use prcc_service::ServiceConfig;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Order-sensitive fold of a decision stream into one u64.
fn digest(decisions: &[LinkDecision]) -> u64 {
    let mut d = 0u64;
    for dec in decisions {
        let code = match dec.op {
            FaultOp::Deliver => 1,
            FaultOp::Delay(ms) => 0x100 | ms,
            FaultOp::Reorder => 2,
            FaultOp::Duplicate => 3,
            FaultOp::Drop => 4,
            FaultOp::Cut => 5,
            FaultOp::CutMid(raw) => (1 << 32) | u64::from(raw),
        };
        d = mix64(d ^ code ^ (dec.index << 40) ^ (u64::from(dec.partition) << 39));
    }
    d
}

/// The frozen decision streams: seeds recorded from failing runs must
/// replay the identical fault sequence forever.
#[test]
fn pinned_decision_stream_digests_are_frozen() {
    let partitioned = ChaosConfig {
        seed: 0x51ED,
        profile: FaultProfile::heavy(),
        partition_every: 300,
        partition_len: 40,
        protect_tags: Vec::new(),
    };
    // (config, nodes, link, decisions, pinned digest)
    type PinCase<'a> = (&'a ChaosConfig, usize, (usize, usize), u64, u64);
    let cases: [PinCase; 4] = [
        (
            &ChaosConfig::new(0xC0FF_EE11),
            4,
            (0, 1),
            512,
            0x6EF4_FE75_E79C_9B8A,
        ),
        (
            &ChaosConfig::new(0xC0FF_EE11),
            4,
            (1, 0),
            512,
            0x03BA_D5BC_F5A3_2770,
        ),
        (&partitioned, 4, (0, 3), 600, 0x4657_DE12_5E1E_C852),
        (&partitioned, 3, (2, 1), 600, 0xD424_DC3A_6A9A_38F3),
    ];
    for (cfg, n, (src, dst), count, pinned) in cases {
        let stream = ChaosSchedule::replay_link(cfg, n, src, dst, count);
        assert_eq!(
            digest(&stream),
            pinned,
            "seed {:#x} link {src}->{dst}: decision stream changed — every \
             recorded chaos seed just lost its meaning",
            cfg.seed
        );
    }
}

/// The rotating split-brain windows are part of the schedule: the node a
/// window isolates is derived from the seed, and must stay frozen with it.
#[test]
fn pinned_partition_rotation_is_frozen() {
    let cfg = ChaosConfig {
        seed: 0x51ED,
        profile: FaultProfile::off(),
        partition_every: 300,
        partition_len: 40,
        protect_tags: Vec::new(),
    };
    let rotation: Vec<usize> = (0..8)
        .map(|w| ChaosSchedule::isolated_node(&cfg, 4, w))
        .collect();
    assert_eq!(rotation, vec![0, 0, 3, 3, 2, 0, 2, 1]);
}

/// Seed 0xD1CE: a drop-heavy schedule (every link losing ~12% of its
/// frames) composed with one crash/restart. Drops strand updates in the
/// sender windows until the heal-forced reconnect; the run must still
/// drain and verify with nothing evicted.
#[test]
fn seed_0xd1ce_drop_storm_with_crash_recovers_and_verifies() {
    let ops = 2_000usize;
    let dir = scratch_dir("regress-dropstorm");
    let cfg = ServiceConfig {
        data_dir: Some(dir.clone()),
        snapshot_every: 1024,
        ack_every: 2,
        connect_timeout: Duration::from_secs(60),
        ..quick_cfg()
    };
    let chaos = ChaosConfig {
        seed: 0xD1CE,
        profile: FaultProfile {
            drop_pm: 120,
            ..FaultProfile::light()
        },
        partition_every: 0,
        partition_len: 0,
        protect_tags: vec![TAG_CUT_MARKER],
    };
    let (mut cluster, nemesis) = launch_ring_via_nemesis(2, 3, &cfg, chaos);

    let progress = Arc::new(AtomicUsize::new(0));
    let drivers = spawn_redial_drivers(&cluster, ops, 0xD1CE, &progress);
    wait_progress(&progress, ops / 2);
    cluster.crash_node(1);
    thread::sleep(Duration::from_millis(100));
    cluster.restart_node(1).expect("restart");
    for driver in drivers {
        driver.join().expect("driver");
    }

    nemesis.heal();
    drain_or_dump(&cluster, "drop storm");
    assert_all_partitions_consistent(&cluster, "drop storm");
    let counts = nemesis.schedule().fault_counts();
    assert!(counts.dropped > 0, "the storm never dropped: {counts:?}");
    for status in cluster.statuses().expect("statuses") {
        assert_eq!(status.window_evicted, 0, "node {} gave up", status.node);
    }
    assert_decision_log_replays(&nemesis, cluster.len());
    cluster.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seed 0x7E57: a mid-frame cut shower — connections severed *inside*
/// encoded frames at schedule-chosen byte offsets, over and over. No
/// partial frame may ever decode (the reader must see a truncation
/// error), and the resend windows must redeliver everything the severed
/// connections swallowed.
#[test]
fn seed_0x7e57_mid_frame_cut_shower_never_corrupts() {
    let ops = 1_500usize;
    let cfg = ServiceConfig {
        connect_timeout: Duration::from_secs(60),
        ..quick_cfg()
    };
    let chaos = ChaosConfig {
        seed: 0x7E57,
        profile: FaultProfile {
            cut_mid_pm: 30,
            cut_pm: 10,
            ..FaultProfile::light()
        },
        partition_every: 0,
        partition_len: 0,
        protect_tags: vec![TAG_CUT_MARKER],
    };
    let (cluster, nemesis) = launch_ring_via_nemesis(2, 4, &cfg, chaos);

    let progress = Arc::new(AtomicUsize::new(0));
    let drivers = spawn_redial_drivers(&cluster, ops, 0x7E57, &progress);
    for driver in drivers {
        driver.join().expect("driver");
    }

    nemesis.heal();
    drain_or_dump(&cluster, "mid-frame cut shower");
    assert_all_partitions_consistent(&cluster, "mid-frame cut shower");
    let counts = nemesis.schedule().fault_counts();
    assert!(
        counts.cut_mid > 0,
        "the shower never cut mid-frame: {counts:?}"
    );
    assert_decision_log_replays(&nemesis, cluster.len());
    cluster.shutdown().expect("shutdown");
}
