//! Integration tests for the sharded deployment: real TCP loopback
//! clusters hosting many partitions per node, key-routed clients, and
//! per-partition oracle verification.

mod common;

use common::{launch_ring, quick_cfg, DRAIN};
use prcc_clock::EdgeProtocol;
use prcc_graph::{topologies, PartitionId, PartitionMap};
use prcc_service::{LoopbackCluster, ServiceConfig};
use prcc_workloads::ops::{generate_keyed_ops, route_keyed_ops};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn launch(partitions: u32, nodes: usize) -> LoopbackCluster {
    launch_ring(partitions, nodes, &quick_cfg())
}

/// A 4-node ring hosting 8 partitions, driven by a seeded keyed workload
/// through per-node clients in parallel: every partition's replay must be
/// independently causally consistent, and load must reach many partitions.
#[test]
fn sharded_keyed_workload_is_consistent_per_partition() {
    let cluster = launch(8, 4);
    let map = cluster.map().clone();

    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let ops = generate_keyed_ops(&map, 600, None, &mut rng);
    let scripts = route_keyed_ops(&map, &ops);
    let mut drivers = Vec::new();
    for (node, script) in scripts.into_iter().enumerate() {
        let mut client = cluster.client(node).expect("client");
        drivers.push(thread::spawn(move || {
            for (partition, register, value) in script {
                assert!(client
                    .write_in(partition, register, value)
                    .expect("write io"));
            }
        }));
    }
    for driver in drivers {
        driver.join().expect("driver");
    }

    assert!(cluster.drain(DRAIN).expect("drain io"), "no quiescence");
    let statuses = cluster.statuses().expect("statuses");
    assert_eq!(statuses.iter().map(|s| s.issued).sum::<u64>(), 600);
    // Per-partition counters reconcile with the aggregates.
    for status in &statuses {
        assert_eq!(status.per_partition.len(), 8);
        assert_eq!(
            status.per_partition.iter().map(|p| p.issued).sum::<u64>(),
            status.issued
        );
        assert_eq!(
            status.per_partition.iter().map(|p| p.applies).sum::<u64>(),
            status.applies
        );
    }
    // A uniform key stream touches (almost surely) every partition.
    let per_partition_issued: Vec<u64> = (0..8)
        .map(|p| statuses.iter().map(|s| s.per_partition[p].issued).sum())
        .collect();
    assert!(
        per_partition_issued.iter().filter(|&&n| n > 0).count() >= 6,
        "load not spread: {per_partition_issued:?}"
    );

    // Routing is airtight: nothing was dropped as misrouted anywhere, and
    // every delivered update went through the v3 single-frame flush path
    // (frames never exceed per-partition batch sections).
    for status in &statuses {
        assert_eq!(
            status.dropped_misrouted, 0,
            "node {} dropped misrouted updates",
            status.node
        );
        assert!(
            status.frames_sent <= status.batches_sent,
            "node {}: {} frames for {} batches",
            status.node,
            status.frames_sent,
            status.batches_sent
        );
    }
    assert_eq!(cluster.misrouted_drops().expect("statuses"), 0);

    let verdicts = cluster.verify_partitions().expect("traces");
    assert_eq!(verdicts.len(), 8);
    for (p, verdict) in verdicts.iter().enumerate() {
        let v = verdict.as_ref().expect("replayable");
        assert!(v.is_consistent(), "partition {p}: {v:?}");
    }
    cluster.shutdown().expect("shutdown");
}

/// The v3 frame-packing tentpole, observed end to end: with a long flush
/// interval and a key stream sweeping every partition, each sender flush
/// coalesces updates of *several* partitions — which must ship as one
/// frame each (strictly fewer frames than per-partition batch sections,
/// and nowhere near batches x partitions).
#[test]
fn flushes_pack_multiple_partitions_into_one_frame() {
    let graph = topologies::ring(4);
    let map = PartitionMap::rotated(graph.clone(), 8, 4).expect("valid map");
    let protocol = Arc::new(EdgeProtocol::new(graph));
    let cfg = ServiceConfig {
        batch_max: 64,
        // Long enough that one flush window sees writes to many partitions
        // from the sweeping client below.
        flush_interval: Duration::from_millis(5),
        ..ServiceConfig::default()
    };
    let cluster = LoopbackCluster::launch_partitioned(protocol, map, &cfg, 0).expect("launch");

    let mut routed = cluster.routed_client().expect("routed client");
    let keys = cluster.map().num_keys();
    for round in 0..6u64 {
        for key in 0..keys {
            routed.write_key(key, round * keys + key).expect("write");
        }
    }
    assert!(cluster.drain(DRAIN).expect("drain io"), "no quiescence");

    let statuses = cluster.statuses().expect("statuses");
    let frames: u64 = statuses.iter().map(|s| s.frames_sent).sum();
    let batches: u64 = statuses.iter().map(|s| s.batches_sent).sum();
    let flushes: u64 = statuses.iter().map(|s| s.flushes).sum();
    assert!(frames > 0, "no peer frames at all");
    assert_eq!(
        frames, flushes,
        "v3 invariant broken: every flush is exactly one frame"
    );
    assert!(
        batches > frames,
        "no multi-partition flush was packed: {batches} batch sections in {frames} frames"
    );

    let verdicts = cluster.verify_partitions().expect("traces");
    for (p, verdict) in verdicts.iter().enumerate() {
        let v = verdict.as_ref().expect("replayable");
        assert!(v.is_consistent(), "partition {p}: {v:?}");
    }
    cluster.shutdown().expect("shutdown");
}

/// Writes routed to partition 0 must never be applied by any replica of
/// another partition: partition 1's logs and counters stay empty, and the
/// per-partition replay confirms nothing leaked.
#[test]
fn write_to_partition_a_never_applied_by_partition_b() {
    let cluster = launch(2, 4);
    let map = cluster.map().clone();

    // Drive 100 writes, all onto keys of partition 0.
    let span = map.graph().num_registers() as u64;
    let mut routed = cluster.routed_client().expect("routed client");
    for v in 0..100u64 {
        routed.write_key(v % span, v).expect("write");
    }
    assert!(cluster.drain(DRAIN).expect("drain io"));

    let statuses = cluster.statuses().expect("statuses");
    for status in &statuses {
        assert_eq!(status.per_partition.len(), 2);
        assert_eq!(
            status.per_partition[1].issued, 0,
            "node {} issued into partition 1",
            status.node
        );
        assert_eq!(
            status.per_partition[1].applies, 0,
            "node {} applied partition-0 updates in partition 1",
            status.node
        );
    }
    // Trace-level check: every node's partition-1 log is empty, and the
    // partition-0 replay sees a complete, consistent history.
    let traces = cluster.collect_traces().expect("traces");
    for (node, logs) in traces.iter().enumerate() {
        assert_eq!(logs.len(), 2);
        let (checkpoint, live) = &logs[1];
        assert!(
            checkpoint.is_empty() && live.is_empty(),
            "node {node} recorded partition-1 events: {live:?}"
        );
    }
    let verdicts = cluster.verify_partitions().expect("traces");
    assert!(verdicts[0].as_ref().expect("replayable").is_consistent());
    assert!(verdicts[1].as_ref().expect("replayable").is_consistent());
    cluster.shutdown().expect("shutdown");
}

/// The key-routing client: write/read by flat key across the whole
/// universe, with values converging at quiescence; keys outside the
/// universe are rejected without wedging anything.
#[test]
fn routed_client_round_trips_keys() {
    let cluster = launch(4, 4);
    let mut routed = cluster.routed_client().expect("routed client");
    let keys = cluster.map().num_keys();

    for key in 0..keys {
        routed.write_key(key, 1000 + key).expect("write");
    }
    assert!(cluster.drain(DRAIN).expect("drain io"));
    for key in 0..keys {
        assert_eq!(
            routed.read_key(key).expect("read"),
            Some(1000 + key),
            "key {key} lost its value"
        );
    }
    assert!(routed.write_key(keys, 1).is_err(), "out-of-universe key");

    let verdict = cluster.verify().expect("traces").expect("replayable");
    assert!(verdict.is_consistent(), "verdict: {verdict:?}");
    cluster.shutdown().expect("shutdown");
}

/// `Config` serves the deployment's partition map, so a client connected to
/// any single node can learn the full routing table; `RoutedClient::connect`
/// bootstraps exactly this way.
#[test]
fn config_request_serves_partition_map() {
    let cluster = launch(3, 5);
    for node in 0..cluster.len() {
        let map = cluster
            .client(node)
            .expect("client")
            .config()
            .expect("config");
        assert_eq!(&map, cluster.map(), "node {node} serves a different map");
    }
    // Bootstrapping a router from addresses alone works end to end.
    let addrs = (0..cluster.len()).map(|i| cluster.addrs(i).1).collect();
    let mut routed = prcc_service::RoutedClient::connect(addrs).expect("bootstrap");
    routed.write_key(0, 7).expect("write");
    assert!(cluster.drain(DRAIN).expect("drain io"));
    assert_eq!(routed.read_key(0).expect("read"), Some(7));
    cluster.shutdown().expect("shutdown");
}

/// Partition counters from `Status` reconcile against `PartitionId`
/// addressing: a write into partition `p` shows up in exactly slot `p`.
#[test]
fn per_partition_counters_attribute_writes() {
    let cluster = launch(5, 3);
    let map = cluster.map().clone();
    // One write into each partition, through its role-0 hosting node.
    for p in map.partitions() {
        let node = map.node_of(p, prcc_graph::ReplicaId(0));
        let mut client = cluster.client(node).expect("client");
        assert!(client
            .write_in(p, prcc_graph::RegisterId(0), u64::from(p.0))
            .expect("write io"));
    }
    assert!(cluster.drain(DRAIN).expect("drain io"));
    let statuses = cluster.statuses().expect("statuses");
    for p in 0..5usize {
        let issued: u64 = statuses.iter().map(|s| s.per_partition[p].issued).sum();
        assert_eq!(issued, 1, "partition {p} issued {issued}");
    }
    // Writes into an out-of-range partition are refused, not crashed.
    let mut client = cluster.client(0).expect("client");
    assert!(!client
        .write_in(PartitionId(99), prcc_graph::RegisterId(0), 1)
        .expect("write io"));
    cluster.shutdown().expect("shutdown");
}
