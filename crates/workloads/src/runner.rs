//! The workload runner.

use crate::ops::{generate_keyed_ops, generate_ops, split_by_partition};
use crate::report::{RunReport, VerdictSummary};
use prcc_clock::Protocol;
use prcc_core::Cluster;
use prcc_graph::PartitionMap;
use prcc_net::DeliveryPolicy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters of a randomized write workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Total writes issued across the cluster.
    pub total_writes: usize,
    /// RNG seed for replica/register choice.
    pub seed: u64,
    /// Network deliveries interleaved after each write (0 = issue
    /// everything up front, maximizing in-flight reordering).
    pub interleave: usize,
    /// If set, fraction `0.0..1.0` of writes that go to register 0's first
    /// holder (a hotspot); the rest are uniform.
    pub hotspot: Option<f64>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            total_writes: 100,
            seed: 0,
            interleave: 1,
            hotspot: None,
        }
    }
}

/// Runs a seeded random write workload on a fresh cluster and reports the
/// outcome. Writers are chosen uniformly; each writes a register it stores.
pub fn run_workload<P: Protocol>(
    protocol: P,
    policy: Box<dyn DeliveryPolicy>,
    cfg: WorkloadConfig,
) -> RunReport {
    let name = protocol.name().to_string();
    let g = protocol.share_graph().clone();
    let mut cluster = Cluster::new(protocol, policy);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    // The same generator drives the TCP deployment's load binary, so
    // simulator and service runs of one seed issue identical op streams.
    for (i, x, v) in generate_ops(&g, cfg.total_writes, cfg.hotspot, &mut rng) {
        cluster.write(i, x, v).expect("valid write");
        for _ in 0..cfg.interleave {
            cluster.step();
        }
    }
    cluster.run_to_quiescence();
    let verdict = cluster.verdict();
    let stats = cluster.stats();
    RunReport {
        protocol: name,
        seed: cfg.seed,
        verdict: VerdictSummary::from_verdict(&verdict),
        duration_ticks: cluster.net().stats().last_delivery().ticks(),
        stats,
    }
}

/// Runs one seeded *keyed* workload over a sharded register space in the
/// simulator: every partition is an independent cluster of the same share
/// graph, the key stream is split per partition (same per-key holder
/// affinity as the networked deployment), and each partition is driven,
/// drained and verified on its own — one [`RunReport`] per partition.
///
/// This is the simulator-side twin of `prcc-load --partitions N`: the same
/// seed yields the same key stream there, so oracle outcomes are
/// comparable across the two harnesses.
pub fn run_partitioned_workload<P, F, G>(
    mut make_protocol: F,
    mut make_policy: G,
    map: &PartitionMap,
    cfg: WorkloadConfig,
) -> Vec<RunReport>
where
    P: Protocol,
    F: FnMut() -> P,
    G: FnMut(u64) -> Box<dyn DeliveryPolicy>,
{
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let ops = generate_keyed_ops(map, cfg.total_writes, cfg.hotspot, &mut rng);
    let per_partition = split_by_partition(map, &ops);
    per_partition
        .into_iter()
        .enumerate()
        .map(|(p, script)| {
            let protocol = make_protocol();
            let name = format!("{}/p{p}", protocol.name());
            let mut cluster = Cluster::new(protocol, make_policy(cfg.seed ^ (p as u64) << 32));
            for (role, x, v) in script {
                cluster.write(role, x, v).expect("valid routed write");
                for _ in 0..cfg.interleave {
                    cluster.step();
                }
            }
            cluster.run_to_quiescence();
            let verdict = cluster.verdict();
            let stats = cluster.stats();
            RunReport {
                protocol: name,
                seed: cfg.seed,
                verdict: VerdictSummary::from_verdict(&verdict),
                duration_ticks: cluster.net().stats().last_delivery().ticks(),
                stats,
            }
        })
        .collect()
}

/// Runs `seeds` independent workloads (seeds `0..seeds`) and returns the
/// fraction that violated causal consistency, plus the per-seed reports.
pub fn violation_rate<P, F, G>(
    mut make_protocol: F,
    mut make_policy: G,
    cfg: WorkloadConfig,
    seeds: u64,
) -> (f64, Vec<RunReport>)
where
    P: Protocol,
    F: FnMut() -> P,
    G: FnMut(u64) -> Box<dyn DeliveryPolicy>,
{
    let mut reports = Vec::with_capacity(seeds as usize);
    let mut bad = 0;
    for seed in 0..seeds {
        let report = run_workload(
            make_protocol(),
            make_policy(seed),
            WorkloadConfig { seed, ..cfg },
        );
        if !report.consistent() {
            bad += 1;
        }
        reports.push(report);
    }
    (bad as f64 / seeds as f64, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_baselines::edge_sets;
    use prcc_clock::EdgeProtocol;
    use prcc_graph::{topologies, RegisterId};
    use prcc_net::UniformDelay;

    #[test]
    fn exact_protocol_never_violates() {
        let g = topologies::ring(5);
        let (rate, reports) = violation_rate(
            || EdgeProtocol::new(g.clone()),
            |seed| Box::new(UniformDelay::new(seed.wrapping_mul(11) + 1, 1, 60)),
            WorkloadConfig {
                total_writes: 60,
                interleave: 1,
                ..Default::default()
            },
            10,
        );
        assert_eq!(rate, 0.0, "{reports:?}");
        assert!(reports.iter().all(|r| r.stats.applies > 0));
    }

    #[test]
    fn hotspot_workload_runs() {
        let g = topologies::figure5();
        let report = run_workload(
            EdgeProtocol::new(g),
            Box::new(UniformDelay::new(3, 1, 10)),
            WorkloadConfig {
                total_writes: 40,
                hotspot: Some(0.5),
                ..Default::default()
            },
        );
        assert!(report.consistent());
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn partitioned_workload_verifies_every_partition() {
        let g = topologies::ring(4);
        let map = prcc_graph::PartitionMap::rotated(g.clone(), 6, 4).unwrap();
        let reports = run_partitioned_workload(
            || EdgeProtocol::new(g.clone()),
            |seed| Box::new(UniformDelay::new(seed.wrapping_mul(7) + 1, 1, 40)),
            &map,
            WorkloadConfig {
                total_writes: 120,
                seed: 11,
                interleave: 1,
                hotspot: Some(0.3),
            },
        );
        assert_eq!(reports.len(), 6);
        assert!(reports.iter().all(|r| r.consistent()), "{reports:?}");
        // The hotspot key (key 0) lives in partition 0: it must dominate.
        let applies: Vec<u64> = reports.iter().map(|r| r.stats.applies).collect();
        assert!(
            applies[0] >= *applies[1..].iter().max().unwrap(),
            "hotspot partition not dominant: {applies:?}"
        );
        // Same seed, same outcome: the keyed stream is reproducible.
        let again = run_partitioned_workload(
            || EdgeProtocol::new(g.clone()),
            |seed| Box::new(UniformDelay::new(seed.wrapping_mul(7) + 1, 1, 40)),
            &map,
            WorkloadConfig {
                total_writes: 120,
                seed: 11,
                interleave: 1,
                hotspot: Some(0.3),
            },
        );
        let issued: Vec<u64> = reports.iter().map(|r| r.stats.updates_issued).collect();
        let issued_again: Vec<u64> = again.iter().map(|r| r.stats.updates_issued).collect();
        assert_eq!(issued, issued_again);
    }

    #[test]
    fn counterexample2_modified_hoops_violate_under_search() {
        // The paper's counterexample 2, driven adversarially: the chain of
        // writes around the 7-cycle with the direct k→j link held back.
        let (g, r) = topologies::counterexample2();
        let protocol = edge_sets::hoop_protocol(&g, true);
        let mut cluster = prcc_core::Cluster::new(protocol, Box::new(prcc_net::FixedDelay(5)));
        cluster.net_mut().hold_link(r.k.index(), r.j.index());
        // u0: k writes x (held on the way to j).
        cluster.write(r.k, r.x, 1).unwrap();
        cluster.run_to_quiescence();
        // Chain k → a2 → a1 → i → b2 → b1 → j along unique edge registers.
        let chain = [
            (r.k, RegisterId(5)),  // u4: k–a2
            (r.a2, RegisterId(6)), // u5: a2–a1
            (r.a1, RegisterId(4)), // u3: a1–i
            (r.i, RegisterId(3)),  // u2: i–b2
            (r.b2, r.y),           // y: b2–{b1,a1}
            (r.b1, RegisterId(2)), // u1: b1–j
        ];
        for (rep, reg) in chain {
            cluster.write(rep, reg, 0).unwrap();
            cluster.run_to_quiescence();
        }
        let verdict = cluster.verdict();
        assert!(
            !verdict.safety.is_empty(),
            "modified minimal hoops must violate safety here"
        );
        // The violation is at j, missing k's x-update.
        let v = verdict.safety[0];
        assert_eq!(v.replica, r.j);
        // Control: the exact protocol under the identical schedule is safe.
        let mut ok = prcc_core::Cluster::new(
            EdgeProtocol::new(g.clone()),
            Box::new(prcc_net::FixedDelay(5)),
        );
        ok.net_mut().hold_link(r.k.index(), r.j.index());
        ok.write(r.k, r.x, 1).unwrap();
        ok.run_to_quiescence();
        for (rep, reg) in chain {
            ok.write(rep, reg, 0).unwrap();
            ok.run_to_quiescence();
        }
        assert!(ok.verdict().safety.is_empty(), "exact protocol stays safe");
        // After releasing the held link everything settles consistently.
        ok.release_and_settle();
        assert!(ok.verdict().is_consistent());
    }
}
