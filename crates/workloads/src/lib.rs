//! Workload generation and the experiment runner.
//!
//! Drives a [`prcc_core::Cluster`] with randomized-but-seeded write
//! workloads interleaved with message deliveries, collects the oracle
//! verdict and all statistics into a [`RunReport`], and provides violation
//! search (run many seeds, report how many executions violate causal
//! consistency — the measurement behind the unsafe-baseline experiments
//! E05/E07/E13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ops;
mod report;
mod runner;

pub use report::{LatencySummary, RunReport, VerdictSummary};
pub use runner::{run_partitioned_workload, run_workload, violation_rate, WorkloadConfig};
