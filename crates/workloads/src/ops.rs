//! Op-stream generation shared by the simulator runner and the networked
//! load driver (`prcc-load`).
//!
//! Keeping the generator in one place means the TCP deployment and the
//! discrete-event simulator can be driven with *the same* seeded workload,
//! making their reports comparable.

use prcc_graph::{RegisterId, ReplicaId, ShareGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// One write operation: `(issuing replica, register, value)`.
pub type WriteOp = (ReplicaId, RegisterId, u64);

/// Generates a seeded random write stream over `g`.
///
/// Writers are chosen uniformly among replicas that store at least one
/// register; each writes a uniformly chosen register it stores. With
/// `hotspot = Some(f)`, fraction `f` of writes instead target register 0
/// through its first holder (a skewed-contention knob). Values are the op
/// index, so every write is distinguishable.
///
/// The RNG call sequence is stable: for a given `rand` stream this function
/// yields exactly the ops the pre-refactor `run_workload` issued inline.
pub fn generate_ops<R: Rng>(
    g: &ShareGraph,
    total: usize,
    hotspot: Option<f64>,
    rng: &mut R,
) -> Vec<WriteOp> {
    let writers: Vec<ReplicaId> = g
        .replicas()
        .filter(|&i| !g.registers_of(i).is_empty())
        .collect();
    let hot = g.holders(RegisterId(0)).first().copied();
    let mut ops = Vec::with_capacity(total);
    for n in 0..total {
        let (i, x) = match (hotspot, hot) {
            (Some(f), Some(h)) if rng.gen_bool(f) => (h, RegisterId(0)),
            _ => {
                let i = *writers.choose(rng).expect("some writer");
                let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
                (i, *regs.choose(rng).expect("writer stores registers"))
            }
        };
        ops.push((i, x, n as u64));
    }
    ops
}

/// Splits an op stream into per-replica sub-streams (preserving each
/// replica's issue order) — the shape a per-node client driver consumes.
pub fn partition_by_replica(g: &ShareGraph, ops: &[WriteOp]) -> Vec<Vec<WriteOp>> {
    let mut per_node = vec![Vec::new(); g.num_replicas()];
    for &(i, x, v) in ops {
        per_node[i.index()].push((i, x, v));
    }
    per_node
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::topologies;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ops_are_valid_and_deterministic() {
        let g = topologies::figure5();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ops = generate_ops(&g, 200, None, &mut rng);
        assert_eq!(ops.len(), 200);
        for &(i, x, _) in &ops {
            assert!(g.stores(i, x), "replica {i} does not store {x}");
        }
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(ops, generate_ops(&g, 200, None, &mut rng2));
    }

    #[test]
    fn hotspot_skews_towards_register_zero() {
        let g = topologies::ring(6);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ops = generate_ops(&g, 400, Some(0.8), &mut rng);
        let hot = ops.iter().filter(|&&(_, x, _)| x == RegisterId(0)).count();
        assert!(hot > 200, "hotspot fraction not applied ({hot}/400)");
    }

    #[test]
    fn partition_preserves_order_and_membership() {
        let g = topologies::ring(4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ops = generate_ops(&g, 100, None, &mut rng);
        let parts = partition_by_replica(&g, &ops);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
        for (idx, part) in parts.iter().enumerate() {
            let values: Vec<u64> = part.iter().map(|&(_, _, v)| v).collect();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            assert_eq!(values, sorted, "node {idx} order mangled");
            assert!(part.iter().all(|&(i, _, _)| i == ReplicaId(idx)));
        }
    }
}
