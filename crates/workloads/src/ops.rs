//! Op-stream generation shared by the simulator runner and the networked
//! load driver (`prcc-load`).
//!
//! Keeping the generator in one place means the TCP deployment and the
//! discrete-event simulator can be driven with *the same* seeded workload,
//! making their reports comparable.

use prcc_graph::{PartitionId, PartitionMap, RegisterId, ReplicaId, ShareGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// One write operation: `(issuing replica, register, value)`.
pub type WriteOp = (ReplicaId, RegisterId, u64);

/// One keyed operation against a sharded deployment: `(key, value)`. The
/// key routes through a [`PartitionMap`] to a `(partition, register)` pair.
pub type KeyOp = (u64, u64);

/// One routed operation at a node: `(partition, register, value)`.
pub type RoutedOp = (PartitionId, RegisterId, u64);

/// Generates a seeded random write stream over `g`.
///
/// Writers are chosen uniformly among replicas that store at least one
/// register; each writes a uniformly chosen register it stores. With
/// `hotspot = Some(f)`, fraction `f` of writes instead target register 0
/// through its first holder (a skewed-contention knob). Values are the op
/// index, so every write is distinguishable.
///
/// The RNG call sequence is stable: for a given `rand` stream this function
/// yields exactly the ops the pre-refactor `run_workload` issued inline.
pub fn generate_ops<R: Rng>(
    g: &ShareGraph,
    total: usize,
    hotspot: Option<f64>,
    rng: &mut R,
) -> Vec<WriteOp> {
    let writers: Vec<ReplicaId> = g
        .replicas()
        .filter(|&i| !g.registers_of(i).is_empty())
        .collect();
    let hot = g.holders(RegisterId(0)).first().copied();
    let mut ops = Vec::with_capacity(total);
    for n in 0..total {
        let (i, x) = match (hotspot, hot) {
            (Some(f), Some(h)) if rng.gen_bool(f) => (h, RegisterId(0)),
            _ => {
                let i = *writers.choose(rng).expect("some writer");
                let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
                (i, *regs.choose(rng).expect("writer stores registers"))
            }
        };
        ops.push((i, x, n as u64));
    }
    ops
}

/// Splits an op stream into per-replica sub-streams (preserving each
/// replica's issue order) — the shape a per-node client driver consumes.
pub fn partition_by_replica(g: &ShareGraph, ops: &[WriteOp]) -> Vec<Vec<WriteOp>> {
    let mut per_node = vec![Vec::new(); g.num_replicas()];
    for &(i, x, v) in ops {
        per_node[i.index()].push((i, x, v));
    }
    per_node
}

/// Generates a seeded keyed write stream over a sharded key space.
///
/// Keys are uniform over the whole `partitions × registers` universe, so
/// partitions receive statistically even load. With `hotspot = Some(f)`,
/// fraction `f` of ops instead target key 0 — concentrating load on one
/// register of one partition, the skewed-contention knob of a multi-tenant
/// deployment. Values are the op index, so every write is distinguishable
/// and the per-key value stream is monotone.
pub fn generate_keyed_ops<R: Rng>(
    map: &PartitionMap,
    total: usize,
    hotspot: Option<f64>,
    rng: &mut R,
) -> Vec<KeyOp> {
    let universe = map.num_keys();
    assert!(universe > 0, "partition map has no keys");
    let mut ops = Vec::with_capacity(total);
    for n in 0..total {
        let key = match hotspot {
            Some(f) if rng.gen_bool(f) => 0,
            _ => rng.gen_range(0..universe),
        };
        ops.push((key, n as u64));
    }
    ops
}

/// The holder a key's operations stick to, among the holders of its
/// register: deterministic per key, spread across holders. The same
/// affinity rule routes client sessions (`prcc_service`'s `RoutedClient`)
/// and driver scripts, so one key's writes always form a chain at one
/// replica.
pub fn key_affinity(key: u64, holders: usize) -> usize {
    (key % holders as u64) as usize
}

/// Routes a keyed op stream to per-node driver scripts: each op becomes a
/// `(partition, register, value)` triple at the node hosting the key's
/// affine holder role. Per-node issue order preserves stream order.
///
/// # Panics
///
/// Panics if an op's key lies outside the map's universe.
pub fn route_keyed_ops(map: &PartitionMap, ops: &[KeyOp]) -> Vec<Vec<RoutedOp>> {
    let mut per_node = vec![Vec::new(); map.num_nodes()];
    for &(key, v) in ops {
        let (p, x) = map.locate(key).expect("key inside the universe");
        let holders = map.holder_nodes(p, x);
        let node = holders[key_affinity(key, holders.len())];
        per_node[node].push((p, x, v));
    }
    per_node
}

/// Routes a keyed op stream *within* partitions for the simulator: ops of
/// partition `p` become `(role, register, value)` write ops for an
/// independent share-graph instance, using the same per-key holder
/// affinity as [`route_keyed_ops`].
pub fn split_by_partition(map: &PartitionMap, ops: &[KeyOp]) -> Vec<Vec<WriteOp>> {
    let g = map.graph();
    let mut per_partition = vec![Vec::new(); map.num_partitions() as usize];
    for &(key, v) in ops {
        let (p, x) = map.locate(key).expect("key inside the universe");
        let holders = g.holders(x);
        let role = holders[key_affinity(key, holders.len())];
        per_partition[p.index()].push((role, x, v));
    }
    per_partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::topologies;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ops_are_valid_and_deterministic() {
        let g = topologies::figure5();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ops = generate_ops(&g, 200, None, &mut rng);
        assert_eq!(ops.len(), 200);
        for &(i, x, _) in &ops {
            assert!(g.stores(i, x), "replica {i} does not store {x}");
        }
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(ops, generate_ops(&g, 200, None, &mut rng2));
    }

    #[test]
    fn hotspot_skews_towards_register_zero() {
        let g = topologies::ring(6);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ops = generate_ops(&g, 400, Some(0.8), &mut rng);
        let hot = ops.iter().filter(|&&(_, x, _)| x == RegisterId(0)).count();
        assert!(hot > 200, "hotspot fraction not applied ({hot}/400)");
    }

    #[test]
    fn keyed_ops_are_deterministic_per_seed() {
        let map = PartitionMap::rotated(topologies::ring(4), 8, 4).unwrap();
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let ops_a = generate_keyed_ops(&map, 300, Some(0.2), &mut a);
        let ops_b = generate_keyed_ops(&map, 300, Some(0.2), &mut b);
        assert_eq!(ops_a, ops_b, "same seed must reproduce the stream");
        let mut c = ChaCha8Rng::seed_from_u64(10);
        assert_ne!(ops_a, generate_keyed_ops(&map, 300, Some(0.2), &mut c));
        for &(key, _) in &ops_a {
            assert!(key < map.num_keys());
        }
    }

    #[test]
    fn keyed_hotspot_concentrates_on_partition_zero() {
        let map = PartitionMap::rotated(topologies::ring(4), 8, 4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ops = generate_keyed_ops(&map, 500, Some(0.7), &mut rng);
        let hot = ops.iter().filter(|&&(key, _)| key == 0).count();
        assert!(hot > 250, "hotspot fraction not applied ({hot}/500)");
    }

    #[test]
    fn routed_ops_land_on_holder_nodes() {
        let map = PartitionMap::rotated(topologies::ring(4), 6, 4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ops = generate_keyed_ops(&map, 200, None, &mut rng);
        let scripts = route_keyed_ops(&map, &ops);
        assert_eq!(scripts.iter().map(Vec::len).sum::<usize>(), 200);
        for (node, script) in scripts.iter().enumerate() {
            for &(p, x, _) in script {
                assert!(
                    map.holder_nodes(p, x).contains(&node),
                    "node {node} drives ({p}, {x}) it does not host"
                );
            }
        }
        // Same affinity in the simulator split: role and node agree.
        let by_partition = split_by_partition(&map, &ops);
        assert_eq!(by_partition.iter().map(Vec::len).sum::<usize>(), 200);
        for (p, part) in by_partition.iter().enumerate() {
            for &(role, x, _) in part {
                assert!(map.graph().stores(role, x));
                let node = map.node_of(PartitionId(p as u32), role);
                assert!(scripts[node]
                    .iter()
                    .any(|&(pp, xx, _)| { pp == PartitionId(p as u32) && xx == x }));
            }
        }
    }

    #[test]
    fn partition_preserves_order_and_membership() {
        let g = topologies::ring(4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ops = generate_ops(&g, 100, None, &mut rng);
        let parts = partition_by_replica(&g, &ops);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
        for (idx, part) in parts.iter().enumerate() {
            let values: Vec<u64> = part.iter().map(|&(_, _, v)| v).collect();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            assert_eq!(values, sorted, "node {idx} order mangled");
            assert!(part.iter().all(|&(i, _, _)| i == ReplicaId(idx)));
        }
    }
}
