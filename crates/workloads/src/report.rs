//! Run reports, and the measurement summaries shared by every harness.
//!
//! This is the one home for the small summary structs that both the
//! discrete-event simulator ([`RunReport`]) and the networked load driver
//! (`prcc_service::BenchReport`) embed: [`LatencySummary`] for percentile
//! distributions and [`VerdictSummary`] for oracle outcomes. Keeping them
//! here means the two report schemas cannot drift apart.

use prcc_checker::Verdict;
use prcc_core::ClusterStats;
use prcc_telemetry::exact_percentile;
use serde::{Deserialize, Serialize};

/// Latency distribution in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile — where per-op client latencies hide fsync and
    /// pending-stall spikes that p99 averages away.
    pub p999_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a set of per-op latencies (sorted in place).
    ///
    /// Percentiles are [`prcc_telemetry::exact_percentile`] — ceil-based
    /// nearest-rank: `P(q)` is the smallest sample with at least a `q`
    /// fraction of the distribution at or below it. One shared definition
    /// keeps these client-side summaries comparable to the server-side
    /// histogram percentiles reported next to them.
    pub fn from_latencies(latencies: &mut [u64]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_unstable();
        let total: u64 = latencies.iter().sum();
        LatencySummary {
            mean_us: total as f64 / latencies.len() as f64,
            p50_us: exact_percentile(latencies, 0.50),
            p99_us: exact_percentile(latencies, 0.99),
            p999_us: exact_percentile(latencies, 0.999),
            max_us: *latencies.last().expect("non-empty"),
        }
    }
}

/// Outcome of an oracle check, reduced to what reports track.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictSummary {
    /// Whether the run was causally consistent.
    pub consistent: bool,
    /// Number of safety violations observed.
    pub safety_violations: usize,
    /// Number of liveness violations at quiescence.
    pub liveness_violations: usize,
}

impl VerdictSummary {
    /// Reduces a full oracle verdict to its counts.
    pub fn from_verdict(v: &Verdict) -> Self {
        VerdictSummary {
            consistent: v.is_consistent(),
            safety_violations: v.safety.len(),
            liveness_violations: v.liveness.len(),
        }
    }
}

/// Everything an experiment table needs from one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Protocol name.
    pub protocol: String,
    /// Workload seed.
    pub seed: u64,
    /// The oracle outcome.
    pub verdict: VerdictSummary,
    /// Cluster statistics (traffic, latency, metadata).
    pub stats: ClusterStats,
    /// Virtual duration of the run in ticks.
    pub duration_ticks: u64,
}

impl RunReport {
    /// Updates applied per 1000 virtual ticks — the simulator's throughput
    /// proxy.
    pub fn throughput(&self) -> f64 {
        if self.duration_ticks == 0 {
            0.0
        } else {
            self.stats.applies as f64 * 1000.0 / self.duration_ticks as f64
        }
    }

    /// Whether the run was causally consistent.
    pub fn consistent(&self) -> bool {
        self.verdict.consistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let r = RunReport {
            protocol: "x".into(),
            seed: 0,
            verdict: VerdictSummary {
                consistent: true,
                ..VerdictSummary::default()
            },
            stats: ClusterStats {
                applies: 50,
                ..Default::default()
            },
            duration_ticks: 1000,
        };
        assert_eq!(r.throughput(), 50.0);
        assert!(r.consistent());
        let zero = RunReport {
            duration_ticks: 0,
            ..r
        };
        assert_eq!(zero.throughput(), 0.0);
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut latencies: Vec<u64> = (1..=100).collect();
        let summary = LatencySummary::from_latencies(&mut latencies);
        assert_eq!(summary.p50_us, 50);
        assert_eq!(summary.p99_us, 99);
        assert_eq!(summary.p999_us, 100);
        assert_eq!(summary.max_us, 100);
        assert!((summary.mean_us - 50.5).abs() < 1e-9);
        assert_eq!(
            LatencySummary::from_latencies(&mut []),
            LatencySummary::default()
        );
    }

    #[test]
    fn latency_summary_percentiles_non_round_counts() {
        // One sample: every percentile is that sample.
        let one = LatencySummary::from_latencies(&mut [7]);
        assert_eq!(
            (one.p50_us, one.p99_us, one.p999_us, one.max_us),
            (7, 7, 7, 7)
        );

        // Three samples: the truncating rank used to report p99 = 2 (the
        // median!); ceil-based nearest-rank reports the top sample.
        let three = LatencySummary::from_latencies(&mut [1, 2, 3]);
        assert_eq!(three.p50_us, 2);
        assert_eq!(three.p99_us, 3);
        assert_eq!(three.max_us, 3);

        // 101 samples: p50 is the 51st order statistic (ceil(50.5)), p99
        // the 100th (ceil(99.99)), p999 the 101st (ceil(100.899)).
        let mut odd: Vec<u64> = (1..=101).collect();
        let summary = LatencySummary::from_latencies(&mut odd);
        assert_eq!(summary.p50_us, 51);
        assert_eq!(summary.p99_us, 100);
        assert_eq!(summary.p999_us, 101);
        assert_eq!(summary.max_us, 101);
    }

    #[test]
    fn verdict_summary_reduces_counts() {
        let v = Verdict::default();
        let s = VerdictSummary::from_verdict(&v);
        assert!(s.consistent);
        assert_eq!((s.safety_violations, s.liveness_violations), (0, 0));
    }
}
