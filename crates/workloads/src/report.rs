//! Run reports.

use prcc_core::ClusterStats;
use serde::{Deserialize, Serialize};

/// Everything an experiment table needs from one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Protocol name.
    pub protocol: String,
    /// Workload seed.
    pub seed: u64,
    /// Whether the run was causally consistent.
    pub consistent: bool,
    /// Number of safety violations observed.
    pub safety_violations: usize,
    /// Number of liveness violations at quiescence.
    pub liveness_violations: usize,
    /// Cluster statistics (traffic, latency, metadata).
    pub stats: ClusterStats,
    /// Virtual duration of the run in ticks.
    pub duration_ticks: u64,
}

impl RunReport {
    /// Updates applied per 1000 virtual ticks — the simulator's throughput
    /// proxy.
    pub fn throughput(&self) -> f64 {
        if self.duration_ticks == 0 {
            0.0
        } else {
            self.stats.applies as f64 * 1000.0 / self.duration_ticks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let r = RunReport {
            protocol: "x".into(),
            seed: 0,
            consistent: true,
            safety_violations: 0,
            liveness_violations: 0,
            stats: ClusterStats {
                applies: 50,
                ..Default::default()
            },
            duration_ticks: 1000,
        };
        assert_eq!(r.throughput(), 50.0);
        let zero = RunReport {
            duration_ticks: 0,
            ..r
        };
        assert_eq!(zero.throughput(), 0.0);
    }
}
