//! Property tests pitting the bucketed [`Histogram`] against exact
//! sorted-vector percentiles, and merge against single-stream recording.
//!
//! The histogram's contract is relative, not absolute: any reported
//! percentile is the upper bound of the bucket holding the exact
//! nearest-rank sample, so it never under-reports and overshoots by at most
//! 12.5% (exactly 0 for values below 16, and exactly the true max at
//! q = 1.0). These tests state that contract against `exact_percentile` —
//! the same ceil-based nearest-rank rule the client-side latency summaries
//! use — over arbitrary sample sets spanning the full value range.

use prcc_telemetry::{exact_percentile, Histogram};
use proptest::prelude::*;

/// Sample vectors mixing tiny exact values, mid-range latencies, and
/// outliers far into the large-bucket range.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        (0u64..4, any::<u64>()).prop_map(|(kind, raw)| match kind {
            0 => raw % 16,
            1 => 16 + raw % 100_000,
            2 => raw >> 20,
            _ => u64::MAX,
        }),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucketed percentiles bracket the exact ones: never below the true
    /// nearest-rank sample, never more than 12.5% above it, and q = 1.0 is
    /// the exact maximum.
    #[test]
    fn percentiles_bracket_exact_values(samples in arb_samples(), qi in 0usize..7) {
        let q = [0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0][qi];
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_percentile(&sorted, q);
        let bucketed = h.percentile(q);
        prop_assert!(bucketed >= exact, "q={q}: bucketed {bucketed} < exact {exact}");
        // Upper bound: one bucket's width above, and clamped to the max.
        let slack = exact / 8 + 1;
        prop_assert!(
            bucketed <= exact.saturating_add(slack).min(h.max()),
            "q={q}: bucketed {bucketed} > exact {exact} + slack {slack}"
        );
        prop_assert_eq!(h.percentile(1.0), *sorted.last().expect("non-empty"));
        prop_assert_eq!(h.max(), *sorted.last().expect("non-empty"));
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Merging partitions of a stream is indistinguishable from recording
    /// the whole stream, regardless of how the stream is split.
    #[test]
    fn merge_is_exact_for_any_partition(samples in arb_samples(), split_seed in 0u64..1000) {
        let mut whole = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            parts[((split_seed >> (i % 32)) as usize + i) % 3].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &whole);
        // And the merged histogram round-trips the wire codec.
        let mut buf = Vec::new();
        merged.encode(&mut buf);
        let mut at = 0;
        let back = Histogram::decode(&buf, &mut at).expect("decode");
        prop_assert_eq!(at, buf.len());
        prop_assert_eq!(back, whole);
    }
}
