//! The per-node metric registry and its mergeable, wire-encodable snapshot.
//!
//! A [`Registry`] hands out cheap clonable handles — [`Counter`], [`Gauge`],
//! and [`SharedHistogram`] — registered under stable string names. The hot
//! path never touches the registry lock: counters and gauges are a single
//! relaxed atomic op on a pre-fetched handle, and histogram records take one
//! uncontended shard mutex (each thread hashes to its own shard, so the
//! core thread, the peer senders, and the client handlers never collide).
//!
//! [`Registry::snapshot`] freezes everything into a [`MetricsSnapshot`]:
//! plain sorted name/value vectors plus full histograms. Snapshots merge
//! across nodes (sums for counters and gauges, exact bucket-wise merge for
//! histograms — that is what makes cluster-wide p99s honest rather than
//! averages-of-percentiles) and round-trip through the wire codec used by
//! the v6 `Metrics` frame.

use crate::hist::{HistSummary, Histogram};
use parking_lot::Mutex;
use prcc_clock::encoding::{read_varint_at, write_varint};
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Monotonically increasing event count. Clone = another handle to the same
/// underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (queue depth, window occupancy). Unlike counters,
/// gauges are *set*, typically by mirroring authoritative state right before
/// a snapshot is taken.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level to `v` if `v` is higher — the high-water-mark
    /// update, usable concurrently from many threads (a plain
    /// read-compare-`set` would race and lose peaks).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// How many independently locked shards back each [`SharedHistogram`].
/// Threads spread across shards by a per-thread index, so with a handful of
/// recorder threads per node the lock is effectively uncontended.
const HIST_SHARDS: usize = 8;

static NEXT_THREAD_SHARD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SHARD: usize = NEXT_THREAD_SHARD.fetch_add(1, Ordering::Relaxed);
}

/// A histogram recordable from many threads. Records go to the calling
/// thread's shard; [`SharedHistogram::read`] merges the shards.
#[derive(Debug)]
pub struct SharedHistogram {
    shards: Vec<Mutex<Histogram>>,
}

impl Default for SharedHistogram {
    fn default() -> Self {
        SharedHistogram {
            shards: (0..HIST_SHARDS)
                .map(|_| Mutex::named(Histogram::new(), "telemetry.hist_shard"))
                .collect(),
        }
    }
}

impl SharedHistogram {
    /// Records one sample into the calling thread's shard.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = THREAD_SHARD.with(|s| *s) % self.shards.len();
        self.shards[shard].lock().record(v);
    }

    /// Merges all shards into one [`Histogram`].
    pub fn read(&self) -> Histogram {
        let mut out = Histogram::new();
        for shard in &self.shards {
            out.merge(&shard.lock());
        }
        out
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Arc<SharedHistogram>>,
}

/// A node's metric namespace. Registration (name lookup) takes a mutex and
/// is meant for startup; the returned handles are what the hot path keeps.
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            inner: Mutex::named(Inner::default(), "telemetry.registry"),
        }
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Handles are cheap to clone and lock-free to update.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    pub fn histogram(&self, name: &str) -> Arc<SharedHistogram> {
        let mut inner = self.inner.lock();
        inner.hists.entry(name.to_string()).or_default().clone()
    }

    /// Freezes every metric into a plain, mergeable, encodable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(n, h)| (n.clone(), h.read()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a registry: sorted `(name, value)` vectors plus
/// full histograms. This is the payload of the wire-v6 `Metrics` response
/// and the unit of cross-node aggregation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, ascending by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, ascending by name.
    pub hists: Vec<(String, Histogram)>,
}

/// Merges two ascending-by-name vectors with `fold` combining same-name
/// values.
fn merge_sorted<T: Clone>(
    mine: &mut Vec<(String, T)>,
    theirs: &[(String, T)],
    fold: impl Fn(&mut T, &T),
) {
    let mut out: Vec<(String, T)> = Vec::with_capacity(mine.len() + theirs.len());
    let (mut i, mut j) = (0, 0);
    while i < mine.len() || j < theirs.len() {
        let pick_mine = j >= theirs.len() || (i < mine.len() && mine[i].0 <= theirs[j].0);
        if pick_mine {
            let mut entry = mine[i].clone();
            if j < theirs.len() && theirs[j].0 == entry.0 {
                fold(&mut entry.1, &theirs[j].1);
                j += 1;
            }
            out.push(entry);
            i += 1;
        } else {
            out.push(theirs[j].clone());
            j += 1;
        }
    }
    *mine = out;
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and gauges sum, histograms merge
    /// bucket-wise. Metrics present on only one side pass through. Gauges
    /// sum because every exported gauge is a cluster-additive level (queue
    /// depths, window occupancy, byte totals).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_sorted(&mut self.counters, &other.counters, |a, b| *a += *b);
        merge_sorted(&mut self.gauges, &other.gauges, |a, b| *a += *b);
        merge_sorted(&mut self.hists, &other.hists, |a: &mut Histogram, b| {
            a.merge(b)
        });
    }

    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        lookup(&self.gauges, name).copied()
    }

    /// The histogram named `name`, if present.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        lookup(&self.hists, name)
    }

    /// Summary of the histogram named `name`, if present.
    pub fn hist_summary(&self, name: &str) -> Option<HistSummary> {
        self.hist(name).map(Histogram::summary)
    }

    /// Appends the wire encoding: three sections, each a varint length
    /// followed by (name, payload) entries. Strings are varint-length-
    /// prefixed UTF-8.
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.counters.len() as u64);
        for (name, v) in &self.counters {
            encode_str(out, name);
            write_varint(out, *v);
        }
        write_varint(out, self.gauges.len() as u64);
        for (name, v) in &self.gauges {
            encode_str(out, name);
            write_varint(out, *v);
        }
        write_varint(out, self.hists.len() as u64);
        for (name, h) in &self.hists {
            encode_str(out, name);
            h.encode(out);
        }
    }

    /// Decodes a snapshot produced by [`MetricsSnapshot::encode`],
    /// advancing `at`.
    pub fn decode(buf: &[u8], at: &mut usize) -> io::Result<Self> {
        let mut snap = MetricsSnapshot::default();
        let n = read_varint_at(buf, at)?;
        for _ in 0..n {
            let name = decode_str(buf, at)?;
            let v = read_varint_at(buf, at)?;
            snap.counters.push((name, v));
        }
        let n = read_varint_at(buf, at)?;
        for _ in 0..n {
            let name = decode_str(buf, at)?;
            let v = read_varint_at(buf, at)?;
            snap.gauges.push((name, v));
        }
        let n = read_varint_at(buf, at)?;
        for _ in 0..n {
            let name = decode_str(buf, at)?;
            let h = Histogram::decode(buf, at)?;
            snap.hists.push((name, h));
        }
        Ok(snap)
    }

    /// Renders the human-readable text exposition: one line per metric,
    /// histograms as their percentile summaries. Stable ordering (sorted by
    /// name within each section) so diffs between scrapes are meaningful.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &self.hists {
            let s = h.summary();
            let _ = writeln!(
                out,
                "hist {name} count={} mean={:.1} p50={} p90={} p99={} p999={} max={}",
                s.count, s.mean_us, s.p50_us, s.p90_us, s.p99_us, s.p999_us, s.max_us
            );
        }
        out
    }
}

fn lookup<'a, T>(entries: &'a [(String, T)], name: &str) -> Option<&'a T> {
    entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn decode_str(buf: &[u8], at: &mut usize) -> io::Result<String> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let len = read_varint_at(buf, at)? as usize;
    if len > 4096 {
        return Err(bad("metric name longer than 4096 bytes"));
    }
    let end = at
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| bad("metric name runs past the buffer"))?;
    let s = std::str::from_utf8(&buf[*at..end])
        .map_err(|_| bad("metric name is not UTF-8"))?
        .to_string();
    *at = end;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshot_sees_them() {
        let r = Registry::new();
        let c = r.counter("ops");
        let c2 = r.counter("ops");
        c.add(3);
        c2.inc();
        r.gauge("depth").set(9);
        r.histogram("lat_us").record(120);
        r.histogram("lat_us").record(8_000);

        let snap = r.snapshot();
        assert_eq!(snap.counter("ops"), Some(4));
        assert_eq!(snap.gauge("depth"), Some(9));
        let h = snap.hist("lat_us").expect("hist registered");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 8_000);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn shared_histogram_merges_across_threads() {
        let r = Registry::new();
        let h = r.histogram("x");
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = Arc::clone(&h);
            joins.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    h.record(t * 1000 + i);
                }
            }));
        }
        for j in joins {
            j.join().expect("recorder thread");
        }
        assert_eq!(h.read().count(), 400);
    }

    #[test]
    fn merge_sums_and_unions() {
        let mut a = MetricsSnapshot {
            counters: vec![("a".into(), 1), ("c".into(), 10)],
            gauges: vec![("g".into(), 5)],
            hists: vec![("h".into(), {
                let mut h = Histogram::new();
                h.record(100);
                h
            })],
        };
        let b = MetricsSnapshot {
            counters: vec![("b".into(), 7), ("c".into(), 1)],
            gauges: vec![("g".into(), 2)],
            hists: vec![
                ("h".into(), {
                    let mut h = Histogram::new();
                    h.record(300);
                    h
                }),
                ("other".into(), Histogram::new()),
            ],
        };
        a.merge(&b);
        assert_eq!(
            a.counters,
            vec![("a".into(), 1), ("b".into(), 7), ("c".into(), 11)]
        );
        assert_eq!(a.gauges, vec![("g".into(), 7)]);
        assert_eq!(a.hists.len(), 2);
        assert_eq!(a.hist("h").expect("merged").count(), 2);
        assert_eq!(a.hist("h").expect("merged").max(), 300);
        // Names stay sorted after a union merge.
        let names: Vec<&str> = a.hists.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["h", "other"]);
    }

    #[test]
    fn snapshot_wire_round_trip() {
        let r = Registry::new();
        r.counter("net_bytes_out").add(12345);
        r.gauge("pending").set(3);
        let h = r.histogram("visibility_us");
        for v in [10u64, 20, 30_000] {
            h.record(v);
        }
        let snap = r.snapshot();
        let mut buf = Vec::new();
        snap.encode(&mut buf);
        let mut at = 0;
        let back = MetricsSnapshot::decode(&buf, &mut at).expect("decode");
        assert_eq!(at, buf.len());
        assert_eq!(back, snap);

        // Every truncation errors instead of panicking or half-parsing.
        for cut in 0..buf.len() {
            let mut at = 0;
            assert!(MetricsSnapshot::decode(&buf[..cut], &mut at).is_err());
        }
    }

    #[test]
    fn render_text_lists_every_metric() {
        let r = Registry::new();
        r.counter("ops").add(2);
        r.gauge("depth").set(1);
        r.histogram("lat_us").record(50);
        let text = r.snapshot().render_text();
        assert!(text.contains("counter ops 2"));
        assert!(text.contains("gauge depth 1"));
        assert!(text.contains("hist lat_us count=1"));
        assert!(text.contains("p999="));
    }
}
