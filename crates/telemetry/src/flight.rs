//! The crash flight recorder: a fixed-size ring of recent structured
//! events, dumped to disk when a node fail-stops or is crash-injected.
//!
//! Fault-injection failures are miserable to debug from a bare WAL: the log
//! says *what* was durable, not what the node was doing in its last
//! milliseconds. The recorder keeps the last N events (writes, WAL appends,
//! received frames, seals, snapshots, peer lifecycle) in memory at
//! essentially zero cost — it is owned by the core thread, so recording is
//! an unsynchronized ring push — and renders them as one readable line per
//! event on the way down.
//!
//! Events carry a static event code plus `(key, value)` integer fields;
//! there is deliberately no formatting or allocation of strings on the
//! record path.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::Path;

/// One recorded event: a wall-clock micros timestamp, a static code, and
/// up to a handful of integer fields.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Microseconds since `UNIX_EPOCH` when the event was recorded.
    pub at_us: u64,
    /// Static event code (e.g. `"wal_append"`).
    pub what: &'static str,
    /// Named integer payload fields.
    pub fields: Vec<(&'static str, u64)>,
}

/// Bounded ring of [`FlightEvent`]s. `cap = 0` disables recording.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<FlightEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` events.
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap,
            ring: VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, what: &'static str, fields: &[(&'static str, u64)]) {
        if self.cap == 0 {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightEvent {
            at_us: crate::wall_us(),
            what,
            fields: fields.to_vec(),
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Renders the dump format: a header line, then one line per event —
    /// `@<micros-since-epoch> <code> key=value ...`, oldest first.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} events retained, {} older events dropped",
            self.ring.len(),
            self.dropped
        );
        for ev in &self.ring {
            let _ = write!(out, "@{} {}", ev.at_us, ev.what);
            for (k, v) in &ev.fields {
                let _ = write!(out, " {k}={v}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the rendered dump to `path`, replacing any previous dump.
    pub fn dump_to(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render().as_bytes())?;
        f.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_newest() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record("tick", &[("i", i)]);
        }
        let kept: Vec<u64> = fr.events().map(|e| e.fields[0].1).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        let text = fr.render();
        assert!(text.starts_with("flight recorder: 3 events retained, 2 older"));
        assert!(text.contains(" tick i=4\n"));
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut fr = FlightRecorder::new(0);
        fr.record("tick", &[]);
        assert_eq!(fr.events().count(), 0);
    }

    #[test]
    fn dump_writes_the_rendered_text() {
        let mut fr = FlightRecorder::new(8);
        fr.record("crash", &[("node", 2)]);
        let path =
            std::env::temp_dir().join(format!("prcc-flight-test-{}.log", std::process::id()));
        fr.dump_to(&path).expect("dump");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("crash node=2"));
        std::fs::remove_file(&path).ok();
    }
}
