//! Deterministic 1-in-N sampling for lifecycle tracing.
//!
//! Lifecycle stamps cost a clock read per stage, so the hot path gates them
//! behind a [`Sampler`]: the *origin* node decides once per issued update
//! whether it is traced, and every downstream stage keys off the presence of
//! the stamp (a zero issue-stamp means "not sampled"). Systematic 1-in-N
//! sampling — rather than random — keeps the overhead exactly bounded and
//! the sample count predictable for a given op count.

use std::sync::atomic::{AtomicU64, Ordering};

/// Picks every `N`th event. `every = 0` disables sampling entirely,
/// `every = 1` samples everything.
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    n: AtomicU64,
}

impl Sampler {
    /// A sampler selecting one event in `every`.
    pub fn new(every: u64) -> Self {
        Sampler {
            every,
            n: AtomicU64::new(0),
        }
    }

    /// The configured period (0 = off).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Whether this event is selected. Counts events even when they miss,
    /// so the selection rate is exactly `1/every`.
    #[inline]
    pub fn hit(&self) -> bool {
        match self.every {
            0 => false,
            1 => true,
            n => self.n.fetch_add(1, Ordering::Relaxed).is_multiple_of(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_rates() {
        let off = Sampler::new(0);
        assert!((0..100).all(|_| !off.hit()));

        let all = Sampler::new(1);
        assert!((0..100).all(|_| all.hit()));

        let fourth = Sampler::new(4);
        let hits = (0..100).filter(|_| fourth.hit()).count();
        assert_eq!(hits, 25);
        // First event of a period is the sampled one.
        let s = Sampler::new(3);
        let pattern: Vec<bool> = (0..6).map(|_| s.hit()).collect();
        assert_eq!(pattern, vec![true, false, false, true, false, false]);
    }
}
