//! Observability primitives for the PRCC stack: metric registry, latency
//! histograms, lifecycle sampling, and the crash flight recorder.
//!
//! The paper (Xiang & Vaidya, PODC 2019) is a *cost* argument — bounded
//! timestamp metadata against remote-visibility latency — so the
//! implementation has to be able to show where an update spends its life:
//! in the origin's WAL append, on the wire, stalled in a recipient's
//! pending queue behind a causal dependency (the protocol's
//! false-dependency cost), or applied. This crate provides the pieces every
//! layer shares:
//!
//! - [`Registry`] / [`MetricsSnapshot`]: named counters, gauges, and
//!   sharded histograms with a mergeable, wire-encodable snapshot — the
//!   payload of the service's v6 `Metrics` frame.
//! - [`Histogram`] / [`HistSummary`]: fixed-size log-bucketed latency
//!   distributions (p50/p90/p99/p999/max within 12.5% relative error,
//!   exact max) that merge exactly across threads and nodes.
//! - [`Sampler`]: the 1-in-N knob that bounds tracing's hot-path cost to
//!   at most one clock read per lifecycle stage.
//! - [`FlightRecorder`]: a per-node ring of recent structured events,
//!   dumped to the data dir on fail-stop or injected crash.
//! - [`exact_percentile`]: the one shared definition of ceil-based
//!   nearest-rank percentiles, used by client-side summaries and by the
//!   histogram property tests.
//!
//! A deliberate non-goal: nothing in this crate ever feeds back into
//! protocol or durable state. Lifecycle stamps ride the live wire only —
//! WAL records and snapshots never contain wall-clock bytes, which is what
//! keeps seeded recovery runs byte-identical.

#![forbid(unsafe_code)]

mod flight;
mod hist;
mod registry;
mod sampler;

pub use flight::{FlightEvent, FlightRecorder};
pub use hist::{exact_percentile, HistSummary, Histogram, NUM_BUCKETS};
pub use registry::{Counter, Gauge, MetricsSnapshot, Registry, SharedHistogram};
pub use sampler::Sampler;

/// Microseconds since `UNIX_EPOCH` — the one wall-clock read the telemetry
/// path uses. Micros (not nanos) keep stamps small on the wire; epoch base
/// (not process start) lets multi-process same-host deployments subtract
/// stamps taken by different nodes.
pub fn wall_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_us_is_sane_and_monotonic_enough() {
        let a = super::wall_us();
        let b = super::wall_us();
        // After 2020-01-01 in micros, and not going backwards.
        assert!(a > 1_577_836_800_000_000);
        assert!(b >= a);
    }
}
