//! Log-bucketed latency histograms and exact percentile helpers.
//!
//! [`Histogram`] is the accumulation type behind every per-stage latency
//! metric: fixed memory (496 buckets, ~4 KiB), O(1) record, mergeable across
//! shards and across nodes, and encodable on the wire as a sparse varint
//! list. Buckets are log-linear with 3 mantissa bits — 8 sub-buckets per
//! octave — so any reported percentile is within 12.5% of the true value,
//! and values below 8 are exact. That resolution is deliberate: the
//! quantities measured (microsecond latencies) span six orders of magnitude,
//! and a relative-error bound is the right contract for p99/p999 tails.
//!
//! [`exact_percentile`] is the other half: the ceil-based nearest-rank rule
//! over an exact sorted sample vector. It exists here so the client-side
//! latency summaries (`prcc-workloads`) and the histogram property tests
//! agree on one definition of "percentile" instead of drifting apart.

use prcc_clock::encoding::{read_varint_at, write_varint};
use std::io;

/// Mantissa bits per octave: 2^3 = 8 sub-buckets, relative error <= 1/8.
const MANTISSA_BITS: u32 = 3;
/// Bucket count: values 0..16 map 1:1, then 8 buckets per octave up to
/// `u64::MAX` (exponents 4..=63), for (63 - 2) * 8 = 488 + 8 = 496 total.
pub const NUM_BUCKETS: usize = 496;

/// Maps a value to its bucket index. Total order preserving: if `a <= b`
/// then `index(a) <= index(b)`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // >= 4
        let sub = (v >> (e - MANTISSA_BITS)) & 7;
        ((e - 2) * 8 + sub as u32) as usize
    }
}

/// Largest value that lands in bucket `idx` — what percentiles report.
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else {
        let e = (idx / 8) as u32 + 2;
        let sub = (idx % 8) as u64;
        // Bucket covers [(8+sub) << (e-3), ((8+sub+1) << (e-3)) - 1].
        ((8 + sub + 1) << (e - MANTISSA_BITS)).wrapping_sub(1)
    }
}

/// Fixed-size log-linear histogram of `u64` samples (microseconds, by
/// convention). Merge is exact: merging two histograms is indistinguishable
/// from recording both sample streams into one.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, exact (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`. Exact: bucket-wise sums plus max-of-max.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Ceil-based nearest-rank percentile, reported as the upper bound of
    /// the bucket holding that rank (clamped to the exact tracked max, so
    /// `percentile(1.0) == max()` exactly). Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Reduces to the fixed percentile set every report uses.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            mean_us: self.mean(),
            p50_us: self.percentile(0.50),
            p90_us: self.percentile(0.90),
            p99_us: self.percentile(0.99),
            p999_us: self.percentile(0.999),
            max_us: self.max,
        }
    }

    /// Appends the sparse wire encoding: count, sum, max, then the number
    /// of occupied buckets followed by (index, count) varint pairs.
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.count);
        write_varint(out, self.sum);
        write_varint(out, self.max);
        let occupied = self.counts.iter().filter(|&&c| c != 0).count() as u64;
        write_varint(out, occupied);
        for (idx, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                write_varint(out, idx as u64);
                write_varint(out, c);
            }
        }
    }

    /// Decodes a histogram produced by [`Histogram::encode`], advancing
    /// `at`. Rejects out-of-range bucket indices and count mismatches.
    pub fn decode(buf: &[u8], at: &mut usize) -> io::Result<Self> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut h = Histogram::new();
        h.count = read_varint_at(buf, at)?;
        h.sum = read_varint_at(buf, at)?;
        h.max = read_varint_at(buf, at)?;
        let occupied = read_varint_at(buf, at)?;
        if occupied > NUM_BUCKETS as u64 {
            return Err(bad("histogram: occupied bucket count out of range"));
        }
        let mut total = 0u64;
        for _ in 0..occupied {
            let idx = read_varint_at(buf, at)?;
            if idx >= NUM_BUCKETS as u64 {
                return Err(bad("histogram: bucket index out of range"));
            }
            let c = read_varint_at(buf, at)?;
            let slot = &mut h.counts[idx as usize];
            if *slot != 0 {
                return Err(bad("histogram: duplicate bucket index"));
            }
            *slot = c;
            total = total
                .checked_add(c)
                .ok_or_else(|| bad("histogram: bucket counts overflow"))?;
        }
        if total != h.count {
            return Err(bad("histogram: bucket counts disagree with total"));
        }
        Ok(h)
    }
}

/// One histogram reduced to the percentile set reports carry. The `_us`
/// suffix reflects the workspace convention that latencies are recorded in
/// microseconds; the math itself is unit-agnostic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    /// Number of samples behind the summary.
    pub count: u64,
    /// Mean sample.
    pub mean_us: f64,
    /// Median (bucket upper bound, <= 12.5% relative error).
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Worst observed sample, exact.
    pub max_us: u64,
}

/// Ceil-based nearest-rank percentile over an ascending-sorted slice:
/// the smallest sample with at least a `q` fraction of the distribution at
/// or below it. Returns 0 on an empty slice. This is the *exact* rule the
/// bucketed [`Histogram::percentile`] approximates; client-side latency
/// summaries use it directly on their raw sample vectors.
pub fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as f64 * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 0u64;
        // Walk a geometric-ish sweep of the whole u64 range.
        loop {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= last, "v={v} idx={idx} < last={last}");
            assert!(bucket_upper(idx) >= v, "v={v} upper={}", bucket_upper(idx));
            last = idx;
            if v > u64::MAX / 2 {
                break;
            }
            v = if v < 4 { v + 1 } else { v * 2 - v / 3 };
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        for v in 0..16u64 {
            let q = (v + 1) as f64 / 16.0;
            assert_eq!(h.percentile(q), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17u64, 100, 999, 12_345, 1 << 33, u64::MAX / 3] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            // Reported value overshoots by at most 12.5%.
            assert!((upper - v) as f64 <= v as f64 / 8.0, "v={v} upper={upper}");
        }
    }

    #[test]
    fn percentile_of_extremes_is_exact_max() {
        let mut h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.percentile(1.0), 1_000_003);
        assert_eq!(h.percentile(0.5), 1_000_003);
        assert_eq!(h.max(), 1_000_003);
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let (mut a, mut b, mut both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 77, 3000, 3000, 812_999] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 55_000, 9] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn wire_round_trip_preserves_everything() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 15, 16, 999, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let mut at = 0;
        let back = Histogram::decode(&buf, &mut at).expect("decode");
        assert_eq!(at, buf.len());
        assert_eq!(back, h);
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut h = Histogram::new();
        h.record(42);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        // Truncations at every prefix either error or consume less input.
        for cut in 0..buf.len() {
            let mut at = 0;
            assert!(
                Histogram::decode(&buf[..cut], &mut at).is_err(),
                "cut={cut}"
            );
        }
        // A bucket index beyond the table is refused.
        let mut bogus = Vec::new();
        write_varint(&mut bogus, 1); // count
        write_varint(&mut bogus, 1); // sum
        write_varint(&mut bogus, 1); // max
        write_varint(&mut bogus, 1); // occupied
        write_varint(&mut bogus, NUM_BUCKETS as u64); // out of range
        write_varint(&mut bogus, 1);
        let mut at = 0;
        assert!(Histogram::decode(&bogus, &mut at).is_err());
    }

    #[test]
    fn exact_percentile_matches_latency_summary_rule() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_percentile(&v, 0.50), 50);
        assert_eq!(exact_percentile(&v, 0.99), 99);
        assert_eq!(exact_percentile(&v, 0.999), 100);
        assert_eq!(exact_percentile(&v, 1.0), 100);
        assert_eq!(exact_percentile(&[7], 0.5), 7);
        assert_eq!(exact_percentile(&[], 0.5), 0);
        let odd: Vec<u64> = (1..=101).collect();
        assert_eq!(exact_percentile(&odd, 0.50), 51);
        assert_eq!(exact_percentile(&odd, 0.99), 100);
        assert_eq!(exact_percentile(&odd, 0.999), 101);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.summary(), HistSummary::default());
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let mut at = 0;
        assert_eq!(Histogram::decode(&buf, &mut at).expect("decode"), h);
    }
}
