//! The write-ahead log file: length-prefixed, CRC-checksummed records.
//!
//! On-disk layout:
//!
//! ```text
//! "PRCCWAL1"                                  8-byte file magic
//! [u32 len][u32 crc32(payload)][payload] ...  records, back to back
//! ```
//!
//! Both fixed-width fields are little-endian. The log distinguishes two
//! failure shapes on open:
//!
//! * **Torn tail** — the file ends inside a record (mid length prefix,
//!   mid checksum, or with fewer than `len` payload bytes): the crash
//!   interrupted an append. Recovery keeps the longest valid prefix and
//!   truncates the tail, because every complete earlier record was
//!   acknowledged only after its own append returned.
//! * **Corruption** — a record is *complete* but its checksum does not
//!   match, or its length field is absurd: the file was damaged after the
//!   fact. That is not recoverable by truncation (later records may be
//!   fine — silently dropping them would un-acknowledge durable state), so
//!   open fails with a descriptive [`std::io::ErrorKind::InvalidData`]
//!   error naming the offset.
//!
//! Appends `write(2)` the whole record and flush before returning, so a
//! process crash after an acknowledged append never loses the record (the
//! page cache holds it). [`Wal::append_batch`] frames N records into one
//! reused buffer and writes them with a single syscall — byte-identical on
//! disk to N single appends — counting one group-commit tick for the whole
//! batch. Power-loss durability is an opt-in knob:
//! [`Wal::set_fsync_every`] enables group commit — every Nth append (or
//! batch) also `fdatasync`s the file, bounding the post-power-loss loss
//! window (recovery handles lost unsynced records as an ordinary torn
//! tail). [`Wal::sync`] skips the syscall when nothing was written since
//! the last sync, so acks right behind a group-commit tick are free.

use crate::crc32::crc32;
use prcc_telemetry::SharedHistogram;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The 8-byte magic opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"PRCCWAL1";

/// Upper bound on one record's payload (64 MiB): a complete record
/// claiming more is reported as corruption, not allocated.
pub const MAX_WAL_RECORD: usize = 64 << 20;

/// What [`Wal::open`] found in an existing file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecovery {
    /// The payloads of every valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail discarded (0 for a cleanly closed log).
    pub torn_bytes: u64,
}

/// Outcome of scanning an in-memory WAL image ([`scan_wal`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// The payloads of every complete, checksum-valid record.
    pub records: Vec<Vec<u8>>,
    /// Length of the valid prefix in bytes (magic included); anything
    /// beyond it is a torn tail.
    pub valid_len: usize,
}

/// Outcome of a zero-copy scan ([`scan_wal_spans`]): record payloads as
/// byte spans into the scanned image instead of owned copies, so replay
/// can decode straight out of one (pooled) buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScanSpans {
    /// `(start, end)` byte ranges of every complete, checksum-valid
    /// record payload, in append order.
    pub spans: Vec<(usize, usize)>,
    /// Length of the valid prefix in bytes (magic included); anything
    /// beyond it is a torn tail.
    pub valid_len: usize,
}

fn corrupt(offset: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("WAL corrupted at byte {offset}: {what}"),
    )
}

/// Scans a WAL image, returning every complete checksum-valid record and
/// the byte length of that valid prefix. A file ending mid-record (torn
/// tail, including a partial magic on a file shorter than 8 bytes) is
/// normal crash damage and simply ends the scan; a *complete* record whose
/// checksum mismatches — or whose length field is absurd while enough
/// bytes follow — is corruption and errors.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for a wrong magic or a corrupted record,
/// with the offending byte offset in the message.
pub fn scan_wal(bytes: &[u8]) -> io::Result<WalScan> {
    let scan = scan_wal_spans(bytes)?;
    Ok(WalScan {
        records: scan
            .spans
            .iter()
            .map(|&(start, end)| bytes[start..end].to_vec())
            .collect(),
        valid_len: scan.valid_len,
    })
}

/// The zero-copy core of [`scan_wal`]: identical validation, but returns
/// payload *byte spans* into `bytes` instead of owned copies.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for a wrong magic or a corrupted record,
/// with the offending byte offset in the message.
pub fn scan_wal_spans(bytes: &[u8]) -> io::Result<WalScanSpans> {
    if bytes.len() < WAL_MAGIC.len() {
        // Torn before the header finished: an empty log.
        return Ok(WalScanSpans {
            spans: Vec::new(),
            valid_len: 0,
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(corrupt(0, "bad file magic (not a prcc WAL)"));
    }
    let mut spans = Vec::new();
    let mut at = WAL_MAGIC.len();
    loop {
        let rest = &bytes[at..];
        if rest.len() < 8 {
            break; // torn inside the length/checksum header
        }
        // lint: allow(unwrap) infallible: 4-byte slices into 4-byte arrays
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        // lint: allow(unwrap) infallible: 4-byte slices into 4-byte arrays
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_WAL_RECORD {
            // Checked BEFORE the incomplete-record test: a corrupted
            // length field usually claims an absurd size, and classifying
            // it as a torn tail would silently truncate every valid
            // record behind it. (A corrupted-but-plausible length either
            // lands inside the file — caught by the checksum below — or
            // swallows the tail, which is indistinguishable from a torn
            // final append and recovers as one.)
            return Err(corrupt(at, "record length exceeds MAX_WAL_RECORD"));
        }
        if rest.len() - 8 < len {
            // Fewer payload bytes than claimed: a crash mid-append.
            break;
        }
        let payload = &rest[8..8 + len];
        let actual = crc32(payload);
        if actual != crc {
            return Err(corrupt(
                at,
                &format!("record checksum mismatch (stored {crc:#010x}, computed {actual:#010x})"),
            ));
        }
        spans.push((at + 8, at + 8 + len));
        at += 8 + len;
    }
    Ok(WalScanSpans {
        spans,
        valid_len: at,
    })
}

/// An open write-ahead log, positioned for appends.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Current on-disk size in bytes (magic included) — the
    /// memory-boundedness metric surfaced in `NodeStatus::wal_bytes`.
    bytes: u64,
    /// Group commit: fdatasync every Nth append (0 = never sync).
    fsync_every: u64,
    appends_since_sync: u64,
    /// Whether any bytes were written (or truncated) since the last
    /// `fdatasync` — [`Wal::sync`] skips the syscall when clean, so an
    /// ack arriving right after a group-commit tick costs nothing extra.
    dirty: bool,
    /// Reused frame-assembly buffer: every append batch is framed here
    /// and written with one `write(2)`, so steady state allocates nothing.
    scratch: Vec<u8>,
    /// Optional telemetry: duration of each `fdatasync`, in micros. Syncs
    /// are rare (group commit) and slow (device flush), so unlike the
    /// per-record append path this is timed unconditionally when wired.
    fsync_hist: Option<Arc<SharedHistogram>>,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, validates every
    /// record, truncates any torn tail, and returns the surviving record
    /// payloads alongside the append handle.
    ///
    /// # Errors
    ///
    /// I/O errors, a wrong magic, or a checksum-corrupted record (see the
    /// module docs for the torn-vs-corrupt distinction).
    pub fn open(path: &Path) -> io::Result<(Wal, WalRecovery)> {
        let mut image = Vec::new();
        let (wal, scan) = Self::open_with_image(path, &mut image)?;
        let torn_bytes = (image.len() - scan.valid_len) as u64;
        Ok((
            wal,
            WalRecovery {
                records: scan
                    .spans
                    .iter()
                    .map(|&(start, end)| image[start..end].to_vec())
                    .collect(),
                torn_bytes,
            },
        ))
    }

    /// The zero-copy variant of [`Wal::open`]: reads the file into the
    /// caller-provided `image` buffer (typically leased from a pool) and
    /// returns record payload *spans* into it, so replay decodes each
    /// record in place instead of copying it into an owned `Vec` first.
    /// `image.len() - valid_len` is the torn tail discarded on disk.
    ///
    /// # Errors
    ///
    /// Same as [`Wal::open`].
    pub fn open_with_image(path: &Path, image: &mut Vec<u8>) -> io::Result<(Wal, WalScanSpans)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        image.clear();
        file.read_to_end(image)?;
        let scan = scan_wal_spans(image)?;
        let torn_bytes = (image.len() - scan.valid_len) as u64;
        let size;
        if scan.valid_len == 0 {
            // Fresh (or torn-before-header) file: start over with a magic.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.flush()?;
            size = WAL_MAGIC.len() as u64;
        } else if torn_bytes > 0 {
            file.set_len(scan.valid_len as u64)?;
            file.seek(SeekFrom::End(0))?;
            size = scan.valid_len as u64;
        } else {
            file.seek(SeekFrom::End(0))?;
            size = image.len() as u64;
        }
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                bytes: size,
                fsync_every: 0,
                appends_since_sync: 0,
                dirty: true,
                scratch: Vec::new(),
                fsync_hist: None,
            },
            scan,
        ))
    }

    /// Enables group commit: every `n`th append also `fdatasync`s the log,
    /// so at most `n - 1` *unacknowledged* records can be lost to a power
    /// failure (lost records surface as an ordinary torn tail on the next
    /// open; anything externally acknowledged must be synced first — see
    /// [`Wal::sync`]). `0` (the default) never syncs — a process crash
    /// still loses nothing, the page cache holds flushed appends.
    pub fn set_fsync_every(&mut self, n: u64) {
        self.fsync_every = n;
        self.appends_since_sync = 0;
    }

    /// Wires a histogram that will receive the duration, in microseconds,
    /// of every subsequent `fdatasync` this log performs (group commits,
    /// explicit [`Wal::sync`] calls, and truncation syncs alike).
    pub fn set_fsync_hist(&mut self, hist: Arc<SharedHistogram>) {
        self.fsync_hist = Some(hist);
    }

    /// `sync_data` with optional duration telemetry.
    fn timed_sync(&mut self) -> io::Result<()> {
        match &self.fsync_hist {
            None => self.file.sync_data()?,
            Some(hist) => {
                let t0 = prcc_telemetry::wall_us();
                self.file.sync_data()?;
                hist.record(prcc_telemetry::wall_us().saturating_sub(t0));
            }
        }
        self.dirty = false;
        Ok(())
    }

    /// Forces an `fdatasync` now and restarts the group-commit countdown.
    /// Call before externally *acknowledging* appended records (a peer
    /// prunes its resend window on an ack, so an ack covering unsynced
    /// records would turn a power cut into permanent update loss). When
    /// nothing was appended or truncated since the last sync — e.g. the
    /// group-commit tick of the very batch being acknowledged already
    /// synced it — the syscall is skipped: the promise already holds.
    ///
    /// # Errors
    ///
    /// I/O errors from the sync.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.timed_sync()?;
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Current log size in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends one record and flushes it to the OS. Returns the bytes the
    /// record occupies on disk (header included).
    ///
    /// # Errors
    ///
    /// I/O errors; a payload larger than [`MAX_WAL_RECORD`] is refused.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<usize> {
        self.append_batch(&[payload])
    }

    /// Appends `payloads` as consecutive records with one `write(2)`, one
    /// flush, and a *single* group-commit tick for the whole batch — the
    /// per-sweep group-commit entry point. The bytes on disk are identical
    /// to appending each payload individually, so recovery cannot tell
    /// (and need not care) how records were grouped: a crash mid-batch
    /// tears inside some record and truncates back to the last complete
    /// one, exactly as with single appends. Returns the total bytes the
    /// batch occupies on disk (headers included); an empty batch is a
    /// no-op returning 0.
    ///
    /// # Errors
    ///
    /// I/O errors; any payload larger than [`MAX_WAL_RECORD`] is refused
    /// before anything is written.
    pub fn append_batch(&mut self, payloads: &[&[u8]]) -> io::Result<usize> {
        if payloads.is_empty() {
            return Ok(0);
        }
        for payload in payloads {
            if payload.len() > MAX_WAL_RECORD {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "WAL record exceeds MAX_WAL_RECORD",
                ));
            }
        }
        let mut framed = std::mem::take(&mut self.scratch);
        framed.clear();
        for payload in payloads {
            framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            framed.extend_from_slice(&crc32(payload).to_le_bytes());
            framed.extend_from_slice(payload);
        }
        let wrote = self
            .file
            .write_all(&framed)
            .and_then(|()| self.file.flush());
        let written = framed.len();
        self.scratch = framed;
        wrote?;
        self.bytes += written as u64;
        self.dirty = true;
        if self.fsync_every > 0 {
            self.appends_since_sync += 1;
            if self.appends_since_sync >= self.fsync_every {
                self.appends_since_sync = 0;
                self.timed_sync()?;
            }
        }
        Ok(written)
    }

    /// Drops every record (after a snapshot has captured their effects):
    /// the file is truncated back to just the magic. With group commit
    /// enabled the truncation is itself fsynced — a power cut must not
    /// resurrect pre-snapshot records behind a snapshot that superseded
    /// them (recovery would refuse the index overlap's inverse: a log
    /// whose records the snapshot already folded is skipped harmlessly,
    /// but an *unsynced* truncation paired with a synced snapshot leaves
    /// ordering to the disk).
    ///
    /// # Errors
    ///
    /// I/O errors from the truncate/seek/sync.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::End(0))?;
        self.bytes = WAL_MAGIC.len() as u64;
        self.dirty = true;
        if self.fsync_every > 0 {
            self.timed_sync()?;
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prcc-wal-unit-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("wal.bin")
    }

    #[test]
    fn append_reopen_round_trip() {
        let path = temp_path("round-trip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, rec) = Wal::open(&path).expect("open fresh");
            assert!(rec.records.is_empty());
            wal.append(b"alpha").expect("append");
            wal.append(b"").expect("empty record is legal");
            wal.append(&[7u8; 300]).expect("append");
        }
        let (_, rec) = Wal::open(&path).expect("reopen");
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[0], b"alpha");
        assert_eq!(rec.records[1], b"");
        assert_eq!(rec.records[2], vec![7u8; 300]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_hist_sees_every_sync() {
        let path = temp_path("fsync-hist");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).expect("open fresh");
        let hist = Arc::new(SharedHistogram::default());
        wal.set_fsync_hist(Arc::clone(&hist));
        wal.set_fsync_every(2);
        wal.append(b"a").expect("append"); // no sync yet
        assert_eq!(hist.read().count(), 0);
        wal.append(b"b").expect("append"); // group commit syncs
        assert_eq!(hist.read().count(), 1);
        wal.sync().expect("redundant sync");
        assert_eq!(
            hist.read().count(),
            1,
            "nothing appended since the group-commit tick: sync skips the syscall"
        );
        wal.append(b"c").expect("append");
        wal.sync().expect("explicit sync over dirty log");
        wal.reset().expect("truncate syncs under group commit");
        assert_eq!(hist.read().count(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_batch_is_byte_identical_to_single_appends() {
        let one = temp_path("batch-a");
        let many = temp_path("batch-b");
        let _ = std::fs::remove_file(&one);
        let _ = std::fs::remove_file(&many);
        let payloads: Vec<Vec<u8>> = vec![b"alpha".to_vec(), Vec::new(), vec![7u8; 300]];
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let batched;
        {
            let (mut wal, _) = Wal::open(&one).expect("open");
            batched = wal.append_batch(&refs).expect("batch");
        }
        let singles;
        {
            let (mut wal, _) = Wal::open(&many).expect("open");
            singles = payloads
                .iter()
                .map(|p| wal.append(p).expect("append"))
                .sum::<usize>();
        }
        assert_eq!(batched, singles, "reported on-disk sizes agree");
        assert_eq!(
            std::fs::read(&one).expect("read"),
            std::fs::read(&many).expect("read"),
            "one batch and N appends must be indistinguishable on disk"
        );
        let (_, rec) = Wal::open(&one).expect("reopen");
        assert_eq!(rec.records, payloads);
        std::fs::remove_file(&one).ok();
        std::fs::remove_file(&many).ok();
    }

    #[test]
    fn append_batch_counts_one_group_commit_tick() {
        let path = temp_path("batch-tick");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).expect("open");
        let hist = Arc::new(SharedHistogram::default());
        wal.set_fsync_hist(Arc::clone(&hist));
        wal.set_fsync_every(2);
        wal.append_batch(&[b"a", b"b", b"c"]).expect("batch");
        assert_eq!(hist.read().count(), 0, "three records, one tick: no sync");
        wal.append_batch(&[b"d", b"e"]).expect("batch");
        assert_eq!(hist.read().count(), 1, "second tick reaches the group size");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let path = temp_path("batch-empty");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).expect("open");
        assert_eq!(wal.append_batch(&[]).expect("empty batch"), 0);
        assert_eq!(wal.bytes(), WAL_MAGIC.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_batch_member_refused_before_writing() {
        let path = temp_path("batch-oversize");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).expect("open");
        let huge = vec![0u8; MAX_WAL_RECORD + 1];
        let err = wal
            .append_batch(&[b"fine", &huge])
            .expect_err("oversized member refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(
            wal.bytes(),
            WAL_MAGIC.len() as u64,
            "nothing may land on disk when any member is refused"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_inside_a_batch_recovers_the_complete_prefix() {
        let path = temp_path("batch-torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).expect("open");
            wal.append_batch(&[b"first", b"second", b"third"])
                .expect("batch");
        }
        let full = std::fs::read(&path).expect("read");
        // Tear inside the third record's payload: the batch's first two
        // records are complete and must survive.
        std::fs::write(&path, &full[..full.len() - 2]).expect("tear");
        let (mut wal, rec) = Wal::open(&path).expect("recover");
        assert_eq!(rec.records, vec![b"first".to_vec(), b"second".to_vec()]);
        assert!(rec.torn_bytes > 0);
        wal.append(b"after").expect("append over the tear");
        let (_, rec) = Wal::open(&path).expect("reopen");
        assert_eq!(rec.records.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncated_and_appendable() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).expect("open");
            wal.append(b"keep me").expect("append");
            wal.append(b"torn away").expect("append");
        }
        let full = std::fs::read(&path).expect("read");
        std::fs::write(&path, &full[..full.len() - 3]).expect("tear");
        let (mut wal, rec) = Wal::open(&path).expect("recover");
        assert_eq!(rec.records, vec![b"keep me".to_vec()]);
        assert_eq!(rec.torn_bytes, 8 + 9 - 3);
        wal.append(b"after recovery").expect("append over the tear");
        let (_, rec) = Wal::open(&path).expect("reopen");
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[1], b"after recovery");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_checksum_is_a_descriptive_error() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).expect("open");
            wal.append(b"soon to be flipped").expect("append");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write corruption");
        let err = Wal::open(&path).expect_err("corruption must refuse to open");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("checksum mismatch"),
            "unexpected error: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_refused() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTAPRCC log").expect("write");
        let err = Wal::open(&path).expect_err("bad magic");
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bytes_track_appends_and_reset() {
        let path = temp_path("bytes");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).expect("open");
        assert_eq!(wal.bytes(), WAL_MAGIC.len() as u64);
        wal.append(b"12345").expect("append");
        assert_eq!(wal.bytes(), WAL_MAGIC.len() as u64 + 8 + 5);
        assert_eq!(
            wal.bytes(),
            std::fs::metadata(&path).expect("stat").len(),
            "tracked size must match the file"
        );
        wal.reset().expect("reset");
        assert_eq!(wal.bytes(), WAL_MAGIC.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_syncs_and_stays_readable() {
        // Behavioral smoke: with fsync-every-2, appends still land intact
        // and reopen cleanly (the sync itself cannot be observed without a
        // power cut; the point is the code path is exercised).
        let path = temp_path("fsync");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).expect("open");
            wal.set_fsync_every(2);
            for i in 0..5u8 {
                wal.append(&[i; 16]).expect("append");
            }
        }
        let (_, rec) = Wal::open(&path).expect("reopen");
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_drops_records() {
        let path = temp_path("reset");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).expect("open");
        wal.append(b"old").expect("append");
        wal.reset().expect("reset");
        wal.append(b"new").expect("append");
        drop(wal);
        let (_, rec) = Wal::open(&path).expect("reopen");
        assert_eq!(rec.records, vec![b"new".to_vec()]);
        std::fs::remove_file(&path).ok();
    }
}
