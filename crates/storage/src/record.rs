//! The logical records a node appends to its WAL.
//!
//! A node's durable history is the sequence of its state-mutating inputs,
//! each stamped with a monotonically increasing *record index* (so replay
//! after a snapshot can skip records the snapshot already folded in, even
//! when a crash lands between snapshot write and log truncation):
//!
//! * [`WalRecord::Issue`] — a client write accepted locally (step 2 of the
//!   prototype). Replaying it re-runs `Replica::write`, which
//!   deterministically re-advances the clock and regenerates the outbound
//!   update (and therefore the per-peer resend windows).
//! * [`WalRecord::Receipt`] — one decoded peer flush frame: the sending
//!   node plus its `(partition, [(link seq, update)])` sections, exactly
//!   as handed to the core. Replaying it re-runs receive/drain, which
//!   reproduces the pending buffer, the dedup set, the apply log and the
//!   per-peer acknowledgement high-water marks.
//!
//! Updates reuse the wire codecs ([`Update::encode_wire`] over
//! [`prcc_clock::WireClock`] counters), so the durable format and the wire
//! format cannot drift apart.

use prcc_clock::encoding::{read_varint_at as get_varint, write_varint};
use prcc_clock::WireClock;
use prcc_core::Update;
use prcc_graph::{PartitionId, RegisterId, ReplicaId};
use std::io;

const KIND_ISSUE: u8 = 1;
const KIND_RECEIPT: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;
const KIND_DIGEST: u8 = 4;

/// The sections of one received peer flush frame: per partition present,
/// its updates in order, each tagged with its per-link sequence number
/// (the service crate's wire-level `FlushSections` shape).
pub type ReceiptSections<C> = Vec<(PartitionId, Vec<(u64, Update<C>)>)>;

/// One durable state-mutating input of a node.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord<C> {
    /// A locally accepted client write.
    Issue {
        /// The partition written.
        partition: PartitionId,
        /// The register written.
        register: RegisterId,
        /// The written value.
        value: u64,
        /// The globally unique wire id assigned to the resulting update
        /// (`node << 40 | node-global sequence`); replay restores the
        /// sequence counter from it.
        wire_id: u64,
    },
    /// One peer flush frame as delivered to the core.
    Receipt {
        /// The sending node's index.
        peer: u64,
        /// The frame's `(partition, [(link seq, update)])` sections, in
        /// wire order.
        sections: ReceiptSections<C>,
    },
    /// A trace-compaction decision: for each named partition, the first
    /// `events` entries of its live trace log were sealed into the
    /// partition's checkpoint summary and discarded.
    ///
    /// Logged through the same append-before-apply path as the
    /// state-mutating inputs, so replay reproduces the exact same seal
    /// points — the recovered checkpoint + live-suffix pair is
    /// byte-identical to the pre-crash one even when the node compacted
    /// between snapshots.
    Checkpoint {
        /// `(partition, sealed event count)` pairs, ascending by
        /// partition.
        seals: Vec<(PartitionId, u64)>,
    },
    /// A post-snapshot digest seal: the chained checkpoint digest and
    /// sealed event count of every hosted partition, as the snapshot that
    /// immediately precedes this record captured them. Appended right
    /// after the snapshot truncates the log, so it is the first record
    /// replay processes; recovery compares it against the checkpoints
    /// decoded *from the snapshot file* and refuses to boot on a
    /// mismatch — a tampered or bit-rotted snapshot digest would
    /// otherwise seed the audit trail with a false value that only
    /// surfaces, unattributably, in a later cross-node stitch. Replay of
    /// a log whose snapshot pre-dates this record kind simply never sees
    /// one, so existing data directories boot unchanged.
    Digest {
        /// `(partition, sealed events, chained FNV-1a digest)` triples,
        /// ascending by partition.
        partitions: Vec<(PartitionId, u64, u64)>,
    },
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("WAL record: {what}"))
}

/// Encodes a record (with its index) into a WAL payload.
pub fn encode_record<C: WireClock>(index: u64, record: &WalRecord<C>) -> Vec<u8> {
    let mut out = Vec::new();
    encode_record_into(index, record, &mut out);
    out
}

/// Appends a record's WAL payload to `out` in place — the staging entry
/// point for sweep-scoped group commit, where every record of a sweep
/// encodes into one flat buffer instead of an owned `Vec` each.
pub fn encode_record_into<C: WireClock>(index: u64, record: &WalRecord<C>, out: &mut Vec<u8>) {
    match record {
        WalRecord::Issue {
            partition,
            register,
            value,
            wire_id,
        } => {
            write_varint(out, index);
            out.push(KIND_ISSUE);
            write_varint(out, u64::from(partition.0));
            write_varint(out, u64::from(register.0));
            write_varint(out, *value);
            write_varint(out, *wire_id);
        }
        WalRecord::Receipt { peer, sections } => {
            encode_receipt_record_into(index, *peer, sections, out);
        }
        WalRecord::Checkpoint { seals } => {
            write_varint(out, index);
            out.push(KIND_CHECKPOINT);
            write_varint(out, seals.len() as u64);
            for (partition, events) in seals {
                write_varint(out, u64::from(partition.0));
                write_varint(out, *events);
            }
        }
        WalRecord::Digest { partitions } => {
            write_varint(out, index);
            out.push(KIND_DIGEST);
            write_varint(out, partitions.len() as u64);
            for (partition, events, digest) in partitions {
                write_varint(out, u64::from(partition.0));
                write_varint(out, *events);
                write_varint(out, *digest);
            }
        }
    }
}

/// Encodes a [`WalRecord::Receipt`] payload from borrowed sections, so the
/// append-before-apply path can log a frame and then apply the very same
/// sections without moving them through the enum.
pub fn encode_receipt_record<C: WireClock>(
    index: u64,
    peer: u64,
    sections: &ReceiptSections<C>,
) -> Vec<u8> {
    let mut out = Vec::new();
    encode_receipt_record_into(index, peer, sections, &mut out);
    out
}

/// The append-into variant of [`encode_receipt_record`].
pub fn encode_receipt_record_into<C: WireClock>(
    index: u64,
    peer: u64,
    sections: &ReceiptSections<C>,
    out: &mut Vec<u8>,
) {
    write_varint(out, index);
    out.push(KIND_RECEIPT);
    write_varint(out, peer);
    write_varint(out, sections.len() as u64);
    for (partition, updates) in sections {
        write_varint(out, u64::from(partition.0));
        write_varint(out, updates.len() as u64);
        for (seq, update) in updates {
            write_varint(out, *seq);
            update.encode_wire(out);
        }
    }
}

/// Decodes a WAL payload back into `(index, record)`; `make_clock` maps
/// issuer roles to template clocks exactly as on the wire path.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on any malformed input, including
/// trailing bytes (records are exact).
pub fn decode_record<C, F>(payload: &[u8], mut make_clock: F) -> io::Result<(u64, WalRecord<C>)>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    let mut at = 0;
    let index = get_varint(payload, &mut at)?;
    let kind = *payload.get(at).ok_or_else(|| bad("missing record kind"))?;
    at += 1;
    let record = match kind {
        KIND_ISSUE => {
            let partition = u32::try_from(get_varint(payload, &mut at)?)
                .map_err(|_| bad("partition id out of range"))?;
            let register = u32::try_from(get_varint(payload, &mut at)?)
                .map_err(|_| bad("register id out of range"))?;
            let value = get_varint(payload, &mut at)?;
            let wire_id = get_varint(payload, &mut at)?;
            WalRecord::Issue {
                partition: PartitionId(partition),
                register: RegisterId(register),
                value,
                wire_id,
            }
        }
        KIND_RECEIPT => {
            let peer = get_varint(payload, &mut at)?;
            let count = get_varint(payload, &mut at)? as usize;
            if count > 1 << 20 {
                return Err(bad("absurd section count"));
            }
            let mut sections = Vec::with_capacity(count.min(1 << 10));
            for _ in 0..count {
                let partition = u32::try_from(get_varint(payload, &mut at)?)
                    .map_err(|_| bad("partition id out of range"))?;
                let updates = get_varint(payload, &mut at)? as usize;
                if updates > 1 << 24 {
                    return Err(bad("absurd update count"));
                }
                let mut decoded = Vec::with_capacity(updates.min(1 << 16));
                for _ in 0..updates {
                    let seq = get_varint(payload, &mut at)?;
                    let update = Update::decode_wire(payload, &mut at, &mut make_clock)
                        .ok_or_else(|| bad("malformed update"))?;
                    decoded.push((seq, update));
                }
                sections.push((PartitionId(partition), decoded));
            }
            WalRecord::Receipt { peer, sections }
        }
        KIND_CHECKPOINT => {
            let count = get_varint(payload, &mut at)? as usize;
            if count > 1 << 20 {
                return Err(bad("absurd seal count"));
            }
            let mut seals = Vec::with_capacity(count.min(1 << 10));
            for _ in 0..count {
                let partition = u32::try_from(get_varint(payload, &mut at)?)
                    .map_err(|_| bad("partition id out of range"))?;
                seals.push((PartitionId(partition), get_varint(payload, &mut at)?));
            }
            WalRecord::Checkpoint { seals }
        }
        KIND_DIGEST => {
            let count = get_varint(payload, &mut at)? as usize;
            if count > 1 << 20 {
                return Err(bad("absurd digest count"));
            }
            let mut partitions = Vec::with_capacity(count.min(1 << 10));
            for _ in 0..count {
                let partition = u32::try_from(get_varint(payload, &mut at)?)
                    .map_err(|_| bad("partition id out of range"))?;
                let events = get_varint(payload, &mut at)?;
                let digest = get_varint(payload, &mut at)?;
                partitions.push((PartitionId(partition), events, digest));
            }
            WalRecord::Digest { partitions }
        }
        other => return Err(bad(&format!("unknown record kind {other}"))),
    };
    if at != payload.len() {
        return Err(bad("trailing bytes"));
    }
    Ok((index, record))
}
