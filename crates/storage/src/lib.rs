//! Durability for prcc nodes: a write-ahead log plus per-node snapshots.
//!
//! The paper's algorithm assumes replicas never forget — a node's
//! share-graph-derived clock and register store are the causal state that
//! makes every future timestamp valid. This crate persists exactly that
//! state, exploiting the paper's headline result: because the clock is
//! share-graph-sized rather than `O(n)`, the per-update durability record
//! stays small (an update's clock is the same counter vector that travels
//! on the wire).
//!
//! Layout per node (under the service's `--data-dir`):
//!
//! ```text
//! <data-dir>/node-<i>/wal.bin        length-prefixed, CRC-checksummed records
//! <data-dir>/node-<i>/snapshot.bin   atomic fold of a WAL prefix
//! ```
//!
//! * [`wal`] — the record-framing layer: append, scan, torn-tail recovery
//!   (longest valid prefix), checksum rejection.
//! * [`record`] — the logical records ([`WalRecord`]): issues and peer
//!   receipt frames, encoded with the wire codecs so the durable and wire
//!   formats cannot drift.
//! * [`snapshot`] — [`NodeSnapshot`]: replica state, event logs, and
//!   per-peer link state (resend windows, ack high-water marks), encoded
//!   deterministically and written atomically.
//! * [`crc32`] — the in-tree CRC-32 (IEEE) both layers share.
//!
//! The crate is deliberately policy-free: *when* to append, snapshot or
//! truncate is the node event loop's decision (`prcc-service`); this layer
//! guarantees only that what was appended is what comes back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use crc32::crc32;
pub use record::{
    decode_record, encode_receipt_record, encode_receipt_record_into, encode_record,
    encode_record_into, ReceiptSections, WalRecord,
};
pub use snapshot::{
    decode_snapshot, decode_trace_checkpoint, encode_snapshot, encode_trace_checkpoint,
    read_snapshot, write_snapshot, NodeSnapshot, PartitionSnapshot, PeerSnapshot, SNAPSHOT_MAGIC,
    SNAPSHOT_MAGIC_V1,
};
pub use wal::{
    scan_wal, scan_wal_spans, Wal, WalRecovery, WalScan, WalScanSpans, MAX_WAL_RECORD, WAL_MAGIC,
};
