//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every WAL record and snapshot payload.
//!
//! Implemented in-tree because the hermetic workspace has no `crc` crate;
//! a single 256-entry table computed at first use keeps it fast enough for
//! per-record hashing (a few GB/s, far above WAL append rates).

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, entry) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE, as produced by zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from zlib's crc32().
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"hello wal");
        let mut bytes = b"hello wal".to_vec();
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "flip at bit {i} undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
