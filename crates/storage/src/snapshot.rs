//! Per-node snapshots: the fold of a WAL prefix, enabling log truncation.
//!
//! A [`NodeSnapshot`] captures everything the WAL replay would otherwise
//! rebuild — per-partition replica state (store, clock, pending buffer,
//! counters), the node-global wire-id sequence, and the per-peer link state
//! (outbound resend windows with their sequence counters, inbound receive
//! watermarks and outbound acknowledgement high-waters). The `wal_high`
//! field records the index of the last WAL record folded in, so a crash
//! between snapshot write and log truncation is harmless: replay simply
//! skips records at or below it.
//!
//! # Codec v2: O(live state), not O(history)
//!
//! Version 1 of this codec (magic `PRCCSNP1`) serialized two structures
//! that grew with total history and were rewritten into **every**
//! snapshot: the per-replica dedup set (every update id ever received) and
//! the full per-partition trace log. Version 2 (magic `PRCCSNP2`) replaces
//! them with their bounded equivalents:
//!
//! * duplicate suppression is per-link [`prcc_core::SeqWatermark`] state —
//!   a contiguous receive high-water plus a small out-of-order residue;
//! * trace logs are a [`TraceCheckpoint`] summary of the sealed
//!   (verified-and-discarded) prefix plus only the live suffix.
//!
//! v1 snapshots remain **readable** (the legacy path converts them:
//! dedup sets are dropped in favor of the recorded receive high-waters,
//! full logs become the live suffix of an empty checkpoint), so a node can
//! restart across the format change; writes always emit v2.
//!
//! The encoding is **deterministic**: every collection is serialized in
//! its stored order, so two nodes that processed the same inputs produce
//! byte-identical snapshots — which the recovery test suite asserts
//! outright.
//!
//! On disk a snapshot is `magic | u32 crc32(payload) | payload`, written
//! to a temporary file and atomically renamed into place, so a crash
//! mid-write leaves the previous snapshot intact.

use crate::crc32::crc32;
use prcc_checker::trace::TraceEvent;
use prcc_checker::{TraceCheckpoint, UpdateId};
use prcc_clock::encoding::{read_varint_at as get_varint, write_varint};
use prcc_clock::WireClock;
use prcc_core::{ReplicaState, Update};
use prcc_graph::{PartitionId, RegisterId, ReplicaId};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// The 8-byte magic opening every v2 snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PRCCSNP2";

/// The v1 magic, still accepted by [`read_snapshot`] for the legacy
/// decode path.
pub const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"PRCCSNP1";

/// One hosted partition's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSnapshot<C> {
    /// The replica state machine (role id, store, clock, pending,
    /// counters).
    pub state: ReplicaState<C>,
    /// Client writes issued into this partition at this node.
    pub issued: u64,
    /// Summary of the sealed (verified and discarded) trace prefix.
    pub checkpoint: TraceCheckpoint,
    /// The live trace suffix (issues and applies after the checkpoint, in
    /// processing order) — what the post-hoc oracle still replays.
    pub log: Vec<TraceEvent>,
}

/// One peer link's durable state, as seen from this node.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerSnapshot<C> {
    /// Next outbound link sequence number to assign (starts at 1).
    pub next_seq: u64,
    /// Highest outbound sequence the peer has acknowledged (prunes the
    /// window and gates trace sealing).
    pub acked_high: u64,
    /// Contiguous receive high-water: every inbound sequence at or below
    /// it has been durably received (what this node acknowledges).
    pub recv_high: u64,
    /// Out-of-order inbound sequences above `recv_high`, ascending — the
    /// receive watermark's residue.
    pub recv_residue: Vec<u64>,
    /// Outbound updates sent (or queued) but not yet acknowledged by the
    /// peer, in sequence order — the resend window. Bounded by the ack
    /// cadence (and the service's window cap), not by history.
    pub window: Vec<(u64, PartitionId, Update<C>)>,
}

/// Everything a node needs to restart without its WAL prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot<C> {
    /// Index of the last WAL record folded into this snapshot (0 when the
    /// node had appended nothing).
    pub wal_high: u64,
    /// The node-global wire-id sequence counter.
    pub seq: u64,
    /// Client writes accepted (all partitions).
    pub issued: u64,
    /// Update copies enqueued to peers (window pushes).
    pub sent: u64,
    /// Update copies received from peers (duplicates included).
    pub received: u64,
    /// Updates dropped for targeting an unhosted partition.
    pub dropped_misrouted: u64,
    /// Duplicate deliveries suppressed by the link watermarks.
    pub duplicates_dropped: u64,
    /// Per-partition state, indexed by partition id; `None` for
    /// partitions this node does not host.
    pub partitions: Vec<Option<PartitionSnapshot<C>>>,
    /// Per-peer link state, indexed by node id (the self entry is idle).
    pub peers: Vec<PeerSnapshot<C>>,
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {what}"))
}

fn encode_trace_event(event: &TraceEvent, out: &mut Vec<u8>) {
    match *event {
        TraceEvent::Issue {
            replica,
            register,
            update,
        } => {
            out.push(0);
            write_varint(out, replica.index() as u64);
            write_varint(out, u64::from(register.0));
            write_varint(out, update);
        }
        TraceEvent::Apply { replica, update } => {
            out.push(1);
            write_varint(out, replica.index() as u64);
            write_varint(out, update);
        }
    }
}

fn decode_trace_event(buf: &[u8], at: &mut usize) -> io::Result<TraceEvent> {
    let kind = *buf.get(*at).ok_or_else(|| bad("missing event kind"))?;
    *at += 1;
    let replica = ReplicaId(get_varint(buf, at)? as usize);
    match kind {
        0 => {
            let register =
                u32::try_from(get_varint(buf, at)?).map_err(|_| bad("register id out of range"))?;
            let update = get_varint(buf, at)?;
            Ok(TraceEvent::Issue {
                replica,
                register: RegisterId(register),
                update,
            })
        }
        1 => Ok(TraceEvent::Apply {
            replica,
            update: get_varint(buf, at)?,
        }),
        other => Err(bad(&format!("unknown event kind {other}"))),
    }
}

/// Serializes a trace checkpoint (shared by the snapshot codec and the
/// service wire's `Trace` response).
pub fn encode_trace_checkpoint(checkpoint: &TraceCheckpoint, out: &mut Vec<u8>) {
    write_varint(out, checkpoint.events);
    write_varint(out, checkpoint.issues);
    write_varint(out, checkpoint.applies);
    write_varint(out, checkpoint.last_issue);
    write_varint(out, checkpoint.applied_high.len() as u64);
    for &high in &checkpoint.applied_high {
        write_varint(out, high);
    }
    write_varint(out, checkpoint.frontier.len() as u64);
    for &wire in &checkpoint.frontier {
        write_varint(out, wire);
    }
    write_varint(out, checkpoint.digest);
}

/// Decodes a trace checkpoint encoded by [`encode_trace_checkpoint`].
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on malformed input.
pub fn decode_trace_checkpoint(buf: &[u8], at: &mut usize) -> io::Result<TraceCheckpoint> {
    let events = get_varint(buf, at)?;
    let issues = get_varint(buf, at)?;
    let applies = get_varint(buf, at)?;
    let last_issue = get_varint(buf, at)?;
    let roles = get_varint(buf, at)? as usize;
    if roles > 1 << 20 {
        return Err(bad("absurd role count"));
    }
    let mut applied_high = Vec::with_capacity(roles.min(1 << 10));
    for _ in 0..roles {
        applied_high.push(get_varint(buf, at)?);
    }
    let registers = get_varint(buf, at)? as usize;
    if registers > 1 << 24 {
        return Err(bad("absurd register count"));
    }
    let mut frontier = Vec::with_capacity(registers.min(1 << 16));
    for _ in 0..registers {
        frontier.push(get_varint(buf, at)?);
    }
    let digest = get_varint(buf, at)?;
    Ok(TraceCheckpoint {
        events,
        issues,
        applies,
        last_issue,
        applied_high,
        frontier,
        digest,
    })
}

/// Serializes a snapshot into its v2 payload bytes (checksum and magic are
/// added by [`write_snapshot`]).
pub fn encode_snapshot<C: WireClock>(snap: &NodeSnapshot<C>) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, snap.wal_high);
    write_varint(&mut out, snap.seq);
    write_varint(&mut out, snap.issued);
    write_varint(&mut out, snap.sent);
    write_varint(&mut out, snap.received);
    write_varint(&mut out, snap.dropped_misrouted);
    write_varint(&mut out, snap.duplicates_dropped);
    write_varint(&mut out, snap.partitions.len() as u64);
    for slot in &snap.partitions {
        match slot {
            None => out.push(0),
            Some(part) => {
                out.push(1);
                write_varint(&mut out, part.state.id.index() as u64);
                write_varint(&mut out, part.issued);
                write_varint(&mut out, part.state.store.len() as u64);
                for entry in &part.state.store {
                    match entry {
                        None => out.push(0),
                        Some(v) => {
                            out.push(1);
                            write_varint(&mut out, *v);
                        }
                    }
                }
                part.state.clock.encode_wire(&mut out);
                write_varint(&mut out, part.state.pending.len() as u64);
                for update in &part.state.pending {
                    update.encode_wire(&mut out);
                }
                write_varint(&mut out, part.state.applies);
                write_varint(&mut out, part.state.buffered_applies);
                write_varint(&mut out, part.state.max_pending as u64);
                encode_trace_checkpoint(&part.checkpoint, &mut out);
                write_varint(&mut out, part.log.len() as u64);
                for event in &part.log {
                    encode_trace_event(event, &mut out);
                }
            }
        }
    }
    write_varint(&mut out, snap.peers.len() as u64);
    for peer in &snap.peers {
        write_varint(&mut out, peer.next_seq);
        write_varint(&mut out, peer.acked_high);
        write_varint(&mut out, peer.recv_high);
        write_varint(&mut out, peer.recv_residue.len() as u64);
        for &seq in &peer.recv_residue {
            write_varint(&mut out, seq);
        }
        write_varint(&mut out, peer.window.len() as u64);
        for (seq, partition, update) in &peer.window {
            write_varint(&mut out, *seq);
            write_varint(&mut out, u64::from(partition.0));
            update.encode_wire(&mut out);
        }
    }
    out
}

fn decode_store(payload: &[u8], at: &mut usize) -> io::Result<Vec<Option<u64>>> {
    let store_len = get_varint(payload, at)? as usize;
    if store_len > 1 << 24 {
        return Err(bad("absurd store size"));
    }
    let mut store = Vec::with_capacity(store_len.min(1 << 16));
    for _ in 0..store_len {
        let flag = *payload.get(*at).ok_or_else(|| bad("missing store flag"))?;
        *at += 1;
        store.push(if flag == 0 {
            None
        } else {
            Some(get_varint(payload, at)?)
        });
    }
    Ok(store)
}

fn decode_pending<C, F>(
    payload: &[u8],
    at: &mut usize,
    make_clock: &mut F,
) -> io::Result<Vec<Update<C>>>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    let pending_len = get_varint(payload, at)? as usize;
    if pending_len > 1 << 24 {
        return Err(bad("absurd pending size"));
    }
    let mut pending = Vec::with_capacity(pending_len.min(1 << 16));
    for _ in 0..pending_len {
        pending.push(
            Update::decode_wire(payload, at, &mut *make_clock)
                .ok_or_else(|| bad("malformed pending update"))?,
        );
    }
    Ok(pending)
}

fn decode_log(payload: &[u8], at: &mut usize) -> io::Result<Vec<TraceEvent>> {
    let log_len = get_varint(payload, at)? as usize;
    if log_len > 1 << 28 {
        return Err(bad("absurd log size"));
    }
    let mut log = Vec::with_capacity(log_len.min(1 << 16));
    for _ in 0..log_len {
        log.push(decode_trace_event(payload, at)?);
    }
    Ok(log)
}

#[allow(clippy::type_complexity)]
fn decode_window<C, F>(
    payload: &[u8],
    at: &mut usize,
    make_clock: &mut F,
) -> io::Result<Vec<(u64, PartitionId, Update<C>)>>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    let window_len = get_varint(payload, at)? as usize;
    if window_len > 1 << 24 {
        return Err(bad("absurd window size"));
    }
    let mut window = Vec::with_capacity(window_len.min(1 << 16));
    for _ in 0..window_len {
        let seq = get_varint(payload, at)?;
        let partition = u32::try_from(get_varint(payload, at)?)
            .map_err(|_| bad("partition id out of range"))?;
        let update = Update::decode_wire(payload, at, &mut *make_clock)
            .ok_or_else(|| bad("malformed window update"))?;
        window.push((seq, PartitionId(partition), update));
    }
    Ok(window)
}

/// Decodes a snapshot payload of the given `version` (1 or 2, from
/// [`read_snapshot`]). `make_clock` maps a replica role to a template
/// clock; `roles` is the share graph's replica count (sizes the empty
/// checkpoints synthesized for legacy v1 payloads).
///
/// A v1 payload is converted on the fly: its historical dedup sets are
/// dropped (the recorded receive high-waters carry the exact same
/// duplicate-suppression information at the link level), its full trace
/// logs become the live suffix over an empty checkpoint, and its
/// acknowledged offsets are recovered from the window fronts (everything
/// before a window was acknowledged, or it would still be parked there).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on malformed input, an unknown version,
/// or trailing bytes.
pub fn decode_snapshot<C, F>(
    version: u32,
    payload: &[u8],
    roles: usize,
    mut make_clock: F,
) -> io::Result<NodeSnapshot<C>>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    if version != 1 && version != 2 {
        return Err(bad(&format!("unknown codec version {version}")));
    }
    let mut at = 0;
    let wal_high = get_varint(payload, &mut at)?;
    let seq = get_varint(payload, &mut at)?;
    let issued = get_varint(payload, &mut at)?;
    let sent = get_varint(payload, &mut at)?;
    let received = get_varint(payload, &mut at)?;
    let dropped_misrouted = get_varint(payload, &mut at)?;
    let mut duplicates_dropped = if version >= 2 {
        get_varint(payload, &mut at)?
    } else {
        0
    };
    let parts = get_varint(payload, &mut at)? as usize;
    if parts > 1 << 20 {
        return Err(bad("absurd partition count"));
    }
    let mut partitions = Vec::with_capacity(parts.min(1 << 10));
    for _ in 0..parts {
        let present = *payload.get(at).ok_or_else(|| bad("missing slot flag"))?;
        at += 1;
        if present == 0 {
            partitions.push(None);
            continue;
        }
        let role = ReplicaId(get_varint(payload, &mut at)? as usize);
        let part_issued = get_varint(payload, &mut at)?;
        let store = decode_store(payload, &mut at)?;
        let mut clock = make_clock(role).ok_or_else(|| bad("role out of range"))?;
        if !clock.decode_wire(payload, &mut at) {
            return Err(bad("malformed slot clock"));
        }
        let pending = decode_pending(payload, &mut at, &mut make_clock)?;
        let applies = get_varint(payload, &mut at)?;
        let buffered_applies = get_varint(payload, &mut at)?;
        let max_pending = get_varint(payload, &mut at)? as usize;
        let checkpoint = if version >= 2 {
            decode_trace_checkpoint(payload, &mut at)?
        } else {
            // v1: historical dedup set — parse and discard (the link
            // watermarks supersede it), then synthesize an empty
            // checkpoint (the full log below becomes the live suffix).
            duplicates_dropped += get_varint(payload, &mut at)?;
            let seen_len = get_varint(payload, &mut at)? as usize;
            if seen_len > 1 << 28 {
                return Err(bad("absurd dedup set size"));
            }
            for _ in 0..seen_len {
                let _ = UpdateId(get_varint(payload, &mut at)?);
            }
            TraceCheckpoint::new(roles, store.len())
        };
        let log = decode_log(payload, &mut at)?;
        partitions.push(Some(PartitionSnapshot {
            state: ReplicaState {
                id: role,
                store,
                clock,
                pending,
                applies,
                buffered_applies,
                max_pending,
            },
            issued: part_issued,
            checkpoint,
            log,
        }));
    }
    let peer_count = get_varint(payload, &mut at)? as usize;
    if peer_count > 1 << 20 {
        return Err(bad("absurd peer count"));
    }
    let mut peers = Vec::with_capacity(peer_count.min(1 << 10));
    for _ in 0..peer_count {
        let next_seq = get_varint(payload, &mut at)?;
        let (acked_high, recv_high, recv_residue) = if version >= 2 {
            let acked_high = get_varint(payload, &mut at)?;
            let recv_high = get_varint(payload, &mut at)?;
            let residue_len = get_varint(payload, &mut at)? as usize;
            if residue_len > 1 << 24 {
                return Err(bad("absurd residue size"));
            }
            let mut residue = Vec::with_capacity(residue_len.min(1 << 16));
            for _ in 0..residue_len {
                residue.push(get_varint(payload, &mut at)?);
            }
            (acked_high, recv_high, residue)
        } else {
            (0, get_varint(payload, &mut at)?, Vec::new())
        };
        let window = decode_window(payload, &mut at, &mut make_clock)?;
        let acked_high = if version >= 2 {
            acked_high
        } else {
            // v1 recorded no acknowledged offset, but the window implies
            // it: every sequence before the window's front was pruned by
            // an acknowledgement.
            window
                .first()
                .map_or(next_seq.saturating_sub(1), |(seq, _, _)| {
                    seq.saturating_sub(1)
                })
        };
        peers.push(PeerSnapshot {
            next_seq,
            acked_high,
            recv_high,
            recv_residue,
            window,
        });
    }
    if at != payload.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(NodeSnapshot {
        wal_high,
        seq,
        issued,
        sent,
        received,
        dropped_misrouted,
        duplicates_dropped,
        partitions,
        peers,
    })
}

/// Atomically writes snapshot payload bytes to `path` (v2 magic and
/// checksum added): the bytes land in `<path>.tmp` first and are renamed
/// over the previous snapshot, so a crash mid-write never destroys the old
/// one. With `sync`, the temporary file is fsynced before the rename *and
/// the parent directory is fsynced after it* — without the directory sync
/// the rename itself could be lost to a power cut, leaving the old
/// snapshot paired with a WAL that was truncated for the new one (paired
/// with the WAL's group commit, which syncs its truncation too).
///
/// # Errors
///
/// I/O errors from the write, rename, or directory sync.
pub fn write_snapshot(path: &Path, payload: &[u8], sync: bool) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(SNAPSHOT_MAGIC)?;
        file.write_all(&crc32(payload).to_le_bytes())?;
        file.write_all(payload)?;
        file.flush()?;
        if sync {
            file.sync_data()?;
        }
    }
    fs::rename(&tmp, path)?;
    if sync {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::File::open(parent)?.sync_all()?;
        }
    }
    Ok(())
}

/// Reads snapshot payload bytes from `path`, returning the codec version
/// (1 for legacy `PRCCSNP1` files, 2 for current ones) alongside them;
/// `Ok(None)` when no snapshot exists yet.
///
/// # Errors
///
/// I/O errors; a wrong magic or checksum mismatch is
/// [`io::ErrorKind::InvalidData`] — a damaged snapshot must stop recovery
/// loudly rather than boot a half-restored node.
pub fn read_snapshot(path: &Path) -> io::Result<Option<(u32, Vec<u8>)>> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < 12 {
        return Err(bad("file too short for a prcc snapshot"));
    }
    let version = if &bytes[..8] == SNAPSHOT_MAGIC {
        2
    } else if &bytes[..8] == SNAPSHOT_MAGIC_V1 {
        1
    } else {
        return Err(bad("bad file magic (not a prcc snapshot)"));
    };
    // lint: allow(unwrap) infallible: a 4-byte slice into a 4-byte array
    let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..];
    let actual = crc32(payload);
    if stored != actual {
        return Err(bad(&format!(
            "checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(Some((version, payload.to_vec())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_clock::{EdgeProtocol, Protocol};
    use prcc_graph::topologies;
    use prcc_net::VirtualTime;

    /// Hand-encodes a v1 payload (the retired codec) so the legacy read
    /// path stays covered even though nothing writes v1 anymore.
    fn encode_v1_payload(g: &prcc_graph::ShareGraph, p: &EdgeProtocol) -> Vec<u8> {
        let role = ReplicaId(0);
        let mut clock = p.new_clock(role);
        p.advance(role, &mut clock, RegisterId(0));
        let pending = Update {
            id: UpdateId((1u64 << 40) | 9),
            issuer: ReplicaId(1),
            register: RegisterId(0),
            value: 77,
            clock: p.new_clock(ReplicaId(1)),
            issued_at: VirtualTime::ZERO,
            received_at: VirtualTime::ZERO,
        };
        let window_update = Update {
            id: UpdateId(3),
            issuer: role,
            register: RegisterId(0),
            value: 5,
            clock: clock.clone(),
            issued_at: VirtualTime::ZERO,
            received_at: VirtualTime::ZERO,
        };
        let mut out = Vec::new();
        write_varint(&mut out, 12); // wal_high
        write_varint(&mut out, 40); // seq
        write_varint(&mut out, 7); // issued
        write_varint(&mut out, 9); // sent
        write_varint(&mut out, 8); // received
        write_varint(&mut out, 0); // dropped_misrouted
        write_varint(&mut out, 2); // partitions
        out.push(0); // partition 0 unhosted
        out.push(1); // partition 1 hosted
        write_varint(&mut out, role.index() as u64);
        write_varint(&mut out, 7); // part issued
        write_varint(&mut out, g.num_registers() as u64);
        for i in 0..g.num_registers() {
            if i == 0 {
                out.push(1);
                write_varint(&mut out, 41);
            } else {
                out.push(0);
            }
        }
        clock.encode_wire(&mut out);
        write_varint(&mut out, 1); // pending len
        pending.encode_wire(&mut out);
        write_varint(&mut out, 4); // applies
        write_varint(&mut out, 1); // buffered_applies
        write_varint(&mut out, 3); // max_pending
        write_varint(&mut out, 2); // dropped_duplicates (v1, per replica)
        write_varint(&mut out, 3); // seen len (v1 dedup set)
        for id in [3u64, 5, (1 << 40) | 9] {
            write_varint(&mut out, id);
        }
        write_varint(&mut out, 2); // log len
        out.push(0); // Issue
        write_varint(&mut out, role.index() as u64);
        write_varint(&mut out, 0);
        write_varint(&mut out, 3);
        out.push(1); // Apply
        write_varint(&mut out, role.index() as u64);
        write_varint(&mut out, (1 << 40) | 7);
        write_varint(&mut out, 2); // peers
        write_varint(&mut out, 9); // peer 0 next_seq
        write_varint(&mut out, 4); // recv_high
        write_varint(&mut out, 1); // window len
        write_varint(&mut out, 6); // entry seq (so acked_high converts to 5)
        write_varint(&mut out, 1); // entry partition
        window_update.encode_wire(&mut out);
        write_varint(&mut out, 1); // peer 1 next_seq
        write_varint(&mut out, 0); // recv_high
        write_varint(&mut out, 0); // window len
        out
    }

    #[test]
    fn legacy_v1_payloads_convert_to_bounded_state() {
        let g = topologies::line(2);
        let p = EdgeProtocol::new(g.clone());
        let payload = encode_v1_payload(&g, &p);
        let snap = decode_snapshot::<prcc_clock::EdgeClock, _>(1, &payload, 2, |k| {
            (k.index() < 2).then(|| p.new_clock(k))
        })
        .expect("legacy decode");
        assert_eq!(snap.wal_high, 12);
        // The v1 per-replica duplicate counter folds into the node total.
        assert_eq!(snap.duplicates_dropped, 2);
        let part = snap.partitions[1].as_ref().expect("hosted");
        // The historical dedup set is gone; the full log became the live
        // suffix over an empty checkpoint.
        assert!(part.checkpoint.is_empty());
        assert_eq!(part.log.len(), 2);
        assert_eq!(part.state.pending.len(), 1);
        // Acked offsets are recovered from the window fronts.
        assert_eq!(snap.peers[0].acked_high, 5);
        assert_eq!(snap.peers[0].recv_high, 4);
        assert_eq!(snap.peers[1].acked_high, 0);
        // Converted snapshots re-encode as v2 and round-trip.
        let v2 = encode_snapshot(&snap);
        let back = decode_snapshot::<prcc_clock::EdgeClock, _>(2, &v2, 2, |k| {
            (k.index() < 2).then(|| p.new_clock(k))
        })
        .expect("v2 decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn legacy_file_magic_is_recognized() {
        let g = topologies::line(2);
        let p = EdgeProtocol::new(g.clone());
        let payload = encode_v1_payload(&g, &p);
        let dir = std::env::temp_dir().join(format!("prcc-snap-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("snapshot.bin");
        let mut bytes = SNAPSHOT_MAGIC_V1.to_vec();
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).expect("write v1 file");
        let (version, read) = read_snapshot(&path).expect("read").expect("present");
        assert_eq!(version, 1);
        assert_eq!(read, payload);
        std::fs::remove_file(&path).ok();
    }
}
