//! Per-node snapshots: the fold of a WAL prefix, enabling log truncation.
//!
//! A [`NodeSnapshot`] captures everything the WAL replay would otherwise
//! rebuild — per-partition replica state (store, clock, pending buffer,
//! dedup set, counters) plus the node's event logs, the node-global wire-id
//! sequence, and the per-peer link state (outbound resend windows with
//! their sequence counters, inbound acknowledgement high-water marks). The
//! `wal_high` field records the index of the last WAL record folded in, so
//! a crash between snapshot write and log truncation is harmless: replay
//! simply skips records at or below it.
//!
//! The encoding is **deterministic**: every collection is serialized in its
//! stored order and the dedup set is kept sorted, so two nodes that
//! processed the same inputs produce byte-identical snapshots — which the
//! recovery test suite asserts outright.
//!
//! On disk a snapshot is `"PRCCSNP1" | u32 crc32(payload) | payload`,
//! written to a temporary file and atomically renamed into place, so a
//! crash mid-write leaves the previous snapshot intact.

use crate::crc32::crc32;
use prcc_checker::trace::TraceEvent;
use prcc_checker::UpdateId;
use prcc_clock::encoding::{read_varint_at as get_varint, write_varint};
use prcc_clock::WireClock;
use prcc_core::{ReplicaState, Update};
use prcc_graph::{PartitionId, RegisterId, ReplicaId};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// The 8-byte magic opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PRCCSNP1";

/// One hosted partition's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSnapshot<C> {
    /// The replica state machine (role id, store, clock, pending, dedup
    /// set, counters).
    pub state: ReplicaState<C>,
    /// Client writes issued into this partition at this node.
    pub issued: u64,
    /// The partition-local event log (issues and applies, in processing
    /// order) — the trace the post-hoc oracle replays.
    pub log: Vec<TraceEvent>,
}

/// One peer link's durable state, as seen from this node.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerSnapshot<C> {
    /// Next outbound link sequence number to assign (starts at 1).
    pub next_seq: u64,
    /// Highest link sequence received *from* this peer (what this node
    /// acknowledges).
    pub recv_high: u64,
    /// Outbound updates sent (or queued) but not yet acknowledged by the
    /// peer, in sequence order — the resend window.
    pub window: Vec<(u64, PartitionId, Update<C>)>,
}

/// Everything a node needs to restart without its WAL prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot<C> {
    /// Index of the last WAL record folded into this snapshot (0 when the
    /// node had appended nothing).
    pub wal_high: u64,
    /// The node-global wire-id sequence counter.
    pub seq: u64,
    /// Client writes accepted (all partitions).
    pub issued: u64,
    /// Update copies enqueued to peers (window pushes).
    pub sent: u64,
    /// Update copies received from peers (duplicates included).
    pub received: u64,
    /// Updates dropped for targeting an unhosted partition.
    pub dropped_misrouted: u64,
    /// Per-partition state, indexed by partition id; `None` for
    /// partitions this node does not host.
    pub partitions: Vec<Option<PartitionSnapshot<C>>>,
    /// Per-peer link state, indexed by node id (the self entry is idle).
    pub peers: Vec<PeerSnapshot<C>>,
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {what}"))
}

fn encode_trace_event(event: &TraceEvent, out: &mut Vec<u8>) {
    match *event {
        TraceEvent::Issue {
            replica,
            register,
            update,
        } => {
            out.push(0);
            write_varint(out, replica.index() as u64);
            write_varint(out, u64::from(register.0));
            write_varint(out, update);
        }
        TraceEvent::Apply { replica, update } => {
            out.push(1);
            write_varint(out, replica.index() as u64);
            write_varint(out, update);
        }
    }
}

fn decode_trace_event(buf: &[u8], at: &mut usize) -> io::Result<TraceEvent> {
    let kind = *buf.get(*at).ok_or_else(|| bad("missing event kind"))?;
    *at += 1;
    let replica = ReplicaId(get_varint(buf, at)? as usize);
    match kind {
        0 => {
            let register =
                u32::try_from(get_varint(buf, at)?).map_err(|_| bad("register id out of range"))?;
            let update = get_varint(buf, at)?;
            Ok(TraceEvent::Issue {
                replica,
                register: RegisterId(register),
                update,
            })
        }
        1 => Ok(TraceEvent::Apply {
            replica,
            update: get_varint(buf, at)?,
        }),
        other => Err(bad(&format!("unknown event kind {other}"))),
    }
}

/// Serializes a snapshot into its payload bytes (checksum and magic are
/// added by [`write_snapshot`]).
pub fn encode_snapshot<C: WireClock>(snap: &NodeSnapshot<C>) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, snap.wal_high);
    write_varint(&mut out, snap.seq);
    write_varint(&mut out, snap.issued);
    write_varint(&mut out, snap.sent);
    write_varint(&mut out, snap.received);
    write_varint(&mut out, snap.dropped_misrouted);
    write_varint(&mut out, snap.partitions.len() as u64);
    for slot in &snap.partitions {
        match slot {
            None => out.push(0),
            Some(part) => {
                out.push(1);
                write_varint(&mut out, part.state.id.index() as u64);
                write_varint(&mut out, part.issued);
                write_varint(&mut out, part.state.store.len() as u64);
                for entry in &part.state.store {
                    match entry {
                        None => out.push(0),
                        Some(v) => {
                            out.push(1);
                            write_varint(&mut out, *v);
                        }
                    }
                }
                part.state.clock.encode_wire(&mut out);
                write_varint(&mut out, part.state.pending.len() as u64);
                for update in &part.state.pending {
                    update.encode_wire(&mut out);
                }
                write_varint(&mut out, part.state.applies);
                write_varint(&mut out, part.state.buffered_applies);
                write_varint(&mut out, part.state.max_pending as u64);
                write_varint(&mut out, part.state.dropped_duplicates);
                write_varint(&mut out, part.state.seen.len() as u64);
                for id in &part.state.seen {
                    write_varint(&mut out, id.0);
                }
                write_varint(&mut out, part.log.len() as u64);
                for event in &part.log {
                    encode_trace_event(event, &mut out);
                }
            }
        }
    }
    write_varint(&mut out, snap.peers.len() as u64);
    for peer in &snap.peers {
        write_varint(&mut out, peer.next_seq);
        write_varint(&mut out, peer.recv_high);
        write_varint(&mut out, peer.window.len() as u64);
        for (seq, partition, update) in &peer.window {
            write_varint(&mut out, *seq);
            write_varint(&mut out, u64::from(partition.0));
            update.encode_wire(&mut out);
        }
    }
    out
}

/// Decodes a snapshot payload. `make_clock` maps a replica role to a
/// template clock (for both slot clocks and update timestamps).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on malformed input or trailing bytes.
pub fn decode_snapshot<C, F>(payload: &[u8], mut make_clock: F) -> io::Result<NodeSnapshot<C>>
where
    C: WireClock,
    F: FnMut(ReplicaId) -> Option<C>,
{
    let mut at = 0;
    let wal_high = get_varint(payload, &mut at)?;
    let seq = get_varint(payload, &mut at)?;
    let issued = get_varint(payload, &mut at)?;
    let sent = get_varint(payload, &mut at)?;
    let received = get_varint(payload, &mut at)?;
    let dropped_misrouted = get_varint(payload, &mut at)?;
    let parts = get_varint(payload, &mut at)? as usize;
    if parts > 1 << 20 {
        return Err(bad("absurd partition count"));
    }
    let mut partitions = Vec::with_capacity(parts.min(1 << 10));
    for _ in 0..parts {
        let present = *payload.get(at).ok_or_else(|| bad("missing slot flag"))?;
        at += 1;
        if present == 0 {
            partitions.push(None);
            continue;
        }
        let role = ReplicaId(get_varint(payload, &mut at)? as usize);
        let part_issued = get_varint(payload, &mut at)?;
        let store_len = get_varint(payload, &mut at)? as usize;
        if store_len > 1 << 24 {
            return Err(bad("absurd store size"));
        }
        let mut store = Vec::with_capacity(store_len.min(1 << 16));
        for _ in 0..store_len {
            let flag = *payload.get(at).ok_or_else(|| bad("missing store flag"))?;
            at += 1;
            store.push(if flag == 0 {
                None
            } else {
                Some(get_varint(payload, &mut at)?)
            });
        }
        let mut clock = make_clock(role).ok_or_else(|| bad("role out of range"))?;
        if !clock.decode_wire(payload, &mut at) {
            return Err(bad("malformed slot clock"));
        }
        let pending_len = get_varint(payload, &mut at)? as usize;
        if pending_len > 1 << 24 {
            return Err(bad("absurd pending size"));
        }
        let mut pending = Vec::with_capacity(pending_len.min(1 << 16));
        for _ in 0..pending_len {
            pending.push(
                Update::decode_wire(payload, &mut at, &mut make_clock)
                    .ok_or_else(|| bad("malformed pending update"))?,
            );
        }
        let applies = get_varint(payload, &mut at)?;
        let buffered_applies = get_varint(payload, &mut at)?;
        let max_pending = get_varint(payload, &mut at)? as usize;
        let dropped_duplicates = get_varint(payload, &mut at)?;
        let seen_len = get_varint(payload, &mut at)? as usize;
        if seen_len > 1 << 28 {
            return Err(bad("absurd dedup set size"));
        }
        let mut seen = Vec::with_capacity(seen_len.min(1 << 16));
        for _ in 0..seen_len {
            seen.push(UpdateId(get_varint(payload, &mut at)?));
        }
        let log_len = get_varint(payload, &mut at)? as usize;
        if log_len > 1 << 28 {
            return Err(bad("absurd log size"));
        }
        let mut log = Vec::with_capacity(log_len.min(1 << 16));
        for _ in 0..log_len {
            log.push(decode_trace_event(payload, &mut at)?);
        }
        partitions.push(Some(PartitionSnapshot {
            state: ReplicaState {
                id: role,
                store,
                clock,
                pending,
                applies,
                buffered_applies,
                max_pending,
                seen,
                dropped_duplicates,
            },
            issued: part_issued,
            log,
        }));
    }
    let peer_count = get_varint(payload, &mut at)? as usize;
    if peer_count > 1 << 20 {
        return Err(bad("absurd peer count"));
    }
    let mut peers = Vec::with_capacity(peer_count.min(1 << 10));
    for _ in 0..peer_count {
        let next_seq = get_varint(payload, &mut at)?;
        let recv_high = get_varint(payload, &mut at)?;
        let window_len = get_varint(payload, &mut at)? as usize;
        if window_len > 1 << 24 {
            return Err(bad("absurd window size"));
        }
        let mut window = Vec::with_capacity(window_len.min(1 << 16));
        for _ in 0..window_len {
            let seq = get_varint(payload, &mut at)?;
            let partition = u32::try_from(get_varint(payload, &mut at)?)
                .map_err(|_| bad("partition id out of range"))?;
            let update = Update::decode_wire(payload, &mut at, &mut make_clock)
                .ok_or_else(|| bad("malformed window update"))?;
            window.push((seq, PartitionId(partition), update));
        }
        peers.push(PeerSnapshot {
            next_seq,
            recv_high,
            window,
        });
    }
    if at != payload.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(NodeSnapshot {
        wal_high,
        seq,
        issued,
        sent,
        received,
        dropped_misrouted,
        partitions,
        peers,
    })
}

/// Atomically writes snapshot payload bytes to `path` (magic and checksum
/// added): the bytes land in `<path>.tmp` first and are renamed over the
/// previous snapshot, so a crash mid-write never destroys the old one.
///
/// # Errors
///
/// I/O errors from the write or rename.
pub fn write_snapshot(path: &Path, payload: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(SNAPSHOT_MAGIC)?;
        file.write_all(&crc32(payload).to_le_bytes())?;
        file.write_all(payload)?;
        file.flush()?;
    }
    fs::rename(&tmp, path)
}

/// Reads snapshot payload bytes from `path`; `Ok(None)` when no snapshot
/// exists yet.
///
/// # Errors
///
/// I/O errors; a wrong magic or checksum mismatch is
/// [`io::ErrorKind::InvalidData`] — a damaged snapshot must stop recovery
/// loudly rather than boot a half-restored node.
pub fn read_snapshot(path: &Path) -> io::Result<Option<Vec<u8>>> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < 12 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(bad("bad file magic (not a prcc snapshot)"));
    }
    let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..];
    let actual = crc32(payload);
    if stored != actual {
        return Err(bad(&format!(
            "checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(Some(payload.to_vec()))
}
