//! Property tests for the WAL format (mirroring the service crate's
//! `wire_props.rs` style): arbitrary update sequences round-trip through
//! records and the log file, a torn tail at ANY byte offset recovers the
//! longest valid record prefix, and a corrupted checksum is rejected with
//! a descriptive error instead of being silently truncated away.

use prcc_checker::UpdateId;
use prcc_clock::{EdgeProtocol, Protocol};
use prcc_core::Update;
use prcc_graph::{topologies, PartitionId, RegisterId, ShareGraph};
use prcc_net::VirtualTime;
use prcc_storage::{
    decode_record, decode_snapshot, encode_record, encode_snapshot, read_snapshot, scan_wal,
    write_snapshot, NodeSnapshot, PartitionSnapshot, PeerSnapshot, Wal, WalRecord, WAL_MAGIC,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

fn arb_share_graph() -> impl Strategy<Value = ShareGraph> {
    (2usize..6, 1usize..6, 2usize..4, 0u64..500).prop_map(|(n, regs, holders, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        topologies::random_connected(n, regs, holders, &mut rng)
    })
}

/// One random update per replica with a non-empty register set, with a
/// churned (non-trivial) clock.
fn build_updates(
    p: &EdgeProtocol,
    g: &ShareGraph,
    seed: u64,
) -> Vec<Update<prcc_clock::EdgeClock>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut updates = Vec::new();
    for k in g.replicas() {
        let regs: Vec<RegisterId> = g.registers_of(k).iter().collect();
        if regs.is_empty() {
            continue;
        }
        let mut clock = p.new_clock(k);
        for _ in 0..1 + (seed as usize % 7) {
            let x = regs[rng.gen_range(0..regs.len())];
            p.advance(k, &mut clock, x);
        }
        updates.push(Update {
            id: UpdateId(((k.index() as u64) << 40) | rng.gen_range(0u64..1 << 20)),
            issuer: k,
            register: regs[rng.gen_range(0..regs.len())],
            value: rng.gen_range(0u64..u64::MAX / 2),
            clock,
            issued_at: VirtualTime::ZERO,
            received_at: VirtualTime::ZERO,
        });
    }
    updates
}

/// A mixed sequence of issue and receipt records over random updates.
fn build_records(
    p: &EdgeProtocol,
    g: &ShareGraph,
    count: usize,
    seed: u64,
) -> Vec<WalRecord<prcc_clock::EdgeClock>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA5A5);
    (0..count)
        .map(|i| {
            if i % 4 == 3 {
                WalRecord::Checkpoint {
                    seals: (0..1 + rng.gen_range(0u32..3))
                        .map(|p| (PartitionId(p), rng.gen_range(1u64..500)))
                        .collect(),
                }
            } else if i % 3 == 2 {
                WalRecord::Issue {
                    partition: PartitionId(rng.gen_range(0..16)),
                    register: RegisterId(rng.gen_range(0..g.num_registers() as u32)),
                    value: rng.gen_range(0..u64::MAX / 2),
                    wire_id: (7 << 40) | i as u64,
                }
            } else {
                let updates = build_updates(p, g, seed ^ (i as u64) << 8);
                let sections = vec![(
                    PartitionId(rng.gen_range(0..16)),
                    updates
                        .into_iter()
                        .enumerate()
                        .map(|(k, u)| (1 + k as u64, u))
                        .collect(),
                )];
                WalRecord::Receipt {
                    peer: rng.gen_range(0..8),
                    sections,
                }
            }
        })
        .collect()
}

fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "prcc-wal-props-{}-{tag}-{case}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join("wal.bin")
}

fn assert_records_eq(a: &WalRecord<prcc_clock::EdgeClock>, b: &WalRecord<prcc_clock::EdgeClock>) {
    match (a, b) {
        (WalRecord::Checkpoint { seals: sa }, WalRecord::Checkpoint { seals: sb }) => {
            assert_eq!(sa, sb);
        }
        (
            WalRecord::Issue {
                partition: pa,
                register: ra,
                value: va,
                wire_id: wa,
            },
            WalRecord::Issue {
                partition: pb,
                register: rb,
                value: vb,
                wire_id: wb,
            },
        ) => {
            assert_eq!((pa, ra, va, wa), (pb, rb, vb, wb));
        }
        (
            WalRecord::Receipt {
                peer: ea,
                sections: sa,
            },
            WalRecord::Receipt {
                peer: eb,
                sections: sb,
            },
        ) => {
            assert_eq!(ea, eb);
            assert_eq!(sa.len(), sb.len());
            for ((pa, ua), (pb, ub)) in sa.iter().zip(sb) {
                assert_eq!(pa, pb);
                assert_eq!(ua.len(), ub.len());
                for ((qa, a), (qb, b)) in ua.iter().zip(ub) {
                    assert_eq!(qa, qb);
                    assert_eq!(
                        (a.id, a.issuer, a.register, a.value),
                        (b.id, b.issuer, b.register, b.value)
                    );
                    assert_eq!(a.clock, b.clock);
                }
            }
        }
        _ => panic!("record kind changed across the round trip"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary update sequences survive the record codec and a full
    /// write-to-file / reopen cycle byte-exactly.
    #[test]
    fn record_sequences_round_trip(g in arb_share_graph(), count in 1usize..12, seed in 0u64..300) {
        let p = EdgeProtocol::new(g.clone());
        let records = build_records(&p, &g, count, seed);
        let path = scratch("round-trip", seed * 64 + count as u64);
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).expect("open fresh");
            for (i, record) in records.iter().enumerate() {
                wal.append(&encode_record(100 + i as u64, record)).expect("append");
            }
        }
        let (_, recovered) = Wal::open(&path).expect("reopen");
        prop_assert_eq!(recovered.torn_bytes, 0);
        prop_assert_eq!(recovered.records.len(), records.len());
        for (i, payload) in recovered.records.iter().enumerate() {
            let (index, back) = decode_record(payload, |k| {
                (k.index() < g.num_replicas()).then(|| p.new_clock(k))
            }).expect("decode");
            prop_assert_eq!(index, 100 + i as u64);
            assert_records_eq(&back, &records[i]);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Torn-tail recovery at EVERY byte offset: truncating the log image
    /// anywhere yields exactly the records whose frames are fully
    /// contained in the prefix — never an error, never a partial record.
    #[test]
    fn torn_tail_recovers_longest_valid_prefix(
        g in arb_share_graph(),
        count in 1usize..6,
        seed in 0u64..200,
    ) {
        let p = EdgeProtocol::new(g.clone());
        let records = build_records(&p, &g, count, seed);
        // Build the image in memory, tracking each record's end offset.
        let mut image = WAL_MAGIC.to_vec();
        let mut ends = Vec::new();
        for (i, record) in records.iter().enumerate() {
            let payload = encode_record(i as u64 + 1, record);
            image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            image.extend_from_slice(&prcc_storage::crc32(&payload).to_le_bytes());
            image.extend_from_slice(&payload);
            ends.push(image.len());
        }
        for cut in 0..=image.len() {
            let scan = scan_wal(&image[..cut]).expect("torn tails never error");
            let expected = ends.iter().filter(|&&end| end <= cut).count();
            prop_assert_eq!(
                scan.records.len(), expected,
                "cut at {} must keep exactly the fully-contained records", cut
            );
            let expected_len = if expected == 0 {
                if cut >= WAL_MAGIC.len() { WAL_MAGIC.len() } else { 0 }
            } else {
                ends[expected - 1]
            };
            prop_assert_eq!(scan.valid_len, expected_len);
        }
        // The file-level path agrees with the pure scan, and the log stays
        // appendable after a real torn-tail truncation.
        if image.len() > WAL_MAGIC.len() + 1 {
            let cut = image.len() - 1; // tear inside the final record
            let path = scratch("torn", seed * 8 + count as u64);
            std::fs::write(&path, &image[..cut]).expect("write torn");
            let (mut wal, rec) = Wal::open(&path).expect("recover");
            prop_assert_eq!(rec.records.len(), ends.iter().filter(|&&e| e <= cut).count());
            prop_assert!(rec.torn_bytes > 0);
            wal.append(b"post-recovery").expect("append after recovery");
            let (_, rec) = Wal::open(&path).expect("reopen");
            prop_assert_eq!(rec.records.last().expect("appended"), &b"post-recovery".to_vec());
            std::fs::remove_file(&path).ok();
        }
    }

    /// Group commit is invisible to recovery: `append_batch` over arbitrary
    /// record sequences (split into two batches at an arbitrary point) is
    /// byte-identical on disk to N single appends, and a tear mid-batch
    /// recovers exactly the records whose frames the tear spared — the
    /// batch boundary grants no extra atomicity and costs none.
    #[test]
    fn append_batch_equals_single_appends_and_tears_like_them(
        g in arb_share_graph(),
        count in 1usize..10,
        seed in 0u64..200,
        split in 0usize..10,
        tear_back in 1usize..24,
    ) {
        let p = EdgeProtocol::new(g.clone());
        let records = build_records(&p, &g, count, seed);
        let payloads: Vec<Vec<u8>> = records
            .iter()
            .enumerate()
            .map(|(i, r)| encode_record(i as u64 + 1, r))
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();

        let single = scratch("grp-single", seed * 512 + count as u64);
        let grouped = scratch("grp-batch", seed * 512 + count as u64);
        let _ = std::fs::remove_file(&single);
        let _ = std::fs::remove_file(&grouped);
        {
            let (mut wal, _) = Wal::open(&single).expect("open single");
            for payload in &refs {
                wal.append(payload).expect("append");
            }
        }
        {
            let (mut wal, _) = Wal::open(&grouped).expect("open grouped");
            let at = split % (refs.len() + 1); // empty batches allowed
            wal.append_batch(&refs[..at]).expect("first batch");
            wal.append_batch(&refs[at..]).expect("second batch");
        }
        let image = std::fs::read(&grouped).expect("read grouped");
        prop_assert_eq!(
            &std::fs::read(&single).expect("read single"),
            &image,
            "group commit must leave bytes identical to single appends"
        );

        // Tear inside the batch-written tail: recovery keeps exactly the
        // fully-contained prefix, same as it would for single appends.
        let cut = image.len() - (tear_back % (image.len() - WAL_MAGIC.len())).max(1);
        std::fs::write(&grouped, &image[..cut]).expect("tear");
        let (_, rec) = Wal::open(&grouped).expect("recover mid-batch");
        prop_assert!(
            rec.records.len() < count,
            "cutting into the final frame must lose at least that record \
             (got {} of {count}, torn_bytes {})",
            rec.records.len(),
            rec.torn_bytes,
        );
        for (payload, original) in rec.records.iter().zip(&payloads) {
            prop_assert_eq!(payload, original, "recovered record diverged");
        }
        std::fs::remove_file(&single).ok();
        std::fs::remove_file(&grouped).ok();
    }

    /// Corrupting any payload byte of a COMPLETE record is detected by the
    /// checksum and rejected with a descriptive error — never silently
    /// dropped (later records could otherwise be un-acknowledged en masse)
    /// and never parsed.
    #[test]
    fn corrupted_checksum_is_rejected_with_a_descriptive_error(
        g in arb_share_graph(),
        seed in 0u64..200,
        victim_byte in 0usize..4096,
        flip in 1u8..255,
    ) {
        let p = EdgeProtocol::new(g.clone());
        let records = build_records(&p, &g, 3, seed);
        let mut image = WAL_MAGIC.to_vec();
        let mut payload_spans = Vec::new();
        for (i, record) in records.iter().enumerate() {
            let payload = encode_record(i as u64 + 1, record);
            image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            image.extend_from_slice(&prcc_storage::crc32(&payload).to_le_bytes());
            let start = image.len();
            image.extend_from_slice(&payload);
            payload_spans.push(start..image.len());
        }
        // Flip one byte inside the SECOND record's payload: the records
        // after it are intact, so truncation-style recovery would lose
        // durable data — the scan must refuse instead.
        let span = payload_spans[1].clone();
        let at = span.start + victim_byte % span.len();
        image[at] ^= flip;
        let err = scan_wal(&image).expect_err("corruption must be detected");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        prop_assert!(msg.contains("checksum mismatch"), "undiagnostic error: {}", msg);
        prop_assert!(msg.contains("byte"), "error must name the offset: {}", msg);
    }

    /// Truncating an encoded record payload anywhere never decodes, and
    /// trailing bytes are rejected (records are exact).
    #[test]
    fn truncated_record_payloads_rejected(g in arb_share_graph(), seed in 0u64..100) {
        let p = EdgeProtocol::new(g.clone());
        let records = build_records(&p, &g, 2, seed);
        for record in &records {
            let payload = encode_record(42, record);
            for cut in 0..payload.len() {
                prop_assert!(
                    decode_record::<prcc_clock::EdgeClock, _>(&payload[..cut], |k| {
                        (k.index() < g.num_replicas()).then(|| p.new_clock(k))
                    }).is_err(),
                    "truncation at {} parsed", cut
                );
            }
            let mut padded = payload.clone();
            padded.push(0);
            prop_assert!(decode_record::<prcc_clock::EdgeClock, _>(&padded, |k| {
                (k.index() < g.num_replicas()).then(|| p.new_clock(k))
            }).is_err(), "trailing byte accepted");
        }
    }

    /// Node snapshots — replica state, checkpoint summaries, live log
    /// suffixes, link watermarks and windows — survive the codec and the
    /// checksummed file store byte-exactly; corrupting the stored file is
    /// refused.
    #[test]
    fn snapshots_round_trip_and_reject_corruption(g in arb_share_graph(), seed in 0u64..200) {
        use prcc_checker::trace::TraceEvent;
        use prcc_checker::TraceCheckpoint;
        let p = EdgeProtocol::new(g.clone());
        let updates = build_updates(&p, &g, seed);
        prop_assume!(!updates.is_empty());
        let role = updates[0].issuer;
        let state = prcc_core::ReplicaState {
            id: role,
            store: (0..g.num_registers())
                .map(|i| (i % 2 == 0).then_some(seed + i as u64))
                .collect(),
            clock: updates[0].clock.clone(),
            pending: updates.clone(),
            applies: seed,
            buffered_applies: seed / 2,
            max_pending: 7,
        };
        // A non-trivial sealed-prefix summary (the v2 replacement for the
        // O(history) full log).
        let mut checkpoint = TraceCheckpoint::new(g.num_replicas(), g.num_registers());
        checkpoint.absorb(
            &[
                TraceEvent::Issue { replica: role, register: updates[0].register, update: 3 },
                TraceEvent::Apply { replica: role, update: (1 << 40) | 2 },
            ],
            |w| Some(prcc_graph::ReplicaId((w >> 40) as usize % g.num_replicas())),
        );
        let snap = NodeSnapshot {
            wal_high: 1 + seed,
            seq: 99,
            issued: 12,
            sent: 30,
            received: 28,
            dropped_misrouted: 0,
            duplicates_dropped: 3,
            partitions: vec![
                None,
                Some(PartitionSnapshot {
                    state,
                    issued: 12,
                    checkpoint,
                    log: vec![
                        TraceEvent::Issue { replica: role, register: updates[0].register, update: 5 },
                        TraceEvent::Apply { replica: role, update: 6 },
                    ],
                }),
            ],
            peers: vec![
                PeerSnapshot {
                    next_seq: 9,
                    acked_high: 4,
                    recv_high: 4,
                    recv_residue: vec![6, 9],
                    window: updates
                        .iter()
                        .enumerate()
                        .map(|(k, u)| (5 + k as u64, PartitionId(1), u.clone()))
                        .collect(),
                },
                PeerSnapshot {
                    next_seq: 1,
                    acked_high: 0,
                    recv_high: 0,
                    recv_residue: Vec::new(),
                    window: Vec::new(),
                },
            ],
        };
        let payload = encode_snapshot(&snap);
        let back = decode_snapshot(2, &payload, g.num_replicas(), |k| {
            (k.index() < g.num_replicas()).then(|| p.new_clock(k))
        }).expect("decode");
        prop_assert_eq!(&back, &snap);
        // Deterministic encoding: encode(decode(encode(x))) == encode(x).
        prop_assert_eq!(encode_snapshot(&back), payload.clone());

        let path = scratch("snap", seed);
        write_snapshot(&path, &payload, seed % 2 == 0).expect("write");
        let (version, read) = read_snapshot(&path).expect("read").expect("present");
        prop_assert_eq!(version, 2);
        prop_assert_eq!(read, payload.clone());
        let mut bytes = std::fs::read(&path).expect("raw");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).expect("corrupt");
        let err = read_snapshot(&path).expect_err("corrupt snapshot must refuse");
        prop_assert!(err.to_string().contains("checksum mismatch"), "{}", err);
        std::fs::remove_file(&path).ok();
    }
}
