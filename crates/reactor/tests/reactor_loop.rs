//! End-to-end exercises of the reactor over real loopback sockets: the
//! accept path, the dial path, command delivery and tick-end flush
//! batching, one-shot timers, overflow teardown, and redial-after-drop.

use prcc_reactor::{BufPool, Ctx, Driver, Fate, Lease, Reactor, ReactorHandle};
use prcc_telemetry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn write_frame(sock: &mut TcpStream, body: &[u8]) {
    sock.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
    sock.write_all(body).unwrap();
}

fn read_frame(sock: &mut TcpStream) -> Option<Vec<u8>> {
    let mut prefix = [0u8; 4];
    match sock.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(_) => return None,
    }
    let len = u32::from_le_bytes(prefix) as usize;
    let mut body = vec![0u8; len];
    sock.read_exact(&mut body).unwrap();
    Some(body)
}

/// Echoes every inbound frame back on the same connection.
struct EchoDriver;

impl Driver for EchoDriver {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, body: Lease) -> std::io::Result<()> {
        let mut out = ctx.pool().lease(body.len() + 4);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        ctx.send(out);
        Ok(())
    }
}

fn spawn_echo(reactor: &Reactor) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = reactor.handle().clone();
    reactor.handle().listen(
        listener,
        Box::new(move |sock, _addr| {
            handle.register(Some(sock), Box::new(EchoDriver));
        }),
    );
    addr
}

fn new_reactor(threads: usize, bound: usize) -> Reactor {
    let registry = Registry::new();
    let pool = BufPool::new(&registry);
    Reactor::new("test", threads, bound, pool, &registry).unwrap()
}

#[test]
fn echo_round_trips_across_many_connections() {
    let reactor = new_reactor(2, 1 << 20);
    let addr = spawn_echo(&reactor);
    let mut socks: Vec<TcpStream> = (0..32).map(|_| TcpStream::connect(addr).unwrap()).collect();
    for (i, sock) in socks.iter_mut().enumerate() {
        let body = format!("hello from {i}").into_bytes();
        write_frame(sock, &body);
        assert_eq!(read_frame(sock).unwrap(), body);
    }
    // Interleaved second round on live connections.
    for sock in socks.iter_mut() {
        write_frame(sock, b"again");
    }
    for sock in socks.iter_mut() {
        assert_eq!(read_frame(sock).unwrap(), b"again");
    }
    reactor.stop(true);
    reactor.join();
}

#[test]
fn large_frames_survive_partial_reads_and_writes() {
    let reactor = new_reactor(1, 64 << 20);
    let addr = spawn_echo(&reactor);
    let mut sock = TcpStream::connect(addr).unwrap();
    // Large enough to guarantee multiple read/write bursts through the
    // socket buffers.
    let body: Vec<u8> = (0..3_000_000u32).map(|i| i as u8).collect();
    let writer_body = body.clone();
    let mut writer = sock.try_clone().unwrap();
    let t = std::thread::spawn(move || write_frame(&mut writer, &writer_body));
    assert_eq!(read_frame(&mut sock).unwrap(), body);
    t.join().unwrap();
    reactor.stop(true);
    reactor.join();
}

/// Dials out on start, sends a greeting once connected, forwards every
/// reply to an mpsc channel, and redials (after a short timer) if the
/// connection drops before `rounds` replies arrived.
struct DialDriver {
    addr: SocketAddr,
    replies: mpsc::Sender<Vec<u8>>,
    rounds: usize,
}

impl Driver for DialDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.dial(self.addr);
    }

    fn on_connected(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = ctx.pool().lease(16);
        out.extend_from_slice(&(5u32).to_le_bytes());
        out.extend_from_slice(b"hello");
        ctx.send(out);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, body: Lease) -> std::io::Result<()> {
        self.rounds -= 1;
        let _ = self.replies.send(body.to_vec());
        if self.rounds == 0 {
            ctx.close();
            Ok(())
        } else {
            // Force a teardown from our side, then redial via the timer.
            Err(std::io::Error::other("drop it"))
        }
    }

    fn on_disconnect(&mut self, ctx: &mut Ctx<'_>, _err: Option<&std::io::Error>) -> Fate {
        if self.rounds == 0 {
            return Fate::Remove;
        }
        ctx.set_timer(Duration::from_millis(5));
        Fate::Keep
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>) {
        ctx.dial(self.addr);
    }
}

#[test]
fn dialing_driver_reconnects_until_done() {
    let reactor = new_reactor(2, 1 << 20);
    let addr = spawn_echo(&reactor);
    let (tx, rx) = mpsc::channel();
    reactor.handle().register(
        None,
        Box::new(DialDriver {
            addr,
            replies: tx,
            rounds: 3,
        }),
    );
    for _ in 0..3 {
        let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(reply, b"hello");
    }
    reactor.stop(true);
    reactor.join();
}

/// Counts commands; on flush emits ONE frame carrying the count gathered
/// this tick (the coalescing contract).
struct BatchDriver {
    per_flush: mpsc::Sender<u64>,
    pending: u64,
}

impl Driver for BatchDriver {
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _body: Lease) -> std::io::Result<()> {
        Ok(())
    }

    fn on_command(&mut self, _ctx: &mut Ctx<'_>, cmd: Box<dyn std::any::Any + Send>) {
        let n = *cmd.downcast::<u64>().expect("u64 command");
        self.pending += n;
    }

    fn on_flush(&mut self, _ctx: &mut Ctx<'_>) {
        if self.pending > 0 {
            let _ = self.per_flush.send(self.pending);
            self.pending = 0;
        }
    }
}

#[test]
fn commands_coalesce_per_tick() {
    let reactor = new_reactor(1, 1 << 20);
    let (tx, rx) = mpsc::channel();
    let conn = reactor.handle().register(
        None,
        Box::new(BatchDriver {
            per_flush: tx,
            pending: 0,
        }),
    );
    // A burst pushed while the worker may be mid-tick: every command must
    // be delivered, and bursts should coalesce into few flushes.
    for _ in 0..100 {
        reactor.handle().command(conn, Box::new(1u64));
    }
    let mut total = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while total < 100 {
        assert!(Instant::now() < deadline, "lost commands: {total}/100");
        if let Ok(n) = rx.recv_timeout(Duration::from_millis(100)) {
            total += n;
        }
    }
    assert_eq!(total, 100);
    reactor.stop(true);
    reactor.join();
}

/// On command, floods `frames` copies of a 1 KiB frame into the out
/// queue; reports any disconnect error over a channel.
struct FloodDriver {
    frames: usize,
    errors: mpsc::Sender<String>,
}

impl Driver for FloodDriver {
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _body: Lease) -> std::io::Result<()> {
        Ok(())
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_>, _cmd: Box<dyn std::any::Any + Send>) {
        for _ in 0..self.frames {
            let mut out = ctx.pool().lease(1028);
            out.extend_from_slice(&(1024u32).to_le_bytes());
            out.resize(1028, 7);
            ctx.send(out);
        }
    }

    fn on_disconnect(&mut self, _ctx: &mut Ctx<'_>, err: Option<&std::io::Error>) -> Fate {
        let _ = self
            .errors
            .send(err.map(|e| e.to_string()).unwrap_or_default());
        Fate::Remove
    }
}

/// Binds a listener whose accepts register a [`FloodDriver`] and report
/// the accepted conn id, so the test can aim commands precisely.
fn spawn_flooder(
    reactor: &Reactor,
    frames: usize,
    errors: mpsc::Sender<String>,
    conns: mpsc::Sender<prcc_reactor::ConnId>,
) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle: ReactorHandle = reactor.handle().clone();
    reactor.handle().listen(
        listener,
        Box::new(move |sock, _| {
            let conn = handle.register(
                Some(sock),
                Box::new(FloodDriver {
                    frames,
                    errors: errors.clone(),
                }),
            );
            let _ = conns.send(conn);
        }),
    );
    addr
}

#[test]
fn overflow_tears_the_connection_down_loudly() {
    let registry = Registry::new();
    let pool = BufPool::new(&registry);
    // Tiny bound: a 1000-frame flood must overflow rather than buffer.
    let reactor = Reactor::new("flood", 1, 8 << 10, pool, &registry).unwrap();
    let (err_tx, err_rx) = mpsc::channel();
    let (conn_tx, conn_rx) = mpsc::channel();
    let addr = spawn_flooder(&reactor, 1000, err_tx, conn_tx);
    // Connect but never read, so nothing drains while the flood lands.
    let _victim = TcpStream::connect(addr).unwrap();
    let conn = conn_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    reactor.handle().command(conn, Box::new(()));
    let err = err_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    assert!(
        err.contains("outbound queue overflow"),
        "expected loud overflow, got: {err}"
    );
    let snap = registry.snapshot();
    assert!(snap.counter("reactor_overflows").unwrap_or(0) >= 1);
    assert!(snap.gauge("reactor_outq_hiwat").unwrap_or(0) >= 8 << 10);
    reactor.stop(false);
    reactor.join();
}

#[test]
fn graceful_stop_flushes_queued_output() {
    let registry = Registry::new();
    let pool = BufPool::new(&registry);
    let reactor = Reactor::new("drain", 1, 1 << 20, pool, &registry).unwrap();
    let (err_tx, _err_rx) = mpsc::channel();
    let (conn_tx, conn_rx) = mpsc::channel();
    let addr = spawn_flooder(&reactor, 200, err_tx, conn_tx);
    let mut sock = TcpStream::connect(addr).unwrap();
    let conn = conn_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    // The command (queue 200 KiB) and the stop land in the same worker
    // inbox in order: the stop must drain what the command queued.
    reactor.handle().command(conn, Box::new(()));
    reactor.stop(true);
    for _ in 0..200 {
        let body = read_frame(&mut sock).expect("graceful stop dropped queued frames");
        assert_eq!(body.len(), 1024);
    }
    reactor.join();
}

#[test]
fn kill_severs_sockets_and_releases_listeners() {
    let reactor = new_reactor(2, 1 << 20);
    let addr = spawn_echo(&reactor);
    let mut sock = TcpStream::connect(addr).unwrap();
    write_frame(&mut sock, b"ping");
    assert_eq!(read_frame(&mut sock).unwrap(), b"ping");
    reactor.stop(false);
    reactor.join();
    // The socket is severed...
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert!(
        read_frame(&mut sock).is_none(),
        "kill must sever connections"
    );
    // ...and the port is free to rebind (listener dropped).
    let rebind = TcpListener::bind(addr);
    assert!(rebind.is_ok(), "kill must release the listener port");
}
