//! A size-classed pool of reusable byte buffers for the node's data path.
//!
//! Every frame read and every flush encode used to allocate (and free) a
//! fresh `Vec<u8>`; at tens of thousands of frames per second that churn
//! is pure transport fat. The pool keeps returned buffers on power-of-two
//! *shelves* and hands them back out on the next lease, so the steady
//! state recycles the same handful of buffers across every peer reader,
//! client connection and sender flush of a node.
//!
//! Telemetry is wired into the node's `prcc-telemetry` registry:
//!
//! * `pool_hits` / `pool_misses` — counters: leases served from a shelf
//!   vs. leases that had to allocate. After warmup the miss count should
//!   plateau (misses only happen when concurrency exceeds everything the
//!   pool has ever seen).
//! * `pool_outstanding` — gauge: buffers currently leased out. This is
//!   the RSS bound for the pooled path: hundreds of idle client
//!   connections hold zero buffers because leases live only for the
//!   duration of one frame read or one flush write.
//!
//! Buffers above the largest shelf class (1 MiB) are served by plain
//! allocation and *dropped* on return — a rare oversized frame must not
//! pin megabytes to a shelf forever. Shelf depth is bounded for the same
//! reason: a burst may allocate, but the pool's idle footprint stays
//! `SHELF_DEPTH × Σ class sizes` at worst.

use parking_lot::Mutex;
use prcc_telemetry::{Counter, Gauge, Registry};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest shelf class, in bytes.
const MIN_CLASS: usize = 256;
/// Largest shelf class, in bytes; bigger requests bypass the shelves.
const MAX_CLASS: usize = 1 << 20;
/// Shelves from 256 B to 1 MiB, doubling.
const CLASSES: usize = (MAX_CLASS.trailing_zeros() - MIN_CLASS.trailing_zeros() + 1) as usize;
/// Most buffers one shelf retains; returns beyond this are dropped.
const SHELF_DEPTH: usize = 64;

struct PoolInner {
    shelves: [Mutex<Vec<Vec<u8>>>; CLASSES],
    hits: Counter,
    misses: Counter,
    /// Authoritative live-lease count; mirrored into the gauge on every
    /// change (gauges are set-only).
    outstanding_now: AtomicU64,
    outstanding: Gauge,
}

impl PoolInner {
    /// Smallest shelf index whose class size covers `cap`, or `None` when
    /// the request is larger than the biggest shelf.
    fn class_for(cap: usize) -> Option<usize> {
        if cap > MAX_CLASS {
            return None;
        }
        let bits = cap.max(MIN_CLASS).next_power_of_two().trailing_zeros();
        Some((bits - MIN_CLASS.trailing_zeros()) as usize)
    }

    fn track_lease(&self) {
        let now = self.outstanding_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.outstanding.set(now);
    }

    fn track_return(&self) {
        let now = self.outstanding_now.fetch_sub(1, Ordering::Relaxed) - 1;
        self.outstanding.set(now);
    }

    fn give_back(&self, buf: Vec<u8>) {
        self.track_return();
        // Shelve by what the buffer can actually hold: a lease that grew
        // past its class goes back on the bigger shelf it now serves.
        let Some(mut class) = Self::class_for(buf.capacity()) else {
            return; // oversized: drop, don't pin megabytes to a shelf
        };
        if buf.capacity() < MIN_CLASS {
            return; // too small to be worth recycling
        }
        // `class_for` rounds capacity *up*; a buffer whose capacity sits
        // between classes cannot serve that bigger class, so it belongs
        // one shelf down.
        if buf.capacity() < class_size(class) {
            if class == 0 {
                return;
            }
            class -= 1;
        }
        let mut shelf = self.shelves[class].lock();
        if shelf.len() < SHELF_DEPTH {
            shelf.push(buf);
        }
    }
}

/// Size in bytes of shelf `class`.
fn class_size(class: usize) -> usize {
    MIN_CLASS << class
}

/// A shared, size-classed buffer pool (cheap to clone — all clones share
/// the shelves and the metrics).
#[derive(Clone)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

impl BufPool {
    /// Creates a pool whose `pool_hits`/`pool_misses` counters and
    /// `pool_outstanding` gauge live in `registry`.
    pub fn new(registry: &Registry) -> Self {
        BufPool {
            inner: Arc::new(PoolInner {
                shelves: std::array::from_fn(|_| Mutex::named(Vec::new(), "service.pool_shelf")),
                hits: registry.counter("pool_hits"),
                misses: registry.counter("pool_misses"),
                outstanding_now: AtomicU64::new(0),
                outstanding: registry.gauge("pool_outstanding"),
            }),
        }
    }

    /// Leases a cleared buffer with capacity for at least `cap` bytes.
    /// Dropping the [`Lease`] returns the buffer to its shelf.
    pub fn lease(&self, cap: usize) -> Lease {
        let inner = &self.inner;
        let buf = match PoolInner::class_for(cap) {
            Some(class) => {
                let shelved = inner.shelves[class].lock().pop();
                match shelved {
                    Some(mut buf) => {
                        inner.hits.inc();
                        buf.clear();
                        buf
                    }
                    None => {
                        inner.misses.inc();
                        Vec::with_capacity(class_size(class))
                    }
                }
            }
            None => {
                // Above the largest class: plain allocation, not shelved.
                inner.misses.inc();
                Vec::with_capacity(cap)
            }
        };
        inner.track_lease();
        Lease {
            buf,
            pool: Arc::clone(inner),
        }
    }

    /// Buffers currently leased out (the live RSS bound).
    pub fn outstanding(&self) -> u64 {
        self.inner.outstanding_now.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

/// A pooled buffer on loan: derefs to its `Vec<u8>`, returns to the pool
/// on drop.
pub struct Lease {
    buf: Vec<u8>,
    pool: Arc<PoolInner>,
}

impl Deref for Lease {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for Lease {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.pool.give_back(std::mem::take(&mut self.buf));
    }
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease")
            .field("len", &self.buf.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> (BufPool, Registry) {
        let registry = Registry::new();
        (BufPool::new(&registry), registry)
    }

    #[test]
    fn first_lease_misses_second_hits() {
        let (pool, registry) = pool();
        {
            let mut a = pool.lease(1000);
            a.extend_from_slice(&[1, 2, 3]);
            assert_eq!(pool.outstanding(), 1);
        }
        assert_eq!(pool.outstanding(), 0);
        let b = pool.lease(900);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert!(b.capacity() >= 900);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool_hits"), Some(1));
        assert_eq!(snap.counter("pool_misses"), Some(1));
        assert_eq!(snap.gauge("pool_outstanding"), Some(1));
    }

    #[test]
    fn concurrent_leases_each_allocate_then_all_recycle() {
        let (pool, registry) = pool();
        let a = pool.lease(512);
        let b = pool.lease(512);
        assert_eq!(pool.outstanding(), 2);
        drop(a);
        drop(b);
        let _c = pool.lease(512);
        let _d = pool.lease(512);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("pool_misses"),
            Some(2),
            "only the cold start misses"
        );
        assert_eq!(snap.counter("pool_hits"), Some(2));
    }

    #[test]
    fn classes_are_separate() {
        let (pool, registry) = pool();
        drop(pool.lease(300)); // shelves a 512 B buffer
        let _big = pool.lease(100_000); // must not get the small one
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool_hits"), Some(0));
        assert_eq!(snap.counter("pool_misses"), Some(2));
    }

    #[test]
    fn oversized_buffers_are_not_shelved() {
        let (pool, registry) = pool();
        drop(pool.lease(MAX_CLASS * 2));
        drop(pool.lease(MAX_CLASS * 2));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("pool_misses"),
            Some(2),
            "above the largest class every lease allocates"
        );
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn grown_lease_reshelves_by_its_new_capacity() {
        let (pool, _registry) = pool();
        {
            let mut small = pool.lease(256);
            small.resize(8192, 0); // grows past its class
        }
        let recycled = pool.lease(8192);
        assert!(
            recycled.capacity() >= 8192,
            "the grown buffer must serve the shelf its capacity covers"
        );
    }

    #[test]
    fn shelf_depth_is_bounded() {
        let (pool, _registry) = pool();
        let leases: Vec<Lease> = (0..SHELF_DEPTH + 10).map(|_| pool.lease(256)).collect();
        assert_eq!(pool.outstanding(), (SHELF_DEPTH + 10) as u64);
        drop(leases);
        assert_eq!(pool.outstanding(), 0);
        // Nothing to assert directly about dropped surplus without peeking
        // at shelf internals; the property under test is that this does
        // not panic and outstanding returns to zero.
    }
}
