//! The event loop: a small fixed pool of epoll worker threads driving
//! per-connection state machines.
//!
//! Each worker owns one [`mio::Poll`] plus the connections assigned to
//! it (round-robin by [`ConnId`]). A connection is a [`Driver`] — the
//! protocol state machine — wired to a non-blocking socket through an
//! incremental [`FrameDecoder`] on the read side and a bounded
//! [`OutQueue`] on the write side. Cross-thread work (frames from the
//! core thread, commands, registrations) arrives through a per-worker
//! locked inbox plus an eventfd [`mio::Waker`].
//!
//! ## Tick discipline
//!
//! One `epoll_wait` return is one *tick*. A tick processes, in order:
//! readiness events (connect completions, reads → [`Driver::on_frame`],
//! accepts), the cross-thread inbox, due timers, then a single
//! [`Driver::on_flush`] per connection touched this tick — which is
//! where batching drivers coalesce everything the tick delivered into
//! frames — and finally one vectored flush per connection with queued
//! output. Commands that arrive together therefore share one syscall on
//! the way out, batching by event-loop cadence with no flush timer.
//!
//! ## Backpressure contract
//!
//! `ctx.send` / `handle.send` never block. A connection whose outbound
//! queue hits its byte bound is torn down loudly (counted in
//! `reactor_overflows`, logged, `on_disconnect` with an "outbound queue
//! overflow" error) — peers redial and resend from their durable
//! windows; a slow client loses its connection instead of OOMing the
//! node. A flush that hits `WouldBlock` re-arms write interest (counted
//! in `reactor_rearms`) and resumes when the kernel drains.

use crate::bufpool::{BufPool, Lease};
use crate::decode::{Decoded, FrameDecoder};
use crate::outq::OutQueue;
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use prcc_telemetry::{Counter, Gauge, Registry};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Stable identity of a reactor connection. Assigned at registration and
/// never reused; it survives socket teardown and redial (a peer link
/// keeps its `ConnId` across reconnects).
pub type ConnId = u64;

/// Callback invoked by a listening socket for each accepted connection
/// (already set non-blocking). Typically calls
/// [`ReactorHandle::register`] with a protocol driver.
pub type AcceptFn = Box<dyn FnMut(TcpStream, SocketAddr) + Send>;

/// The waker's reserved token (no connection ever gets this id).
const WAKER_TOKEN: Token = Token(usize::MAX);

/// Events drained per `epoll_wait` call.
const EVENTS_PER_TICK: usize = 1024;

/// How long a graceful stop keeps trying to flush queued output before
/// dropping connections.
const DRAIN_DEADLINE: Duration = Duration::from_secs(1);

/// What should happen to a connection after [`Driver::on_disconnect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Remove the connection; its `ConnId` goes dead.
    Remove,
    /// Keep the (socketless) connection registered — the driver has
    /// scheduled a timer or dial to bring it back (peer links redialing
    /// with backoff).
    Keep,
}

/// A connection's protocol state machine. All callbacks run on the
/// connection's worker thread; they must never block — socket I/O goes
/// through [`Ctx::send`] and the decode loop, waiting goes through
/// [`Ctx::set_timer`].
pub trait Driver: Send {
    /// The connection was registered with the reactor (socket may or may
    /// not be attached yet). Outbound drivers start their dial here.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// A [`Ctx::dial`] completed successfully.
    fn on_connected(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// One complete inbound frame. An `Err` tears the connection down
    /// (routed to [`Driver::on_disconnect`] with the error).
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: Lease) -> io::Result<()>;

    /// A message sent by another thread via [`ReactorHandle::command`].
    fn on_command(&mut self, ctx: &mut Ctx<'_>, cmd: Box<dyn Any + Send>) {
        let _ = (ctx, cmd);
    }

    /// The timer set by [`Ctx::set_timer`] fired (timers are one-shot).
    fn on_timer(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// End of a tick in which this connection received frames or
    /// commands: the batching hook. Emit coalesced frames here.
    fn on_flush(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// The socket died (clean EOF: `None`; error, overflow, or decode
    /// failure: `Some`). The socket and any queued output are already
    /// gone. Return [`Fate::Keep`] to hold the registration for a redial.
    fn on_disconnect(&mut self, ctx: &mut Ctx<'_>, err: Option<&io::Error>) -> Fate {
        let _ = (ctx, err);
        Fate::Remove
    }
}

/// Telemetry handles for the reactor, registered as `reactor_*` metrics.
#[derive(Clone)]
pub struct ReactorMetrics {
    /// `epoll_wait` returns across all workers (including timeouts).
    pub wakeups: Counter,
    /// Readiness events delivered; `events / wakeups` is the
    /// events-per-wakeup batching ratio.
    pub events: Counter,
    /// Write-interest re-arms after a `WouldBlock` flush.
    pub rearms: Counter,
    /// Connections torn down for outbound-queue overflow.
    pub overflows: Counter,
    /// Highest per-connection outbound queue depth (bytes) ever seen.
    pub outq_hiwat: Gauge,
}

impl ReactorMetrics {
    /// Registers the reactor metric set in `registry`.
    pub fn new(registry: &Registry) -> ReactorMetrics {
        ReactorMetrics {
            wakeups: registry.counter("reactor_wakeups"),
            events: registry.counter("reactor_events"),
            rearms: registry.counter("reactor_rearms"),
            overflows: registry.counter("reactor_overflows"),
            outq_hiwat: registry.gauge("reactor_outq_hiwat"),
        }
    }
}

enum Op {
    Register {
        conn: ConnId,
        sock: Option<TcpStream>,
        driver: Box<dyn Driver>,
    },
    Listen {
        conn: ConnId,
        listener: TcpListener,
        accept: AcceptFn,
    },
    Send {
        conn: ConnId,
        frame: Lease,
    },
    Command {
        conn: ConnId,
        cmd: Box<dyn Any + Send>,
    },
    Close {
        conn: ConnId,
    },
    Stop {
        graceful: bool,
    },
}

struct WorkerShared {
    inbox: Mutex<Vec<Op>>,
    waker: Waker,
}

struct Shared {
    workers: Vec<Arc<WorkerShared>>,
    next_conn: AtomicU64,
    pool: BufPool,
    metrics: ReactorMetrics,
    outq_bound: usize,
}

/// Cheap-to-clone handle for talking to the reactor from any thread:
/// register connections and listeners, push frames and commands, stop.
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<Shared>,
}

impl ReactorHandle {
    fn worker_of(&self, conn: ConnId) -> usize {
        (conn % self.shared.workers.len() as u64) as usize
    }

    fn push_op(&self, worker: usize, op: Op) {
        let w = &self.shared.workers[worker];
        let was_empty = {
            let mut inbox = w.inbox.lock();
            let was_empty = inbox.is_empty();
            inbox.push(op);
            was_empty
        };
        if was_empty {
            let _ = w.waker.wake();
        }
    }

    /// Registers a connection, assigning it to a worker round-robin.
    /// With a socket (must be a connected stream; it is made non-blocking
    /// by the worker) the driver starts reading immediately; without one,
    /// the driver is expected to [`Ctx::dial`] from its `on_start`.
    pub fn register(&self, sock: Option<TcpStream>, driver: Box<dyn Driver>) -> ConnId {
        let conn = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
        self.push_op(self.worker_of(conn), Op::Register { conn, sock, driver });
        conn
    }

    /// Registers a listening socket; `accept` runs on the listener's
    /// worker for every new connection.
    pub fn listen(&self, listener: TcpListener, accept: AcceptFn) -> ConnId {
        let conn = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
        self.push_op(
            self.worker_of(conn),
            Op::Listen {
                conn,
                listener,
                accept,
            },
        );
        conn
    }

    /// Queues one framed buffer on `conn`'s outbound queue (flushed this
    /// tick). Never blocks; overflow tears the connection down. Frames
    /// for a dead `ConnId` are silently dropped.
    pub fn send(&self, conn: ConnId, frame: Lease) {
        self.push_op(self.worker_of(conn), Op::Send { conn, frame });
    }

    /// Delivers a typed message to `conn`'s driver
    /// ([`Driver::on_command`]).
    pub fn command(&self, conn: ConnId, cmd: Box<dyn Any + Send>) {
        self.push_op(self.worker_of(conn), Op::Command { conn, cmd });
    }

    /// Tears `conn` down (listener or connection) unconditionally —
    /// `on_disconnect` is notified but its [`Fate`] is ignored.
    pub fn close(&self, conn: ConnId) {
        self.push_op(self.worker_of(conn), Op::Close { conn });
    }

    /// Stops every worker. `graceful` flushes queued output (bounded by
    /// a short deadline) before dropping connections; `!graceful` severs
    /// every socket and listener immediately (crash semantics).
    pub fn stop(&self, graceful: bool) {
        for idx in 0..self.shared.workers.len() {
            self.push_op(idx, Op::Stop { graceful });
        }
    }

    /// The buffer pool shared by every connection of this reactor.
    pub fn pool(&self) -> &BufPool {
        &self.shared.pool
    }

    /// The reactor's telemetry handles.
    pub fn metrics(&self) -> &ReactorMetrics {
        &self.shared.metrics
    }
}

/// The worker pool. Dropping the struct does not stop the threads —
/// call [`ReactorHandle::stop`] (or [`Reactor::stop`]) then
/// [`Reactor::join`].
pub struct Reactor {
    handle: ReactorHandle,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Reactor {
    /// Spawns `threads` event-loop workers named `<name>-io-<i>`.
    /// `outq_bound` is the per-connection outbound queue byte bound (the
    /// backpressure contract); `pool` backs every frame buffer.
    pub fn new(
        name: &str,
        threads: usize,
        outq_bound: usize,
        pool: BufPool,
        registry: &Registry,
    ) -> io::Result<Reactor> {
        let threads = threads.max(1);
        let mut polls = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let poll = Poll::new()?;
            let waker = Waker::new(&poll, WAKER_TOKEN)?;
            workers.push(Arc::new(WorkerShared {
                inbox: Mutex::new(Vec::new()),
                waker,
            }));
            polls.push(poll);
        }
        let shared = Arc::new(Shared {
            workers,
            next_conn: AtomicU64::new(0),
            pool,
            metrics: ReactorMetrics::new(registry),
            outq_bound,
        });
        let handle = ReactorHandle {
            shared: Arc::clone(&shared),
        };
        let mut join = Vec::with_capacity(threads);
        for (idx, poll) in polls.into_iter().enumerate() {
            let worker = Worker {
                handle: handle.clone(),
                poll,
                waker: shared.workers[idx].waker.clone(),
                inbox: Arc::clone(&shared.workers[idx]),
                slots: HashMap::new(),
                timers: BinaryHeap::new(),
                dirty: Vec::new(),
                flushq: Vec::new(),
                stopping: None,
            };
            join.push(
                thread::Builder::new()
                    .name(format!("{name}-io-{idx}"))
                    .spawn(move || worker.run())
                    .map_err(io::Error::other)?,
            );
        }
        Ok(Reactor {
            handle,
            threads: join,
        })
    }

    /// The cross-thread handle.
    pub fn handle(&self) -> &ReactorHandle {
        &self.handle
    }

    /// See [`ReactorHandle::stop`].
    pub fn stop(&self, graceful: bool) {
        self.handle.stop(graceful);
    }

    /// Waits for every worker to exit (call [`Reactor::stop`] first).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Per-connection state owned by a worker.
struct Endpoint {
    sock: Option<TcpStream>,
    /// A non-blocking connect is in flight; completion arrives as a
    /// writable event checked against `take_error`.
    connecting: bool,
    /// Interest currently registered with epoll (`None`: no socket).
    registered: Option<Interest>,
    driver: Box<dyn Driver>,
    decoder: FrameDecoder,
    out: OutQueue,
    timer_at: Option<Instant>,
    dirty: bool,
    flush_queued: bool,
}

enum Slot {
    Conn(Endpoint),
    Listener {
        listener: TcpListener,
        accept: AcceptFn,
    },
}

enum Call {
    Start,
    Connected,
    Frame(Lease),
    Command(Box<dyn Any + Send>),
    Timer,
    Flush,
    Disconnect(Option<io::Error>),
}

/// Deferred driver requests, applied after the callback returns (the
/// callback holds mutable borrows of the endpoint it would mutate).
#[derive(Default)]
struct Reqs {
    close: bool,
    dial: Option<SocketAddr>,
    overflow: Option<crate::outq::QueueFull>,
    sent: bool,
    fail: Option<io::Error>,
}

/// What a driver callback may do to its connection: queue frames, set a
/// one-shot timer, dial, close, lease buffers, reach the rest of the
/// reactor through the handle.
pub struct Ctx<'a> {
    conn: ConnId,
    now: Instant,
    pool: &'a BufPool,
    handle: &'a ReactorHandle,
    out: &'a mut OutQueue,
    timer_at: &'a mut Option<Instant>,
    timer_push: &'a mut Vec<(Instant, ConnId)>,
    reqs: &'a mut Reqs,
}

impl Ctx<'_> {
    /// This connection's stable id (route for [`ReactorHandle::send`]).
    pub fn conn_id(&self) -> ConnId {
        self.conn
    }

    /// The tick's timestamp (one clock read per callback).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The reactor's buffer pool.
    pub fn pool(&self) -> &BufPool {
        self.pool
    }

    /// The cross-thread handle (to message other connections).
    pub fn handle(&self) -> &ReactorHandle {
        self.handle
    }

    /// Queues one framed buffer for this connection; flushed at the end
    /// of the tick. Overflow tears the connection down after the current
    /// callback returns (the frame is dropped).
    pub fn send(&mut self, frame: Lease) {
        if self.reqs.overflow.is_some() {
            return; // already doomed; drop follow-on frames
        }
        match self.out.push(frame) {
            Ok(()) => self.reqs.sent = true,
            Err(full) => self.reqs.overflow = Some(full),
        }
    }

    /// Un-written bytes queued on this connection.
    pub fn queued_bytes(&self) -> usize {
        self.out.queued_bytes()
    }

    /// Arms this connection's one-shot timer for `after` from now
    /// (replacing any previous deadline).
    pub fn set_timer(&mut self, after: Duration) {
        let at = self.now + after;
        *self.timer_at = Some(at);
        self.timer_push.push((at, self.conn));
    }

    /// Cancels the pending timer, if any.
    pub fn clear_timer(&mut self) {
        *self.timer_at = None;
    }

    /// Starts a non-blocking dial to `addr`, replacing this connection's
    /// socket. Completion arrives as [`Driver::on_connected`]; failure as
    /// [`Driver::on_disconnect`].
    pub fn dial(&mut self, addr: SocketAddr) {
        self.reqs.dial = Some(addr);
    }

    /// Tears this connection down after the current callback returns
    /// ([`Driver::on_disconnect`] with no error).
    pub fn close(&mut self) {
        self.reqs.close = true;
    }
}

struct Worker {
    handle: ReactorHandle,
    poll: Poll,
    waker: Waker,
    inbox: Arc<WorkerShared>,
    slots: HashMap<ConnId, Slot>,
    timers: BinaryHeap<Reverse<(Instant, ConnId)>>,
    dirty: Vec<ConnId>,
    flushq: Vec<ConnId>,
    /// `Some(graceful)` once a stop op arrived; a kill (`false`) wins
    /// over a graceful stop.
    stopping: Option<bool>,
}

impl Worker {
    fn metrics(&self) -> &ReactorMetrics {
        &self.handle.shared.metrics
    }

    fn run(mut self) {
        let mut events = Events::with_capacity(EVENTS_PER_TICK);
        loop {
            let timeout = self.next_timeout();
            match self.poll.poll(&mut events, timeout) {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("[reactor] poll failed: {e}");
                    return;
                }
            }
            self.metrics().wakeups.inc();
            self.metrics().events.add(events.len() as u64);
            self.process_events(&events);
            self.process_ops();
            self.fire_timers();
            self.run_on_flush();
            self.flush_pass();
            if let Some(graceful) = self.stopping {
                if graceful {
                    self.drain();
                }
                return;
            }
        }
    }

    fn next_timeout(&self) -> Option<Duration> {
        let Reverse((at, _)) = self.timers.peek()?;
        Some(at.saturating_duration_since(Instant::now()))
    }

    fn process_events(&mut self, events: &Events) {
        for event in events.iter() {
            let token = event.token();
            if token == WAKER_TOKEN {
                self.waker.drain();
                continue;
            }
            let conn = token.0 as ConnId;
            enum Action {
                Accept,
                FinishConnect,
                Read,
                Nothing,
            }
            let action = match self.slots.get_mut(&conn) {
                Some(Slot::Listener { .. }) => Action::Accept,
                Some(Slot::Conn(ep)) => {
                    if ep.connecting {
                        if event.is_writable() {
                            Action::FinishConnect
                        } else {
                            Action::Nothing
                        }
                    } else {
                        if event.is_writable() && !ep.out.is_empty() {
                            queue_flush(&mut self.flushq, conn, ep);
                        }
                        if event.is_readable() {
                            Action::Read
                        } else {
                            Action::Nothing
                        }
                    }
                }
                None => Action::Nothing, // removed earlier this tick
            };
            match action {
                Action::Accept => self.accept_loop(conn),
                Action::FinishConnect => self.finish_connect(conn),
                Action::Read => self.read_loop(conn),
                Action::Nothing => {}
            }
        }
    }

    fn accept_loop(&mut self, conn: ConnId) {
        let Some(Slot::Listener { listener, accept }) = self.slots.get_mut(&conn) else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((sock, addr)) => {
                    if mio::set_nonblocking(&sock).is_err() {
                        continue; // dead on arrival; drop it
                    }
                    // Drivers never see the raw socket, so latency-critical
                    // socket options are set here or nowhere.
                    let _ = sock.set_nodelay(true);
                    accept(sock, addr);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient accept failures (EMFILE under an fd
                    // storm, aborted handshakes) must not kill the
                    // listener; log and resume on the next event.
                    eprintln!("[reactor] accept failed: {e}");
                    break;
                }
            }
        }
    }

    fn finish_connect(&mut self, conn: ConnId) {
        let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) else {
            return;
        };
        let Some(sock) = ep.sock.as_ref() else { return };
        let verdict = match sock.take_error() {
            Ok(None) => Ok(()),
            Ok(Some(e)) | Err(e) => Err(e),
        };
        match verdict {
            Ok(()) => {
                ep.connecting = false;
                let want = desired_interest(ep);
                set_interest(&self.poll, conn, ep, want);
                self.run_call(conn, Call::Connected);
                if let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) {
                    if !ep.out.is_empty() {
                        queue_flush(&mut self.flushq, conn, ep);
                    }
                }
            }
            Err(e) => self.disconnect(conn, Some(e), false),
        }
    }

    fn read_loop(&mut self, conn: ConnId) {
        let pool = self.handle.shared.pool.clone();
        loop {
            let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) else {
                return;
            };
            if ep.connecting {
                return;
            }
            let Endpoint { sock, decoder, .. } = ep;
            let Some(sock) = sock.as_mut() else { return };
            match decoder.next(sock, &pool) {
                Ok(Decoded::Frame(frame)) => self.run_call(conn, Call::Frame(frame)),
                Ok(Decoded::Pending) => return,
                Ok(Decoded::Eof) => {
                    self.disconnect(conn, None, false);
                    return;
                }
                Err(e) => {
                    self.disconnect(conn, Some(e), false);
                    return;
                }
            }
        }
    }

    fn process_ops(&mut self) {
        let ops = std::mem::take(&mut *self.inbox.inbox.lock());
        for op in ops {
            match op {
                Op::Register { conn, sock, driver } => self.do_register(conn, sock, driver),
                Op::Listen {
                    conn,
                    listener,
                    accept,
                } => {
                    if mio::set_nonblocking(&listener)
                        .and_then(|()| {
                            self.poll
                                .register(&listener, Token(conn as usize), Interest::READABLE)
                        })
                        .is_ok()
                    {
                        self.slots.insert(conn, Slot::Listener { listener, accept });
                    } else {
                        eprintln!("[reactor] listener registration failed");
                    }
                }
                Op::Send { conn, frame } => {
                    if let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) {
                        match ep.out.push(frame) {
                            Ok(()) => queue_flush(&mut self.flushq, conn, ep),
                            Err(full) => self.overflow(conn, full),
                        }
                    }
                }
                Op::Command { conn, cmd } => self.run_call(conn, Call::Command(cmd)),
                Op::Close { conn } => match self.slots.get(&conn) {
                    Some(Slot::Listener { .. }) => {
                        self.slots.remove(&conn); // drop closes + deregisters
                    }
                    Some(Slot::Conn(_)) => self.disconnect(conn, None, true),
                    None => {}
                },
                Op::Stop { graceful } => {
                    self.stopping = Some(self.stopping.unwrap_or(true) && graceful);
                }
            }
        }
    }

    fn do_register(&mut self, conn: ConnId, sock: Option<TcpStream>, driver: Box<dyn Driver>) {
        let mut ep = Endpoint {
            sock: None,
            connecting: false,
            registered: None,
            driver,
            decoder: FrameDecoder::new(),
            out: OutQueue::new(self.handle.shared.outq_bound),
            timer_at: None,
            dirty: false,
            flush_queued: false,
        };
        if let Some(sock) = sock {
            if mio::set_nonblocking(&sock)
                .and_then(|()| {
                    self.poll
                        .register(&sock, Token(conn as usize), Interest::READABLE)
                })
                .is_err()
            {
                // Registration failed (dead socket): report and remove.
                self.slots.insert(conn, Slot::Conn(ep));
                self.disconnect(
                    conn,
                    Some(io::Error::other("socket registration failed")),
                    true,
                );
                return;
            }
            ep.registered = Some(Interest::READABLE);
            ep.sock = Some(sock);
        }
        self.slots.insert(conn, Slot::Conn(ep));
        self.run_call(conn, Call::Start);
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        while let Some(&Reverse((at, conn))) = self.timers.peek() {
            if at > now {
                break;
            }
            self.timers.pop();
            // Lazy invalidation: fire only if this deadline is still the
            // endpoint's live timer (it may have been replaced/cleared).
            let live = matches!(
                self.slots.get(&conn),
                Some(Slot::Conn(ep)) if ep.timer_at == Some(at)
            );
            if live {
                if let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) {
                    ep.timer_at = None;
                }
                self.run_call(conn, Call::Timer);
            }
        }
    }

    fn run_on_flush(&mut self) {
        let dirty = std::mem::take(&mut self.dirty);
        for conn in dirty {
            if let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) {
                ep.dirty = false;
                self.run_call(conn, Call::Flush);
            }
        }
    }

    fn flush_pass(&mut self) {
        let flushq = std::mem::take(&mut self.flushq);
        let metrics = self.handle.shared.metrics.clone();
        for conn in flushq {
            let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) else {
                continue;
            };
            ep.flush_queued = false;
            if ep.connecting || ep.sock.is_none() {
                continue;
            }
            if ep.out.is_empty() {
                let want = desired_interest(ep);
                set_interest(&self.poll, conn, ep, want);
                continue;
            }
            let outcome = {
                let Endpoint { sock, out, .. } = ep;
                out.flush(sock.as_mut().expect("socket checked above"))
            };
            match outcome {
                Ok(res) => {
                    metrics.outq_hiwat.set_max(ep.out.hiwat() as u64);
                    let was_writable = ep.registered.is_some_and(|i| i.is_writable());
                    if !res.drained && !was_writable {
                        metrics.rearms.inc();
                    }
                    let want = desired_interest(ep);
                    set_interest(&self.poll, conn, ep, want);
                }
                Err(e) => self.disconnect(conn, Some(e), false),
            }
        }
    }

    /// Runs one driver callback with a fresh [`Ctx`], then applies the
    /// requests the driver made.
    fn run_call(&mut self, conn: ConnId, call: Call) {
        let handle = self.handle.clone();
        let pool = handle.shared.pool.clone();
        let now = Instant::now();
        let mut timer_push = Vec::new();
        let mut reqs = Reqs::default();
        let mut fate = Fate::Keep;
        let disconnecting = matches!(call, Call::Disconnect(_));
        {
            let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) else {
                return;
            };
            if matches!(call, Call::Frame(_) | Call::Command(_)) && !ep.dirty {
                ep.dirty = true;
                self.dirty.push(conn);
            }
            let Endpoint {
                driver,
                out,
                timer_at,
                ..
            } = ep;
            let mut ctx = Ctx {
                conn,
                now,
                pool: &pool,
                handle: &handle,
                out,
                timer_at,
                timer_push: &mut timer_push,
                reqs: &mut reqs,
            };
            match call {
                Call::Start => driver.on_start(&mut ctx),
                Call::Connected => driver.on_connected(&mut ctx),
                Call::Frame(frame) => {
                    if let Err(e) = driver.on_frame(&mut ctx, frame) {
                        reqs.fail = Some(e);
                    }
                }
                Call::Command(cmd) => driver.on_command(&mut ctx, cmd),
                Call::Timer => driver.on_timer(&mut ctx),
                Call::Flush => driver.on_flush(&mut ctx),
                Call::Disconnect(err) => fate = driver.on_disconnect(&mut ctx, err.as_ref()),
            }
        }
        for (at, id) in timer_push {
            self.timers.push(Reverse((at, id)));
        }
        if disconnecting {
            // In the disconnect callback only dial/timer requests are
            // meaningful; a `Remove` fate ends the connection for good.
            if fate == Fate::Remove {
                self.slots.remove(&conn);
                return;
            }
            if let Some(addr) = reqs.dial {
                self.do_dial(conn, addr);
            }
            return;
        }
        if reqs.sent {
            if let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) {
                queue_flush(&mut self.flushq, conn, ep);
            }
        }
        if let Some(full) = reqs.overflow {
            self.overflow(conn, full);
        } else if let Some(err) = reqs.fail {
            self.disconnect(conn, Some(err), false);
        } else if reqs.close {
            self.disconnect(conn, None, false);
        } else if let Some(addr) = reqs.dial {
            self.do_dial(conn, addr);
        }
    }

    fn overflow(&mut self, conn: ConnId, full: crate::outq::QueueFull) {
        self.metrics().overflows.inc();
        eprintln!("[reactor] conn {conn}: {full} — dropping the connection");
        self.disconnect(conn, Some(io::Error::other(full.to_string())), false);
    }

    /// Severs `conn`'s socket and routes the verdict through
    /// [`Driver::on_disconnect`]. `force` removes the connection
    /// regardless of the driver's [`Fate`] (handle-initiated close).
    fn disconnect(&mut self, conn: ConnId, err: Option<io::Error>, force: bool) {
        let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) else {
            return;
        };
        self.handle
            .shared
            .metrics
            .outq_hiwat
            .set_max(ep.out.hiwat() as u64);
        // Dropping the stream closes the fd, which also removes it from
        // the epoll interest set.
        ep.sock = None;
        ep.connecting = false;
        ep.registered = None;
        ep.decoder.reset();
        ep.out.clear();
        ep.timer_at = None;
        self.run_call(conn, Call::Disconnect(err));
        if force {
            self.slots.remove(&conn);
        }
    }

    fn do_dial(&mut self, conn: ConnId, addr: SocketAddr) {
        let dialed = mio::dial(&addr).and_then(|dialed| {
            // See accept_loop: the driver has no socket access, so nodelay
            // is an event-loop responsibility.
            let _ = dialed.stream.set_nodelay(true);
            self.poll
                .register(&dialed.stream, Token(conn as usize), Interest::WRITABLE)
                .map(|()| dialed)
        });
        match dialed {
            Ok(dialed) => {
                let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) else {
                    return;
                };
                // Even a synchronously-ready connect goes through the
                // event loop: the socket reports writable on the next
                // poll and `finish_connect` runs `on_connected` — one
                // code path, no reentrant callbacks.
                ep.sock = Some(dialed.stream);
                ep.connecting = true;
                ep.registered = Some(Interest::WRITABLE);
            }
            Err(e) => self.disconnect(conn, Some(e), false),
        }
    }

    /// Best-effort flush of all queued output before a graceful exit.
    fn drain(&mut self) {
        let deadline = Instant::now() + DRAIN_DEADLINE;
        let conns: Vec<ConnId> = self.slots.keys().copied().collect();
        let mut events = Events::with_capacity(64);
        loop {
            let mut pending = false;
            for &conn in &conns {
                let Some(Slot::Conn(ep)) = self.slots.get_mut(&conn) else {
                    continue;
                };
                if ep.connecting || ep.out.is_empty() {
                    continue;
                }
                let outcome = {
                    let Endpoint { sock, out, .. } = ep;
                    let Some(sock) = sock.as_mut() else { continue };
                    out.flush(sock)
                };
                match outcome {
                    Ok(res) if !res.drained => pending = true,
                    Ok(_) => {}
                    Err(_) => ep.sock = None, // dead; nothing left to drain
                }
            }
            if !pending || Instant::now() >= deadline {
                break;
            }
            let _ = self.poll.poll(&mut events, Some(Duration::from_millis(10)));
        }
    }
}

fn desired_interest(ep: &Endpoint) -> Interest {
    if ep.out.is_empty() {
        Interest::READABLE
    } else {
        Interest::READABLE | Interest::WRITABLE
    }
}

fn set_interest(poll: &Poll, conn: ConnId, ep: &mut Endpoint, want: Interest) {
    if ep.registered == Some(want) {
        return;
    }
    let Some(sock) = ep.sock.as_ref() else { return };
    if poll.reregister(sock, Token(conn as usize), want).is_ok() {
        ep.registered = Some(want);
    }
}

fn queue_flush(flushq: &mut Vec<ConnId>, conn: ConnId, ep: &mut Endpoint) {
    if !ep.flush_queued {
        ep.flush_queued = true;
        flushq.push(conn);
    }
}
