//! Bounded per-connection outbound queues with vectored flush.
//!
//! Each reactor connection owns one [`OutQueue`]: a FIFO of framed,
//! leased [`BufPool`] buffers waiting for the socket. The flush path is
//! the reactor port of the service's `write_frames_vectored`: it gathers
//! iovec runs of up to [`MAX_IOV`] frames per `write_vectored` syscall,
//! resumes mid-frame after short writes, retries `Interrupted` — and,
//! unlike the blocking original, parks on `WouldBlock` instead of
//! stalling the thread, so the caller re-arms write interest and resumes
//! on the next writable event.
//!
//! The queue is *bounded by bytes*, and the bound is the backpressure
//! contract: a producer outrunning the socket (a slow or stuck reader on
//! the far end) gets a loud [`OutQueue::push`] failure, which the
//! reactor turns into a connection teardown — the link degrades
//! explicitly instead of buffering without limit until OOM. Peer links
//! recover by redialing and resending from the durable window; clients
//! simply lose the connection.

use crate::bufpool::Lease;
use std::collections::VecDeque;
use std::io::{self, IoSlice};

/// Maximum `IoSlice` entries per `write_vectored` call (kernels cap an
/// iovec at `IOV_MAX`, typically 1024; 64 keeps each syscall's setup
/// cheap while still coalescing a deep backlog).
pub const MAX_IOV: usize = 64;

/// Destination of a vectored flush. `TcpStream` is the production sink;
/// tests substitute adversarial sinks that accept k bytes and then
/// `WouldBlock`, exercising every resume offset.
pub trait WriteSink {
    /// Writes from the slices, returning bytes accepted (may be short).
    fn sink_write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize>;
}

impl WriteSink for std::net::TcpStream {
    fn sink_write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        io::Write::write_vectored(self, bufs)
    }
}

/// What a flush attempt achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Bytes the kernel accepted during this call.
    pub written: usize,
    /// Whether the queue is now empty. `false` means the socket buffer
    /// filled (`WouldBlock`): re-arm write interest and try again on the
    /// next writable event.
    pub drained: bool,
}

/// A bounded FIFO of outbound frames for one connection.
pub struct OutQueue {
    frames: VecDeque<Lease>,
    /// Bytes of `frames[0]` already written (a short write resumes
    /// mid-frame).
    front_off: usize,
    /// Un-written bytes across all queued frames.
    queued: usize,
    /// Byte bound; `push` fails once the queue holds this much.
    bound: usize,
    /// Highest `queued` ever observed (the backpressure high-water mark).
    hiwat: usize,
}

impl OutQueue {
    /// An empty queue holding at most `bound` un-written bytes.
    pub fn new(bound: usize) -> OutQueue {
        OutQueue {
            frames: VecDeque::new(),
            front_off: 0,
            queued: 0,
            bound,
            hiwat: 0,
        }
    }

    /// Whether nothing is waiting for the socket.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Un-written bytes currently queued.
    pub fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Highest queue depth (bytes) this connection ever reached.
    pub fn hiwat(&self) -> usize {
        self.hiwat
    }

    /// Enqueues one framed buffer. Fails — without enqueueing — when the
    /// queue already holds `bound` or more bytes: the caller must treat
    /// this as a dead connection, not retry. (The check is
    /// queue-occupancy-based rather than `queued + frame > bound` so a
    /// single frame larger than the bound can still transit an otherwise
    /// empty queue.)
    pub fn push(&mut self, frame: Lease) -> Result<(), QueueFull> {
        if self.queued >= self.bound && !self.frames.is_empty() {
            return Err(QueueFull {
                queued: self.queued,
                bound: self.bound,
            });
        }
        self.queued += frame.len();
        self.frames.push_back(frame);
        self.hiwat = self.hiwat.max(self.queued);
        Ok(())
    }

    /// Drops everything queued (connection teardown); leases reshelve.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.front_off = 0;
        self.queued = 0;
    }

    /// Writes queued frames to `sink` in [`MAX_IOV`]-slice vectored runs
    /// until the queue drains or the kernel pushes back. Short writes
    /// resume mid-frame; `Interrupted` is retried; `Ok(0)` from the sink
    /// is a closed peer (`WriteZero`, "peer socket closed mid-flush").
    // lint: hot-path
    pub fn flush(&mut self, sink: &mut impl WriteSink) -> io::Result<FlushOutcome> {
        let mut total = 0usize;
        while !self.frames.is_empty() {
            let written = {
                let mut slices: Vec<IoSlice<'_>> =
                    Vec::with_capacity(MAX_IOV.min(self.frames.len()));
                slices.push(IoSlice::new(&self.frames[0][self.front_off..]));
                for frame in self.frames.iter().skip(1).take(MAX_IOV - 1) {
                    slices.push(IoSlice::new(frame));
                }
                match sink.sink_write_vectored(&slices) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "peer socket closed mid-flush",
                        ))
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return Ok(FlushOutcome {
                            written: total,
                            drained: false,
                        })
                    }
                    Err(e) => return Err(e),
                }
            };
            total += written;
            self.queued -= written;
            // Advance (front frame, offset) past the bytes the kernel took.
            let mut advanced = written;
            while advanced > 0 {
                let front_left = self.frames[0].len() - self.front_off;
                if advanced >= front_left {
                    advanced -= front_left;
                    self.front_off = 0;
                    self.frames.pop_front();
                } else {
                    self.front_off += advanced;
                    advanced = 0;
                }
            }
        }
        Ok(FlushOutcome {
            written: total,
            drained: true,
        })
    }
    // lint: end-hot-path
}

/// The loud backpressure signal: an [`OutQueue::push`] against a full
/// queue.
#[derive(Debug)]
pub struct QueueFull {
    /// Bytes queued at the time of the refused push.
    pub queued: usize,
    /// The queue's configured bound.
    pub bound: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "outbound queue overflow ({} bytes queued, bound {})",
            self.queued, self.bound
        )
    }
}

impl std::error::Error for QueueFull {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufpool::BufPool;
    use prcc_telemetry::Registry;

    /// A sink that accepts exactly `accept` bytes, then `WouldBlock`s
    /// until rearmed, recording everything it took.
    struct ThrottledSink {
        accept: usize,
        taken: Vec<u8>,
    }

    impl WriteSink for ThrottledSink {
        fn sink_write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            if self.accept == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "throttled"));
            }
            let mut n = 0;
            for buf in bufs {
                if self.accept == 0 {
                    break;
                }
                let take = buf.len().min(self.accept);
                self.taken.extend_from_slice(&buf[..take]);
                self.accept -= take;
                n += take;
                if take < buf.len() {
                    break;
                }
            }
            Ok(n)
        }
    }

    fn pool() -> BufPool {
        BufPool::new(&Registry::new())
    }

    fn frame(pool: &BufPool, body: &[u8]) -> Lease {
        let mut lease = pool.lease(body.len() + 4);
        lease.extend_from_slice(&(body.len() as u32).to_le_bytes());
        lease.extend_from_slice(body);
        lease
    }

    #[test]
    fn partial_write_resumes_at_every_byte_offset() {
        // The satellite's exhaustive edge case: a vectored flush of
        // several frames interrupted after exactly k bytes, for every k,
        // must transmit a byte-identical stream once unthrottled.
        let pool = pool();
        let bodies: [&[u8]; 3] = [b"first frame", b"", b"the third, rather longer, frame body"];
        let mut expect = Vec::new();
        for body in bodies {
            expect.extend_from_slice(&(body.len() as u32).to_le_bytes());
            expect.extend_from_slice(body);
        }
        for k in 0..=expect.len() {
            let mut q = OutQueue::new(1 << 20);
            for body in bodies {
                q.push(frame(&pool, body)).unwrap();
            }
            let mut sink = ThrottledSink {
                accept: k,
                taken: Vec::new(),
            };
            let first = q.flush(&mut sink).unwrap();
            assert_eq!(first.written, k, "offset {k}");
            assert_eq!(first.drained, k == expect.len(), "offset {k}");
            assert_eq!(q.queued_bytes(), expect.len() - k, "offset {k}");
            // Unthrottle: the remainder must flow and match exactly.
            sink.accept = usize::MAX;
            let rest = q.flush(&mut sink).unwrap();
            assert!(rest.drained, "offset {k}");
            assert_eq!(first.written + rest.written, expect.len(), "offset {k}");
            assert_eq!(
                sink.taken, expect,
                "offset {k}: stream must be byte-identical"
            );
            assert!(q.is_empty());
        }
        assert_eq!(pool.outstanding(), 0, "flushed frames reshelve");
    }

    #[test]
    fn deep_queue_crosses_the_iovec_cap() {
        // More frames than MAX_IOV must still drain completely (multiple
        // vectored runs per flush call).
        let pool = pool();
        let mut q = OutQueue::new(1 << 24);
        let mut expect = Vec::new();
        for i in 0..(MAX_IOV * 2 + 7) {
            let body = vec![i as u8; (i % 5) + 1];
            expect.extend_from_slice(&(body.len() as u32).to_le_bytes());
            expect.extend_from_slice(&body);
            q.push(frame(&pool, &body)).unwrap();
        }
        let mut sink = ThrottledSink {
            accept: usize::MAX,
            taken: Vec::new(),
        };
        let outcome = q.flush(&mut sink).unwrap();
        assert!(outcome.drained);
        assert_eq!(sink.taken, expect);
    }

    #[test]
    fn bound_refuses_pushes_loudly() {
        let pool = pool();
        let mut q = OutQueue::new(32);
        q.push(frame(&pool, &[0u8; 40])).unwrap(); // oversized-but-first passes
        let err = q.push(frame(&pool, b"more")).unwrap_err();
        assert!(err.queued >= 32);
        assert_eq!(err.bound, 32);
        assert!(err.to_string().contains("outbound queue overflow"));
        // Draining reopens the queue.
        let mut sink = ThrottledSink {
            accept: usize::MAX,
            taken: Vec::new(),
        };
        assert!(q.flush(&mut sink).unwrap().drained);
        q.push(frame(&pool, b"ok again")).unwrap();
        assert!(q.hiwat() >= 44, "high-water survives the drain");
    }

    #[test]
    fn closed_sink_is_write_zero() {
        struct ClosedSink;
        impl WriteSink for ClosedSink {
            fn sink_write_vectored(&mut self, _: &[IoSlice<'_>]) -> io::Result<usize> {
                Ok(0)
            }
        }
        let pool = pool();
        let mut q = OutQueue::new(1 << 20);
        q.push(frame(&pool, b"doomed")).unwrap();
        let err = q.flush(&mut ClosedSink).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert!(err.to_string().contains("peer socket closed mid-flush"));
    }

    #[test]
    fn clear_returns_leases_and_resets_offsets() {
        let pool = pool();
        let mut q = OutQueue::new(1 << 20);
        q.push(frame(&pool, b"abcdef")).unwrap();
        q.push(frame(&pool, b"ghij")).unwrap();
        let mut sink = ThrottledSink {
            accept: 3,
            taken: Vec::new(),
        };
        assert!(!q.flush(&mut sink).unwrap().drained);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
        assert_eq!(pool.outstanding(), 0);
    }
}
