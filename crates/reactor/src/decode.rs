//! Incremental frame decoding for non-blocking sockets.
//!
//! The blocking readers in `prcc-service`'s wire module
//! (`read_frame` / `read_frame_pooled`) park the thread until a whole
//! frame arrives. On the reactor's non-blocking sockets a read can stop
//! at *any* byte offset — mid-prefix, mid-payload — and must resume on
//! the next readable event. [`FrameDecoder`] is that resumable state
//! machine, with the blocking readers' semantics carried over
//! byte-for-byte:
//!
//! * `Ok(0)` from the socket at a frame boundary (zero prefix bytes
//!   consumed) is a clean EOF ([`Decoded::Eof`]).
//! * `Ok(0)` one-to-three bytes into the prefix is a truncated frame:
//!   `UnexpectedEof`, "connection closed after {n} bytes of a frame
//!   length prefix".
//! * A length above [`MAX_FRAME_BYTES`] is refused with `InvalidData`
//!   *before* any buffer is sized or pool lease taken.
//! * `Ok(0)` mid-payload mirrors `read_exact`'s `UnexpectedEof`
//!   ("failed to fill whole buffer").
//! * `Interrupted` is retried; `WouldBlock` parks the partial state and
//!   returns [`Decoded::Pending`].
//!
//! Payloads land in pooled [`Lease`] buffers, taken only after the
//! prefix arrives — an idle connection between frames holds zero
//! buffers, the same RSS property `read_frame_pooled` established.

use crate::bufpool::{BufPool, Lease};
use std::io::{self, Read};

/// Upper bound on accepted frame payloads (64 MiB) — a garbage or hostile
/// length prefix is refused with a descriptive error *before* any
/// allocation or pool lease happens. (Moved here from the service wire
/// module, which re-exports it: the incremental decoder is now the
/// lowest layer that enforces it.)
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// One step of incremental decoding.
#[derive(Debug)]
pub enum Decoded {
    /// A complete frame payload.
    Frame(Lease),
    /// Clean EOF at a frame boundary (the peer closed between frames).
    Eof,
    /// The socket has no more bytes right now; state is parked and the
    /// caller should wait for the next readable event.
    Pending,
}

/// Resumable decoder state for one connection. See the module docs for
/// the exact semantics contract.
pub struct FrameDecoder {
    prefix: [u8; 4],
    prefix_got: usize,
    /// The payload in flight: the lease is pre-sized to the frame length,
    /// `filled` tracks how much of it has arrived.
    payload: Option<(Lease, usize)>,
}

impl FrameDecoder {
    /// A decoder at a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder {
            prefix: [0; 4],
            prefix_got: 0,
            payload: None,
        }
    }

    /// Drops any partial frame (used when a connection is torn down and
    /// its decoder will be reused for the replacement socket).
    pub fn reset(&mut self) {
        self.prefix_got = 0;
        self.payload = None;
    }

    /// Whether the decoder sits at a frame boundary (no partial frame).
    pub fn at_boundary(&self) -> bool {
        self.prefix_got == 0 && self.payload.is_none()
    }

    /// Pulls bytes from `r` until a frame completes, the socket runs dry,
    /// or the stream ends. Call in a loop on each readable event until it
    /// returns [`Decoded::Pending`].
    // lint: hot-path
    pub fn next<R: Read>(&mut self, r: &mut R, pool: &BufPool) -> io::Result<Decoded> {
        if self.payload.is_none() {
            // Accumulate the 4-byte length prefix.
            while self.prefix_got < self.prefix.len() {
                match r.read(&mut self.prefix[self.prefix_got..]) {
                    Ok(0) if self.prefix_got == 0 => return Ok(Decoded::Eof),
                    Ok(0) => {
                        let got = self.prefix_got;
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            // lint: allow(alloc) cold path: the peer died mid-prefix
                            format!("connection closed after {got} bytes of a frame length prefix"),
                        ));
                    }
                    Ok(n) => self.prefix_got += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(Decoded::Pending),
                    Err(e) => return Err(e),
                }
            }
            let len = u32::from_le_bytes(self.prefix) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    // lint: allow(alloc) cold path: oversized frame tears the link down
                    format!("frame of {len} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"),
                ));
            }
            self.prefix_got = 0;
            let mut lease = pool.lease(len);
            lease.resize(len, 0);
            self.payload = Some((lease, 0));
        }
        let (lease, filled) = self.payload.as_mut().expect("payload in flight");
        while *filled < lease.len() {
            match r.read(&mut lease[*filled..]) {
                Ok(0) => {
                    // Mirror `read_exact`'s truncation error.
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "failed to fill whole buffer",
                    ));
                }
                Ok(n) => *filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(Decoded::Pending),
                Err(e) => return Err(e),
            }
        }
        let (lease, _) = self.payload.take().expect("payload complete");
        Ok(Decoded::Frame(lease))
    }
    // lint: end-hot-path
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_telemetry::Registry;

    /// A reader that serves a byte stream in caller-chosen chunks,
    /// returning `WouldBlock` between them — the shape of a non-blocking
    /// socket under an adversarial scheduler.
    struct ChoppyReader {
        data: Vec<u8>,
        at: usize,
        /// Bytes to serve per readable burst; `WouldBlock` after each.
        burst: usize,
        blocked: bool,
        /// When true, the end of `data` is a clean close; when false the
        /// reader keeps returning `WouldBlock` at the end (open, idle).
        eof_at_end: bool,
    }

    impl Read for ChoppyReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.blocked {
                self.blocked = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not ready"));
            }
            if self.at == self.data.len() {
                if self.eof_at_end {
                    return Ok(0);
                }
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "idle"));
            }
            let n = buf.len().min(self.burst).min(self.data.len() - self.at);
            buf[..n].copy_from_slice(&self.data[self.at..self.at + n]);
            self.at += n;
            self.blocked = true;
            Ok(n)
        }
    }

    fn wire(frames: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in frames {
            out.extend_from_slice(&(f.len() as u32).to_le_bytes());
            out.extend_from_slice(f);
        }
        out
    }

    fn drain(
        decoder: &mut FrameDecoder,
        r: &mut ChoppyReader,
        pool: &BufPool,
    ) -> (Vec<Vec<u8>>, bool) {
        let mut frames = Vec::new();
        loop {
            match decoder.next(r, pool).unwrap() {
                Decoded::Frame(lease) => frames.push(lease.to_vec()),
                Decoded::Eof => return (frames, true),
                Decoded::Pending => {
                    if r.at == r.data.len() && !r.eof_at_end && !r.blocked {
                        return (frames, false);
                    }
                }
            }
        }
    }

    #[test]
    fn every_burst_size_reassembles_the_same_frames() {
        // The exhaustive chop test: for every burst size (1 byte up to
        // whole-stream), the decoder must produce identical frames —
        // every prefix/payload split point is exercised.
        let pool = BufPool::new(&Registry::new());
        let payloads: Vec<&[u8]> = vec![b"hello", b"", b"a much longer payload body here", b"x"];
        let stream = wire(&payloads);
        for burst in 1..=stream.len() {
            let mut r = ChoppyReader {
                data: stream.clone(),
                at: 0,
                burst,
                blocked: false,
                eof_at_end: true,
            };
            let mut decoder = FrameDecoder::new();
            let (frames, eof) = drain(&mut decoder, &mut r, &pool);
            assert!(eof, "burst {burst}: stream must end in clean EOF");
            assert_eq!(frames.len(), payloads.len(), "burst {burst}");
            for (got, want) in frames.iter().zip(&payloads) {
                assert_eq!(got.as_slice(), *want, "burst {burst}");
            }
            assert!(decoder.at_boundary());
        }
        assert_eq!(pool.outstanding(), 0, "all leases returned");
    }

    #[test]
    fn eof_inside_the_prefix_is_an_error_at_every_cut() {
        let pool = BufPool::new(&Registry::new());
        for cut in 1..4usize {
            let mut r = ChoppyReader {
                data: 7u32.to_le_bytes()[..cut].to_vec(),
                at: 0,
                burst: 1,
                blocked: false,
                eof_at_end: true,
            };
            let mut decoder = FrameDecoder::new();
            let err = loop {
                match decoder.next(&mut r, &pool) {
                    Ok(Decoded::Pending) => {}
                    Ok(other) => panic!("cut {cut}: unexpected {other:?}"),
                    Err(e) => break e,
                }
            };
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
            assert!(
                err.to_string().contains("length prefix"),
                "cut {cut}: undescriptive error {err}"
            );
        }
    }

    #[test]
    fn eof_at_a_frame_boundary_is_clean() {
        let pool = BufPool::new(&Registry::new());
        let mut r = ChoppyReader {
            data: Vec::new(),
            at: 0,
            burst: 1,
            blocked: false,
            eof_at_end: true,
        };
        let mut decoder = FrameDecoder::new();
        assert!(matches!(decoder.next(&mut r, &pool).unwrap(), Decoded::Eof));
    }

    #[test]
    fn eof_inside_the_payload_is_an_error_at_every_cut() {
        let pool = BufPool::new(&Registry::new());
        let full = wire(&[b"payload"]);
        for cut in 5..full.len() {
            let mut r = ChoppyReader {
                data: full[..cut].to_vec(),
                at: 0,
                burst: 3,
                blocked: false,
                eof_at_end: true,
            };
            let mut decoder = FrameDecoder::new();
            let err = loop {
                match decoder.next(&mut r, &pool) {
                    Ok(Decoded::Pending) => {}
                    Ok(other) => panic!("cut {cut}: unexpected {other:?}"),
                    Err(e) => break e,
                }
            };
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
        }
        assert_eq!(pool.outstanding(), 0, "error paths must return the lease");
    }

    #[test]
    fn oversized_prefix_refused_before_leasing() {
        let pool = BufPool::new(&Registry::new());
        let mut r = ChoppyReader {
            data: (u32::MAX).to_le_bytes().to_vec(),
            at: 0,
            burst: 4,
            blocked: false,
            eof_at_end: false,
        };
        let mut decoder = FrameDecoder::new();
        let err = loop {
            match decoder.next(&mut r, &pool) {
                Ok(Decoded::Pending) => {}
                Ok(other) => panic!("unexpected {other:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds MAX_FRAME_BYTES"));
        assert_eq!(pool.outstanding(), 0, "no lease for a refused prefix");
    }

    #[test]
    fn idle_open_connection_parks_without_leases_at_boundary() {
        // The RSS property: a connection with no partial frame holds no
        // pool buffer while idle.
        let pool = BufPool::new(&Registry::new());
        let mut r = ChoppyReader {
            data: wire(&[b"one"]),
            at: 0,
            burst: 64,
            blocked: false,
            eof_at_end: false,
        };
        let mut decoder = FrameDecoder::new();
        let frame = loop {
            match decoder.next(&mut r, &pool).unwrap() {
                Decoded::Frame(f) => break f,
                Decoded::Pending => {}
                Decoded::Eof => panic!("no EOF expected"),
            }
        };
        assert_eq!(&*frame, b"one");
        drop(frame);
        assert!(matches!(
            decoder.next(&mut r, &pool).unwrap(),
            Decoded::Pending
        ));
        assert!(decoder.at_boundary());
        assert_eq!(pool.outstanding(), 0, "idle-at-boundary holds no lease");
    }

    #[test]
    fn reset_drops_a_partial_frame() {
        let pool = BufPool::new(&Registry::new());
        let full = wire(&[b"abcdef"]);
        let mut r = ChoppyReader {
            data: full[..7].to_vec(), // prefix + 3 payload bytes
            at: 0,
            burst: 7,
            blocked: false,
            eof_at_end: false,
        };
        let mut decoder = FrameDecoder::new();
        assert!(matches!(
            decoder.next(&mut r, &pool).unwrap(),
            Decoded::Pending
        ));
        assert!(!decoder.at_boundary());
        assert_eq!(pool.outstanding(), 1, "partial payload holds its lease");
        decoder.reset();
        assert!(decoder.at_boundary());
        assert_eq!(pool.outstanding(), 0, "reset returns the lease");
    }
}
