//! Event-loop I/O for the service node.
//!
//! `prcc-service` versions 1–7 spent a thread per socket: one sender per
//! peer link, one reader per inbound peer connection, one handler per
//! client. That deployment wrapper caps a node at thousands of threads
//! long before the causal engine saturates. This crate replaces it with
//! a *reactor*: a small fixed pool of epoll event-loop threads (built on
//! the `compat/mio` shim) that multiplexes every listener, peer link and
//! client connection of a node over non-blocking sockets.
//!
//! The pieces, each usable and tested on its own:
//!
//! * [`BufPool`] / [`Lease`] — the size-classed buffer pool (moved here
//!   from `prcc-service`; the service re-exports it), backing every
//!   frame buffer on both sides of the socket.
//! * [`FrameDecoder`] — resumable incremental decoding of
//!   length-prefixed frames, with the blocking readers' EOF/truncation/
//!   size-bound semantics carried over byte-for-byte.
//! * [`OutQueue`] — bounded per-connection outbound FIFO with vectored
//!   (`writev`) flush, mid-frame resume, and loud overflow.
//! * [`Reactor`] / [`ReactorHandle`] / [`Driver`] — the worker pool,
//!   its cross-thread handle, and the per-connection protocol trait.
//!
//! Like every `prcc-*` crate this one forbids `unsafe`; the raw epoll /
//! eventfd / fcntl / non-blocking-connect syscall surface lives behind
//! the `compat/mio` shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bufpool;
mod decode;
mod outq;
mod reactor;

pub use bufpool::{BufPool, Lease};
pub use decode::{Decoded, FrameDecoder, MAX_FRAME_BYTES};
pub use outq::{FlushOutcome, OutQueue, QueueFull, WriteSink, MAX_IOV};
pub use reactor::{AcceptFn, ConnId, Ctx, Driver, Fate, Reactor, ReactorHandle, ReactorMetrics};
