//! A growable bitset for update-id sets.

use std::fmt;

/// A dynamically growing bitset over `u64` indices (update ids).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct DynBitSet {
    words: Vec<u64>,
}

impl DynBitSet {
    /// An empty set.
    pub fn new() -> Self {
        DynBitSet::default()
    }

    /// Inserts `i`; returns true if newly added.
    pub fn insert(&mut self, i: u64) -> bool {
        let (w, b) = ((i / 64) as usize, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Membership test.
    pub fn contains(&self, i: u64) -> bool {
        let (w, b) = ((i / 64) as usize, i % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &DynBitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as u64;
                    bits &= bits - 1;
                    Some(w as u64 * 64 + b)
                }
            })
        })
    }

    /// Members of `self` that are not in `other`.
    pub fn difference<'a>(&'a self, other: &'a DynBitSet) -> impl Iterator<Item = u64> + 'a {
        self.iter().filter(move |&i| !other.contains(i))
    }

    /// True if every member of `self` is in `other`.
    pub fn is_subset(&self, other: &DynBitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(w, &bits)| bits & !other.words.get(w).copied().unwrap_or(0) == 0)
    }
}

impl fmt::Debug for DynBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u64> for DynBitSet {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut s = DynBitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_grow() {
        let mut s = DynBitSet::new();
        assert!(s.insert(0));
        assert!(s.insert(1000));
        assert!(!s.insert(1000));
        assert!(s.contains(0));
        assert!(s.contains(1000));
        assert!(!s.contains(999));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_and_subset() {
        let a: DynBitSet = [1u64, 5, 64].into_iter().collect();
        let b: DynBitSet = [5u64, 128].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert!(!u.is_subset(&a));
        assert_eq!(u.difference(&a).collect::<Vec<_>>(), vec![128]);
    }

    #[test]
    fn iteration_sorted() {
        let s: DynBitSet = [200u64, 3, 64].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 200]);
    }

    #[test]
    fn empty_behaviour() {
        let s = DynBitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.is_subset(&s));
        assert!(!s.contains(0));
    }
}
