//! The causal-consistency oracle: ground-truth `↪` tracking and
//! verification of the paper's Definition 2.
//!
//! Protocol metadata (timestamps) is never consulted: the oracle observes
//! only the *events* — which replica issued which update, and which replica
//! applied which update, in what order — and maintains the exact
//! happened-before relation `↪` of Definition 1 (and its client-server
//! extension `↪′`, Definition 25) via per-update ancestor bitsets.
//!
//! * **Safety** (checked on every apply): if replica `i` applies `u`, every
//!   `u' ↪ u` writing a register in `X_i` must already be applied at `i`.
//! * **Liveness** (checked at quiescence): every issued update is applied at
//!   every replica storing its register.
//!
//! The oracle also exposes causal pasts and causal dependency graphs
//! (Definition 6), which the lower-bound machinery builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod checkpoint;
pub mod cut;
mod oracle;
mod report;
pub mod trace;

pub use bitset::DynBitSet;
pub use checkpoint::{
    verify_partitions_checkpointed, verify_trace_checkpointed, CheckpointedVerdict, TraceCheckpoint,
};
pub use cut::{verify_cut_closure, CutSnapshot, CutVerdict, PartitionCut};
pub use oracle::{Oracle, UpdateId};
pub use report::{LivenessViolation, SafetyViolation, Verdict};
pub use trace::{verify_trace, TraceError, TraceEvent};
