//! The happened-before oracle.

use crate::bitset::DynBitSet;
use crate::report::{LivenessViolation, SafetyViolation};
use prcc_graph::{RegisterId, ReplicaId, ShareGraph};
use std::fmt;

/// Globally unique identifier of an update, assigned at issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UpdateId(pub u64);

impl UpdateId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct UpdateMeta {
    issuer: ReplicaId,
    register: RegisterId,
    /// Exact causal past: every update `u'` with `u' ↪ u`.
    past: DynBitSet,
}

/// Ground-truth tracker of the `↪` relation (Definition 1) and verifier of
/// replica-centric causal consistency (Definition 2).
///
/// Drive it with [`Oracle::on_issue`] / [`Oracle::on_apply`] events emitted
/// by the system under test; for the client-server architecture
/// (Definition 25's `↪′`) additionally report client accesses with
/// [`Oracle::on_client_access`].
///
/// ```
/// use prcc_checker::Oracle;
/// use prcc_graph::{topologies, RegisterId, ReplicaId};
///
/// let g = topologies::clique_full(3, 1);
/// let mut oracle = Oracle::new(&g);
/// let u0 = oracle.on_issue(ReplicaId(0), RegisterId(0));
/// oracle.on_apply(ReplicaId(1), u0)?;
/// let u1 = oracle.on_issue(ReplicaId(1), RegisterId(0));
/// assert!(oracle.happened_before(u0, u1));
/// // Applying u1 at replica 2 without u0 is a safety violation:
/// assert!(oracle.on_apply(ReplicaId(2), u1).is_err());
/// # Ok::<(), prcc_checker::SafetyViolation>(())
/// ```
#[derive(Debug, Clone)]
pub struct Oracle {
    g: ShareGraph,
    updates: Vec<UpdateMeta>,
    /// Updates applied at each replica (an update is applied at its issuer
    /// at issue time, step 2 of the prototype).
    applied: Vec<DynBitSet>,
    /// Transitive closure per replica: applied updates plus everything in
    /// their causal pasts — the set `S` of Definition 6.
    closure: Vec<DynBitSet>,
    /// Per-client session pasts for `↪′`: updates applied at replicas the
    /// client has accessed, as of each access.
    client_past: Vec<DynBitSet>,
}

impl Oracle {
    /// Creates an oracle for a system over the given share graph, with no
    /// clients.
    pub fn new(g: &ShareGraph) -> Self {
        Oracle::with_clients(g, 0)
    }

    /// Creates an oracle that additionally tracks `num_clients` client
    /// sessions (client-server architecture).
    pub fn with_clients(g: &ShareGraph, num_clients: usize) -> Self {
        Oracle {
            g: g.clone(),
            updates: Vec::new(),
            applied: (0..g.num_replicas()).map(|_| DynBitSet::new()).collect(),
            closure: (0..g.num_replicas()).map(|_| DynBitSet::new()).collect(),
            client_past: (0..num_clients).map(|_| DynBitSet::new()).collect(),
        }
    }

    /// Records that replica `i` issues an update to register `x`
    /// (peer-to-peer architecture). The update is immediately applied at the
    /// issuer.
    ///
    /// Returns the new update's id; its causal past is everything applied at
    /// `i` so far.
    pub fn on_issue(&mut self, i: ReplicaId, x: RegisterId) -> UpdateId {
        self.issue_with_extra_past(i, x, None)
    }

    /// Records that replica `i` issues an update to `x` *on behalf of a
    /// client* (client-server): the update's past additionally includes the
    /// client's session past (Definition 25, condition ii).
    pub fn on_client_issue(&mut self, c: usize, i: ReplicaId, x: RegisterId) -> UpdateId {
        // The client observes the replica state at this access.
        self.on_client_access(c, i);
        let client = self.client_past[c].clone();
        self.issue_with_extra_past(i, x, Some(&client))
    }

    fn issue_with_extra_past(
        &mut self,
        i: ReplicaId,
        x: RegisterId,
        extra: Option<&DynBitSet>,
    ) -> UpdateId {
        let id = UpdateId(self.updates.len() as u64);
        // The causal past is the replica's closure (Definition 1:
        // everything applied here, transitively) plus, for client-issued
        // updates, the client's session past (↪′ condition ii).
        let mut past = self.closure[i.index()].clone();
        if let Some(e) = extra {
            past.union_with(e);
        }
        self.updates.push(UpdateMeta {
            issuer: i,
            register: x,
            past,
        });
        // Step 2(i): the issuer applies its own update immediately.
        self.applied[i.index()].insert(id.0);
        self.closure[i.index()].insert(id.0);
        id
    }

    /// Records that a client read from or wrote through replica `i`: the
    /// client's session past absorbs everything applied at `i`.
    ///
    /// # Panics
    ///
    /// Panics if the client index is out of range.
    pub fn on_client_access(&mut self, c: usize, i: ReplicaId) {
        let closure = self.closure[i.index()].clone();
        self.client_past[c].union_with(&closure);
    }

    /// Records that replica `i` applies update `u`, checking safety: every
    /// `u' ↪ u` with `register(u') ∈ X_i` must already be applied at `i`.
    ///
    /// The update is recorded as applied even when a violation is returned,
    /// so a run can collect multiple violations.
    ///
    /// # Errors
    ///
    /// Returns the first missing dependency as a [`SafetyViolation`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is unknown or `i` does not store its register (the
    /// system under test delivered a value to a non-holder).
    pub fn on_apply(&mut self, i: ReplicaId, u: UpdateId) -> Result<(), SafetyViolation> {
        let meta = &self.updates[u.index()];
        assert!(
            self.g.stores(i, meta.register),
            "replica {i} does not store {} (update {u})",
            meta.register
        );
        let mut violation = None;
        for dep in meta.past.iter() {
            let dep_meta = &self.updates[dep as usize];
            if self.g.stores(i, dep_meta.register) && !self.applied[i.index()].contains(dep) {
                violation = Some(SafetyViolation {
                    replica: i,
                    applied: u,
                    missing: UpdateId(dep),
                });
                break;
            }
        }
        self.applied[i.index()].insert(u.0);
        self.closure[i.index()].insert(u.0);
        let past = self.updates[u.index()].past.clone();
        self.closure[i.index()].union_with(&past);
        match violation {
            None => Ok(()),
            Some(v) => Err(v),
        }
    }

    /// Marks `u` as applied at replica `i` *without* running the safety
    /// check, merging `u` and its past into `i`'s closure.
    ///
    /// This exists for checkpointed trace replay: when a verified trace
    /// prefix has been summarized and discarded, a replica's summary may
    /// record that it applied a still-live update inside that sealed prefix
    /// (its apply event is gone, but its effect on the replica's causal
    /// past is not). Seeding restores exactly that effect — the apply
    /// itself was already checked before it was sealed, so re-checking
    /// against a fresh oracle would misfire.
    ///
    /// # Panics
    ///
    /// Panics if `u` is unknown or `i` does not store its register.
    pub fn seed_applied(&mut self, i: ReplicaId, u: UpdateId) {
        let meta = &self.updates[u.index()];
        assert!(
            self.g.stores(i, meta.register),
            "replica {i} does not store {} (update {u})",
            meta.register
        );
        self.applied[i.index()].insert(u.0);
        self.closure[i.index()].insert(u.0);
        let past = self.updates[u.index()].past.clone();
        self.closure[i.index()].union_with(&past);
    }

    /// The exact happened-before test: `a ↪ b`.
    pub fn happened_before(&self, a: UpdateId, b: UpdateId) -> bool {
        self.updates[b.index()].past.contains(a.0)
    }

    /// True when neither `a ↪ b` nor `b ↪ a`.
    pub fn concurrent(&self, a: UpdateId, b: UpdateId) -> bool {
        a != b && !self.happened_before(a, b) && !self.happened_before(b, a)
    }

    /// The causal past of `u` (all `u' ↪ u`), ascending.
    pub fn causal_past(&self, u: UpdateId) -> Vec<UpdateId> {
        self.updates[u.index()].past.iter().map(UpdateId).collect()
    }

    /// The causal past of *replica* `i`: the set `S` of Definition 6 —
    /// updates applied at `i` together with everything that happened before
    /// them.
    pub fn replica_causal_past(&self, i: ReplicaId) -> Vec<UpdateId> {
        self.closure[i.index()].iter().map(UpdateId).collect()
    }

    /// The issuer of `u`.
    pub fn issuer(&self, u: UpdateId) -> ReplicaId {
        self.updates[u.index()].issuer
    }

    /// The register `u` wrote.
    pub fn register(&self, u: UpdateId) -> RegisterId {
        self.updates[u.index()].register
    }

    /// Whether `u` has been applied at `i`.
    pub fn is_applied(&self, i: ReplicaId, u: UpdateId) -> bool {
        self.applied[i.index()].contains(u.0)
    }

    /// Total updates issued.
    pub fn num_updates(&self) -> usize {
        self.updates.len()
    }

    /// Liveness check (run at quiescence): every update must be applied at
    /// every replica that stores its register.
    pub fn check_liveness(&self) -> Vec<LivenessViolation> {
        let mut out = Vec::new();
        for (idx, meta) in self.updates.iter().enumerate() {
            for &holder in self.g.holders(meta.register) {
                if !self.applied[holder.index()].contains(idx as u64) {
                    out.push(LivenessViolation {
                        replica: holder,
                        update: UpdateId(idx as u64),
                    });
                }
            }
        }
        out
    }

    /// Client-access safety check (Definition 26, second safety clause):
    /// when client `c` accesses replica `i`, every update in the client's
    /// session past whose register `i` stores must already be applied at
    /// `i`. Returns the first missing update, if any.
    ///
    /// Call *before* [`Oracle::on_client_access`] for the access being
    /// checked (the access itself would otherwise absorb `i`'s state).
    pub fn client_access_violation(&self, c: usize, i: ReplicaId) -> Option<UpdateId> {
        self.client_past[c].iter().find_map(|id| {
            let meta = &self.updates[id as usize];
            if self.g.stores(i, meta.register) && !self.applied[i.index()].contains(id) {
                Some(UpdateId(id))
            } else {
                None
            }
        })
    }

    /// The edges of the causal dependency graph (Definition 6) restricted to
    /// the causal past of replica `i`: all pairs `(a, b)` with `a ↪ b`.
    pub fn dependency_edges(&self, i: ReplicaId) -> Vec<(UpdateId, UpdateId)> {
        let past = self.replica_causal_past(i);
        let mut edges = Vec::new();
        for &b in &past {
            for &a in &past {
                if a != b && self.happened_before(a, b) {
                    edges.push((a, b));
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::topologies;

    /// Reproduces the paper's Figure 2: three replicas, u1 and u2 issued by
    /// r1, u3 by r2, u4 by r3; u2 applied at r2 before u3, u1/u2 never reach
    /// r3 before u4.
    #[test]
    fn figure2_happened_before_relation() {
        // Registers: 0 private to r1; 1 shared r1,r2; 2 shared r2,r3;
        // 3 private to r3.
        let g = prcc_graph::ShareGraphBuilder::new()
            .replica_raw([0, 1])
            .replica_raw([1, 2])
            .replica_raw([2, 3])
            .build()
            .unwrap();
        let mut o = Oracle::new(&g);
        let u1 = o.on_issue(ReplicaId(0), RegisterId(0));
        let u2 = o.on_issue(ReplicaId(0), RegisterId(1));
        let u4 = o.on_issue(ReplicaId(2), RegisterId(3));
        o.on_apply(ReplicaId(1), u2).unwrap();
        let u3 = o.on_issue(ReplicaId(1), RegisterId(2));
        o.on_apply(ReplicaId(2), u3).unwrap();
        // u1 ↪ u2 (same issuer), u2 ↪ u3 (applied before issue), u1 ↪ u3
        // (transitivity).
        assert!(o.happened_before(u1, u2));
        assert!(o.happened_before(u2, u3));
        assert!(o.happened_before(u1, u3));
        // u1 ∥ u4 and u2 ∥ u4.
        assert!(o.concurrent(u1, u4));
        assert!(o.concurrent(u2, u4));
        assert!(!o.happened_before(u3, u3));
    }

    #[test]
    fn safety_violation_detected() {
        let g = topologies::clique_full(3, 1);
        let x = RegisterId(0);
        let mut o = Oracle::new(&g);
        let u0 = o.on_issue(ReplicaId(0), x);
        o.on_apply(ReplicaId(1), u0).unwrap();
        let u1 = o.on_issue(ReplicaId(1), x);
        // Replica 2 applies u1 without u0 → violation citing u0.
        let err = o.on_apply(ReplicaId(2), u1).unwrap_err();
        assert_eq!(err.replica, ReplicaId(2));
        assert_eq!(err.applied, u1);
        assert_eq!(err.missing, u0);
    }

    #[test]
    fn safety_ignores_unstored_registers() {
        // u0 writes a register replica 2 does not store; applying u1 at 2
        // without u0 is fine.
        let g = prcc_graph::ShareGraphBuilder::new()
            .replica_raw([0, 1])
            .replica_raw([0, 1])
            .replica_raw([1])
            .build()
            .unwrap();
        let mut o = Oracle::new(&g);
        let u0 = o.on_issue(ReplicaId(0), RegisterId(0));
        o.on_apply(ReplicaId(1), u0).unwrap();
        let u1 = o.on_issue(ReplicaId(1), RegisterId(1));
        assert!(o.on_apply(ReplicaId(2), u1).is_ok());
    }

    #[test]
    fn liveness_reports_missing_applications() {
        let g = topologies::line(2);
        let mut o = Oracle::new(&g);
        let u = o.on_issue(ReplicaId(0), RegisterId(0));
        let missing = o.check_liveness();
        assert_eq!(
            missing,
            vec![LivenessViolation {
                replica: ReplicaId(1),
                update: u
            }]
        );
        o.on_apply(ReplicaId(1), u).unwrap();
        assert!(o.check_liveness().is_empty());
    }

    #[test]
    fn replica_causal_past_closure() {
        let g = topologies::clique_full(3, 1);
        let x = RegisterId(0);
        let mut o = Oracle::new(&g);
        let u0 = o.on_issue(ReplicaId(0), x);
        o.on_apply(ReplicaId(1), u0).unwrap();
        let u1 = o.on_issue(ReplicaId(1), x);
        o.on_apply(ReplicaId(2), u1).unwrap_err(); // u0 missing: violation
                                                   // Even so, 2's causal past includes u0 (via u1's past).
        let past = o.replica_causal_past(ReplicaId(2));
        assert!(past.contains(&u0));
        assert!(past.contains(&u1));
    }

    #[test]
    fn client_sessions_extend_happened_before() {
        // Two replicas with disjoint registers; a client reads at 0 then
        // writes through 1: the write depends on what it saw at 0.
        let g = prcc_graph::ShareGraphBuilder::new()
            .replica_raw([0])
            .replica_raw([1])
            .build()
            .unwrap();
        let mut o = Oracle::with_clients(&g, 1);
        let u0 = o.on_issue(ReplicaId(0), RegisterId(0));
        o.on_client_access(0, ReplicaId(0));
        let u1 = o.on_client_issue(0, ReplicaId(1), RegisterId(1));
        assert!(o.happened_before(u0, u1), "↪′ via the client session");
        // Without clients the two replicas never interact.
        let mut o2 = Oracle::new(&g);
        let v0 = o2.on_issue(ReplicaId(0), RegisterId(0));
        let v1 = o2.on_issue(ReplicaId(1), RegisterId(1));
        assert!(o2.concurrent(v0, v1));
    }

    #[test]
    fn dependency_edges_subset_of_pairs() {
        let g = topologies::clique_full(2, 1);
        let mut o = Oracle::new(&g);
        let u0 = o.on_issue(ReplicaId(0), RegisterId(0));
        o.on_apply(ReplicaId(1), u0).unwrap();
        let u1 = o.on_issue(ReplicaId(1), RegisterId(0));
        o.on_apply(ReplicaId(0), u1).unwrap();
        let edges = o.dependency_edges(ReplicaId(0));
        assert!(edges.contains(&(u0, u1)));
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn issuer_register_accessors() {
        let g = topologies::line(2);
        let mut o = Oracle::new(&g);
        let u = o.on_issue(ReplicaId(1), RegisterId(0));
        assert_eq!(o.issuer(u), ReplicaId(1));
        assert_eq!(o.register(u), RegisterId(0));
        assert!(o.is_applied(ReplicaId(1), u));
        assert!(!o.is_applied(ReplicaId(0), u));
        assert_eq!(o.num_updates(), 1);
    }

    #[test]
    #[should_panic(expected = "does not store")]
    fn applying_at_non_holder_panics() {
        let g = topologies::line(3);
        let mut o = Oracle::new(&g);
        let u = o.on_issue(ReplicaId(0), RegisterId(0));
        let _ = o.on_apply(ReplicaId(2), u);
    }
}
