//! Post-hoc verification of distributed execution traces.
//!
//! The discrete-event simulator feeds the [`Oracle`] online, but a real
//! networked deployment (`prcc-service`) cannot: its replicas live in
//! different threads or processes, and routing every event through a shared
//! oracle would serialize the very concurrency being tested. Instead each
//! node records its *local* event log — issues and applies, in local
//! processing order, keyed by globally unique wire update ids — and the
//! logs are verified after the run by replaying them through the oracle.
//!
//! Replay needs a single global order, but the verdict does not depend on
//! which one is chosen: the oracle's state is a function of per-replica
//! prefixes only (an issue's causal past is what the issuer applied before
//! it, locally; an apply is checked against the applying replica's local
//! history). Any interleaving that (a) preserves each node's local order
//! and (b) schedules every issue before the applies of that update is
//! therefore equivalent — and one always exists for logs produced by a real
//! execution, because real time provides it.

use crate::{Oracle, Verdict};
use prcc_graph::{RegisterId, ReplicaId, ShareGraph};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One entry of a node's local event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The node issued an update (step 2 of the prototype); the update is
    /// applied at the issuer at this point.
    Issue {
        /// The issuing replica.
        replica: ReplicaId,
        /// The written register.
        register: RegisterId,
        /// Globally unique wire id of the update.
        update: u64,
    },
    /// The node applied a remote update (step 4 of the prototype).
    Apply {
        /// The applying replica.
        replica: ReplicaId,
        /// Wire id of the applied update.
        update: u64,
    },
}

/// Why a set of logs could not be replayed at all (distinct from a
/// causal-consistency violation, which replay *reports* via the verdict).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Two issues carried the same wire id.
    DuplicateIssue {
        /// The offending wire id.
        update: u64,
    },
    /// A node applied an update no log ever issued.
    UnknownUpdate {
        /// The applying replica.
        replica: ReplicaId,
        /// The unissued wire id.
        update: u64,
    },
    /// A node applied an update whose register it does not store.
    ApplyAtNonHolder {
        /// The applying replica.
        replica: ReplicaId,
        /// The misdelivered wire id.
        update: u64,
    },
    /// No interleaving consistent with the local orders exists (an apply
    /// precedes its own issue in a way no merge can untangle) — the logs do
    /// not come from a real execution.
    NoConsistentOrder {
        /// Events left unscheduled when replay wedged.
        remaining: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::DuplicateIssue { update } => {
                write!(f, "wire update id {update} issued twice")
            }
            TraceError::UnknownUpdate { replica, update } => {
                write!(f, "{replica} applied unissued update {update}")
            }
            TraceError::ApplyAtNonHolder { replica, update } => {
                write!(
                    f,
                    "{replica} applied update {update} on a register it does not store"
                )
            }
            TraceError::NoConsistentOrder { remaining } => {
                write!(f, "no consistent replay order ({remaining} events stuck)")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Replays one local event log per replica through a fresh [`Oracle`] and
/// returns the causal-consistency verdict of the recorded execution.
///
/// `logs[i]` must be replica `i`'s events in local processing order.
/// Safety violations surface in `Verdict::safety`; updates that never
/// reached some holder surface in `Verdict::liveness` (so call this only on
/// traces captured at quiescence if liveness matters).
///
/// # Errors
///
/// Returns a [`TraceError`] when the logs are structurally invalid — which
/// means the *recording* is broken, not that the system was inconsistent.
pub fn verify_trace(g: &ShareGraph, logs: &[Vec<TraceEvent>]) -> Result<Verdict, TraceError> {
    // Pre-scan: every issued id, for duplicate/unknown detection.
    let mut issued_ids = HashSet::new();
    for log in logs {
        for event in log {
            if let TraceEvent::Issue { update, .. } = event {
                if !issued_ids.insert(*update) {
                    return Err(TraceError::DuplicateIssue { update: *update });
                }
            }
        }
    }
    for log in logs {
        for event in log {
            if let TraceEvent::Apply { replica, update } = event {
                if !issued_ids.contains(update) {
                    return Err(TraceError::UnknownUpdate {
                        replica: *replica,
                        update: *update,
                    });
                }
            }
        }
    }

    let mut oracle = Oracle::new(g);
    let mut verdict = Verdict::default();
    let mut ids = HashMap::new();
    let mut heads = vec![0usize; logs.len()];
    let remaining =
        |heads: &[usize]| -> usize { logs.iter().zip(heads).map(|(log, &h)| log.len() - h).sum() };

    // Greedy merge: repeatedly advance any log whose head event is enabled.
    loop {
        let mut progressed = false;
        for (log, head) in logs.iter().zip(heads.iter_mut()) {
            while let Some(event) = log.get(*head) {
                match *event {
                    TraceEvent::Issue {
                        replica,
                        register,
                        update,
                    } => {
                        let oracle_id = oracle.on_issue(replica, register);
                        ids.insert(update, oracle_id);
                    }
                    TraceEvent::Apply { replica, update } => {
                        let Some(&oracle_id) = ids.get(&update) else {
                            // Issue not yet scheduled; try another log.
                            break;
                        };
                        if !g.stores(replica, oracle.register(oracle_id)) {
                            return Err(TraceError::ApplyAtNonHolder { replica, update });
                        }
                        if let Err(violation) = oracle.on_apply(replica, oracle_id) {
                            verdict.safety.push(violation);
                        }
                    }
                }
                *head += 1;
                progressed = true;
            }
        }
        if remaining(&heads) == 0 {
            break;
        }
        if !progressed {
            return Err(TraceError::NoConsistentOrder {
                remaining: remaining(&heads),
            });
        }
    }

    verdict.liveness = oracle.check_liveness();
    Ok(verdict)
}

/// Replays per-partition event logs independently — `parts[p][i]` is the
/// local log of partition `p`'s role `i` — and returns one verdict (or
/// replay error) per partition.
///
/// Every partition is an independent instance of `g`, so each replay runs a
/// fresh oracle over just that partition's logs: verification cost scales
/// with partition size, not cluster size, and partitions can be checked in
/// any order (or in parallel by a caller).
///
/// Cross-partition leakage is caught structurally: update ids are globally
/// unique, so an update applied in a partition that never issued it
/// surfaces as [`TraceError::UnknownUpdate`] for that partition.
pub fn verify_partitions(
    g: &ShareGraph,
    parts: &[Vec<Vec<TraceEvent>>],
) -> Vec<Result<Verdict, TraceError>> {
    parts.iter().map(|logs| verify_trace(g, logs)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::topologies;

    fn issue(replica: usize, register: u32, update: u64) -> TraceEvent {
        TraceEvent::Issue {
            replica: ReplicaId(replica),
            register: RegisterId(register),
            update,
        }
    }

    fn apply(replica: usize, update: u64) -> TraceEvent {
        TraceEvent::Apply {
            replica: ReplicaId(replica),
            update,
        }
    }

    #[test]
    fn consistent_run_verifies() {
        // clique_full(3, 1): register 0 everywhere. 0 writes; 1 applies then
        // writes; 2 applies both in causal order.
        let g = topologies::clique_full(3, 1);
        let logs = vec![
            vec![issue(0, 0, 10), apply(0, 20)],
            vec![apply(1, 10), issue(1, 0, 20)],
            vec![apply(2, 10), apply(2, 20)],
        ];
        let verdict = verify_trace(&g, &logs).unwrap();
        assert!(verdict.is_consistent(), "{verdict:?}");
    }

    #[test]
    fn causal_order_violation_detected() {
        let g = topologies::clique_full(3, 1);
        // Replica 2 applies u20 (which causally follows u10) before u10.
        let logs = vec![
            vec![issue(0, 0, 10), apply(0, 20)],
            vec![apply(1, 10), issue(1, 0, 20)],
            vec![apply(2, 20), apply(2, 10)],
        ];
        let verdict = verify_trace(&g, &logs).unwrap();
        assert_eq!(verdict.safety.len(), 1);
        assert_eq!(verdict.safety[0].replica, ReplicaId(2));
    }

    #[test]
    fn missing_apply_is_liveness_violation() {
        let g = topologies::line(2);
        let logs = vec![vec![issue(0, 0, 1)], vec![]];
        let verdict = verify_trace(&g, &logs).unwrap();
        assert!(verdict.safety.is_empty());
        assert_eq!(verdict.liveness.len(), 1);
        assert_eq!(verdict.liveness[0].replica, ReplicaId(1));
    }

    #[test]
    fn merge_handles_cross_log_waits() {
        // Replica 2's log starts with an apply of an update issued *late* in
        // replica 0's log; the merge must interleave around it.
        let g = topologies::clique_full(3, 1);
        let logs = vec![
            vec![issue(0, 0, 1), issue(0, 0, 2), issue(0, 0, 3)],
            vec![apply(1, 1), apply(1, 2), apply(1, 3)],
            vec![apply(2, 1), apply(2, 2), apply(2, 3)],
        ];
        let verdict = verify_trace(&g, &logs).unwrap();
        assert!(verdict.is_consistent());
    }

    #[test]
    fn partitions_verify_independently() {
        let g = topologies::clique_full(3, 1);
        // Partition 0 is consistent; partition 1 reorders a causal chain.
        let parts = vec![
            vec![
                vec![issue(0, 0, 10), apply(0, 20)],
                vec![apply(1, 10), issue(1, 0, 20)],
                vec![apply(2, 10), apply(2, 20)],
            ],
            vec![
                vec![issue(0, 0, 30), apply(0, 40)],
                vec![apply(1, 30), issue(1, 0, 40)],
                vec![apply(2, 40), apply(2, 30)],
            ],
        ];
        let verdicts = verify_partitions(&g, &parts);
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts[0].as_ref().unwrap().is_consistent());
        assert_eq!(verdicts[1].as_ref().unwrap().safety.len(), 1);
    }

    #[test]
    fn cross_partition_apply_is_structural_error() {
        let g = topologies::line(2);
        // Update 7 is issued in partition 0 but applied in partition 1: the
        // per-partition replay of partition 1 must reject it as unissued.
        let parts = vec![
            vec![vec![issue(0, 0, 7)], vec![apply(1, 7)]],
            vec![vec![], vec![apply(1, 7)]],
        ];
        let verdicts = verify_partitions(&g, &parts);
        assert!(verdicts[0].is_ok());
        assert_eq!(
            verdicts[1],
            Err(TraceError::UnknownUpdate {
                replica: ReplicaId(1),
                update: 7
            })
        );
    }

    #[test]
    fn structural_errors_reported() {
        let g = topologies::line(2);
        let dup = vec![vec![issue(0, 0, 1), issue(0, 0, 1)], vec![]];
        assert_eq!(
            verify_trace(&g, &dup),
            Err(TraceError::DuplicateIssue { update: 1 })
        );
        let unknown = vec![vec![], vec![apply(1, 9)]];
        assert_eq!(
            verify_trace(&g, &unknown),
            Err(TraceError::UnknownUpdate {
                replica: ReplicaId(1),
                update: 9
            })
        );
        // line(3): register 0 shared by replicas 0 and 1 only; replica 2
        // applying it is a routing bug.
        let g3 = topologies::line(3);
        let misrouted = vec![vec![issue(0, 0, 1)], vec![apply(1, 1)], vec![apply(2, 1)]];
        assert_eq!(
            verify_trace(&g3, &misrouted),
            Err(TraceError::ApplyAtNonHolder {
                replica: ReplicaId(2),
                update: 1
            })
        );
    }
}
