//! Violation reports with witnesses.

use crate::UpdateId;
use prcc_graph::ReplicaId;
use std::fmt;

/// A safety violation of Definition 2: `replica` applied `applied` while
/// some causally preceding update `missing` (on a register the replica
/// stores) had not been applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafetyViolation {
    /// The replica at which the violation occurred.
    pub replica: ReplicaId,
    /// The update that was applied too early.
    pub applied: UpdateId,
    /// The causally preceding update that was missing.
    pub missing: UpdateId,
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "safety violation at {}: applied {} before its causal dependency {}",
            self.replica, self.applied, self.missing
        )
    }
}

impl std::error::Error for SafetyViolation {}

/// A liveness violation of Definition 2: at quiescence, `replica` stores the
/// register of `update` but never applied it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessViolation {
    /// The replica that should have applied the update.
    pub replica: ReplicaId,
    /// The update that was never applied.
    pub update: UpdateId,
}

impl fmt::Display for LivenessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "liveness violation at {}: update {} was never applied",
            self.replica, self.update
        )
    }
}

impl std::error::Error for LivenessViolation {}

/// Combined verdict of a full run: safety violations observed during the
/// execution and liveness violations at quiescence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Verdict {
    /// All safety violations, in occurrence order.
    pub safety: Vec<SafetyViolation>,
    /// All liveness violations found at quiescence.
    pub liveness: Vec<LivenessViolation>,
}

impl Verdict {
    /// True when the execution was causally consistent.
    pub fn is_consistent(&self) -> bool {
        self.safety.is_empty() && self.liveness.is_empty()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_consistent() {
            write!(f, "causally consistent")
        } else {
            write!(
                f,
                "{} safety violation(s), {} liveness violation(s)",
                self.safety.len(),
                self.liveness.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let s = SafetyViolation {
            replica: ReplicaId(1),
            applied: UpdateId(5),
            missing: UpdateId(3),
        };
        assert!(s.to_string().contains("safety violation at r1"));
        let l = LivenessViolation {
            replica: ReplicaId(0),
            update: UpdateId(7),
        };
        assert!(l.to_string().contains("liveness"));
        let mut v = Verdict::default();
        assert!(v.is_consistent());
        assert_eq!(v.to_string(), "causally consistent");
        v.safety.push(s);
        assert!(!v.is_consistent());
        assert!(v.to_string().contains("1 safety"));
    }
}
